//! Ablation A3 — semi-naive versus naive end-semantics evaluation.
//!
//! The paper's prototype used naive evaluation ("evaluating all rules
//! iteratively, terminating when no new tuples have been generated"); our
//! engine is semi-naive (each round only joins against the frontier of
//! newly derived delta tuples). Deep cascades (mas-20, five rounds) show
//! the gap; shallow DC-style programs (mas-11, one round) show the
//! overhead is negligible when there is nothing to save.

use bench::{session_for, MasLab};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repair_core::end;
use std::hint::black_box;
use std::time::Duration;

fn bench_eval_ablation(c: &mut Criterion) {
    let lab = MasLab::at_scale(0.02);
    let mut group = c.benchmark_group("ablation_eval");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1200));
    for name in ["mas-11", "mas-18", "mas-20"] {
        let w = lab
            .workloads
            .iter()
            .find(|w| w.name == name)
            .expect("workload");
        let session = session_for(&lab.data.db, w);
        let (db, ev) = (session.db(), session.evaluator());
        group.bench_function(BenchmarkId::new("semi_naive", name), |b| {
            b.iter(|| black_box(end::run(db, ev).deleted.len()))
        });
        group.bench_function(BenchmarkId::new("naive", name), |b| {
            b.iter(|| black_box(end::run_naive(db, ev).deleted.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval_ablation);
criterion_main!(benches);

//! Ablation A1 — what the Min-Ones solver's features buy on the DC-style
//! formulas that independent semantics produces:
//!
//! * **component decomposition** on vs off (DESIGN.md credits it for the
//!   paper's "efficient in practice" behaviour on DC workloads);
//! * **exact branch & bound** vs the greedy first solution.
//!
//! The formula is generated through the real pipeline (Algorithm 1's eval
//! and processing phases on the mas-12 workload), not synthesized, so the
//! structure matches what the solver sees in production.

use bench::{session_for, MasLab};
use criterion::{criterion_group, criterion_main, Criterion};
use datalog::Mode;
use provenance::ProvFormula;
use sat::{solve_min_ones, Cnf, Lit, MinOnesOptions};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Duration;
use storage::TupleId;

/// Reproduce phases 1–2 of Algorithm 1: the CNF for a workload.
fn cnf_for(lab: &MasLab, name: &str) -> Cnf {
    let w = lab
        .workloads
        .iter()
        .find(|w| w.name == name)
        .expect("workload");
    let session = session_for(&lab.data.db, w);
    let db = session.db();
    let state = db.initial_state();
    let mut assignments = Vec::new();
    session
        .evaluator()
        .for_each_assignment(db, &state, Mode::Hypothetical, &mut |a| {
            assignments.push(a.clone());
            true
        });
    let formula = ProvFormula::from_assignments(assignments.iter());
    let universe = formula.tuple_universe();
    let var_of: HashMap<TupleId, u32> = universe
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();
    let mut cnf = Cnf::new(universe.len());
    let mut lits = Vec::new();
    for clause in formula.clauses() {
        lits.clear();
        lits.extend(clause.pos.iter().map(|t| Lit::pos(var_of[t])));
        lits.extend(clause.neg.iter().map(|t| Lit::neg(var_of[t])));
        cnf.add_clause(&lits);
    }
    cnf
}

fn bench_sat_ablation(c: &mut Criterion) {
    let lab = MasLab::at_scale(0.02);
    let mut group = c.benchmark_group("ablation_sat");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1200));
    for name in ["mas-12", "mas-08"] {
        let cnf = cnf_for(&lab, name);
        // All configs share the session's default node budget so a
        // pathological branch & bound cannot stall the benchmark run.
        let budget = repair_core::RepairSession::DEFAULT_NODE_BUDGET;
        let configs: [(&str, MinOnesOptions); 3] = [
            (
                "full",
                MinOnesOptions {
                    node_budget: budget,
                    ..MinOnesOptions::default()
                },
            ),
            (
                "no_decomposition",
                MinOnesOptions {
                    decompose: false,
                    node_budget: budget,
                    ..MinOnesOptions::default()
                },
            ),
            (
                "greedy_first_solution",
                MinOnesOptions {
                    first_solution_only: true,
                    node_budget: budget,
                    ..MinOnesOptions::default()
                },
            ),
        ];
        for (label, opts) in configs {
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    black_box(
                        solve_min_ones(&cnf, &opts)
                            .solution()
                            .map(|s| s.ones)
                            .unwrap_or(usize::MAX),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sat_ablation);
criterion_main!(benches);

//! Ablation A2 — the greedy Algorithm 2 against the exact exponential
//! step-semantics search on instances small enough for the latter: the
//! running example (Figure 1) and vertex-cover reduction graphs
//! (Proposition 4.2's family, where greedy is provably approximate).

use criterion::{criterion_group, criterion_main, Criterion};
use repair_core::{step, testkit, RepairSession};
use std::hint::black_box;
use std::time::Duration;
use storage::{AttrType, Instance, Schema, Value};

fn vc_db(n: usize, edges: &[(i64, i64)]) -> Instance {
    let mut s = Schema::new();
    s.relation("E", &[("u", AttrType::Int), ("v", AttrType::Int)]);
    s.relation("VC", &[("v", AttrType::Int)]);
    let mut db = Instance::new(s);
    for &(u, v) in edges {
        db.insert_values("E", [Value::Int(u), Value::Int(v)])
            .unwrap();
        db.insert_values("E", [Value::Int(v), Value::Int(u)])
            .unwrap();
    }
    for v in 0..n as i64 {
        db.insert_values("VC", [Value::Int(v)]).unwrap();
    }
    db
}

fn bench_step_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_step");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1200));

    // The running example.
    let session =
        RepairSession::new(testkit::figure1_instance(), testkit::figure2_program()).unwrap();
    let (db, ev) = (session.db(), session.evaluator());
    group.bench_function("figure1/greedy", |b| {
        b.iter(|| black_box(step::run_greedy(db, ev).deleted.len()))
    });
    group.bench_function("figure1/exact", |b| {
        b.iter(|| {
            black_box(
                step::optimal(db, ev, 1 << 20)
                    .map(|s| s.len())
                    .unwrap_or(usize::MAX),
            )
        })
    });

    // A two-triangles vertex-cover instance (VC = 4).
    let vc_session = RepairSession::new(
        vc_db(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]),
        datalog::parse_program("delta VC(x) :- E(x, y), VC(x), VC(y).").unwrap(),
    )
    .unwrap();
    let (vc, vc_ev) = (vc_session.db(), vc_session.evaluator());
    group.bench_function("two_triangles/greedy", |b| {
        b.iter(|| black_box(step::run_greedy(vc, vc_ev).deleted.len()))
    });
    group.bench_function("two_triangles/exact", |b| {
        b.iter(|| {
            black_box(
                step::optimal(vc, vc_ev, 1 << 20)
                    .map(|s| s.len())
                    .unwrap_or(usize::MAX),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_step_ablation);
criterion_main!(benches);

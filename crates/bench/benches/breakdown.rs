//! Figure 8 — runtime breakdown of Algorithms 1 and 2.
//!
//! Criterion measures each phase's cost by benchmarking cumulative
//! prefixes of the pipelines on a DC-heavy program (mas-08, Figure 8a/8b's
//! regime) and a cascade program (mas-20, Figure 8c/8d's regime):
//!
//! * Algorithm 1: `eval` (hypothetical assignment enumeration) alone, then
//!   eval + formula construction, then the full run (+ SAT solve);
//! * Algorithm 2: `eval` (end-semantics provenance) alone, then + graph
//!   construction, then the full greedy run.
//!
//! `repro fig8` prints the per-phase fractions directly.

use bench::{session_for, MasLab};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datalog::Mode;
use provenance::{ProvFormula, ProvGraph};
use repair_core::{end, independent, step};
use sat::MinOnesOptions;
use std::hint::black_box;
use std::time::Duration;

fn bench_breakdown(c: &mut Criterion) {
    let lab = MasLab::at_scale(0.02);
    let mut group = c.benchmark_group("fig8_breakdown");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1200));
    for name in ["mas-08", "mas-20"] {
        let w = lab
            .workloads
            .iter()
            .find(|w| w.name == name)
            .expect("workload");
        let session = session_for(&lab.data.db, w);
        let (db, ev) = (session.db(), session.evaluator());

        // Algorithm 1 phase prefixes.
        group.bench_function(BenchmarkId::new("alg1_eval", name), |b| {
            b.iter(|| {
                let state = db.initial_state();
                let mut n = 0usize;
                ev.for_each_assignment(db, &state, Mode::Hypothetical, &mut |a| {
                    n += a.body.len();
                    true
                });
                black_box(n)
            })
        });
        group.bench_function(BenchmarkId::new("alg1_eval_process", name), |b| {
            b.iter(|| {
                let state = db.initial_state();
                let mut assignments = Vec::new();
                ev.for_each_assignment(db, &state, Mode::Hypothetical, &mut |a| {
                    assignments.push(a.clone());
                    true
                });
                black_box(ProvFormula::from_assignments(assignments.iter()).len())
            })
        });
        group.bench_function(BenchmarkId::new("alg1_full", name), |b| {
            b.iter(|| {
                black_box(
                    independent::run(db, ev, &MinOnesOptions::default())
                        .deleted
                        .len(),
                )
            })
        });

        // Algorithm 2 phase prefixes.
        group.bench_function(BenchmarkId::new("alg2_eval", name), |b| {
            b.iter(|| black_box(end::run(db, ev).assignments.len()))
        });
        group.bench_function(BenchmarkId::new("alg2_eval_process", name), |b| {
            b.iter(|| {
                let out = end::run(db, ev);
                black_box(ProvGraph::build(&out.assignments, &out.layers).num_delta_nodes())
            })
        });
        group.bench_function(BenchmarkId::new("alg2_full", name), |b| {
            b.iter(|| black_box(step::run_greedy(db, ev).deleted.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);

//! Figure 10 — runtime scaling of the four semantics and the
//! HoloClean-substitute cell repairer, versus the number of errors (10a)
//! and the number of rows (10b).

use cellrepair::{repair, CellRepairConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{author_table, inject_errors};
use repair_core::{RepairRequest, RepairSession, Semantics};
use std::hint::black_box;
use std::time::Duration;
use workloads::{author_instance_from_table, dc_delta_program};

fn scenario(rows: usize, errors: usize) -> cellrepair::Table {
    let mut table = author_table(rows, 7);
    inject_errors(&mut table, errors, 11);
    table
}

fn bench_vs_errors(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10a_vs_errors");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1200));
    let rows = 1500;
    for errors in [50usize, 150, 300] {
        let table = scenario(rows, errors);
        // The four semantics on the DC program.
        let db = author_instance_from_table(&table);
        let session = RepairSession::new(db, dc_delta_program()).expect("DC program");
        for sem in [Semantics::Independent, Semantics::End] {
            group.bench_with_input(BenchmarkId::new(sem.name(), errors), &sem, |b, &sem| {
                b.iter(|| {
                    let req = RepairRequest::new(sem).incremental(false);
                    black_box(session.repair(&req).expect("valid").size())
                })
            });
        }
        // The probabilistic cell repairer.
        group.bench_with_input(BenchmarkId::new("holoclean_sub", errors), &table, |b, t| {
            b.iter(|| {
                let mut work = t.clone();
                black_box(
                    repair(
                        &mut work,
                        &workloads::paper_dcs(),
                        &CellRepairConfig::default(),
                    )
                    .repairs
                    .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_vs_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10b_vs_rows");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1200));
    let errors = 100;
    for rows in [1000usize, 2000, 4000] {
        let table = scenario(rows, errors);
        let db = author_instance_from_table(&table);
        let session = RepairSession::new(db, dc_delta_program()).expect("DC program");
        for sem in [Semantics::Independent, Semantics::End] {
            group.bench_with_input(BenchmarkId::new(sem.name(), rows), &sem, |b, &sem| {
                b.iter(|| {
                    let req = RepairRequest::new(sem).incremental(false);
                    black_box(session.repair(&req).expect("valid").size())
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("holoclean_sub", rows), &table, |b, t| {
            b.iter(|| {
                let mut work = t.clone();
                black_box(
                    repair(
                        &mut work,
                        &workloads::paper_dcs(),
                        &CellRepairConfig::default(),
                    )
                    .repairs
                    .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_errors, bench_vs_rows);
criterion_main!(benches);

//! Figure 7 — execution time of the four semantics on the MAS programs.
//!
//! One representative program per class keeps `cargo bench` tractable:
//! mas-02 (DC-like), mas-08 (mixed), mas-11 (single-rule joins), mas-20
//! (deep cascade). The `repro fig7` binary reports all twenty.

use bench::{session_for, MasLab};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repair_core::{RepairRequest, Semantics};
use std::hint::black_box;
use std::time::Duration;

fn bench_mas(c: &mut Criterion) {
    let lab = MasLab::at_scale(0.02);
    let mut group = c.benchmark_group("fig7_mas_semantics");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1200));
    for name in ["mas-02", "mas-08", "mas-11", "mas-20"] {
        let w = lab
            .workloads
            .iter()
            .find(|w| w.name == name)
            .expect("workload");
        let session = session_for(&lab.data.db, w);
        for sem in Semantics::ALL {
            group.bench_with_input(BenchmarkId::new(sem.name(), name), &sem, |b, &sem| {
                // incremental(false): track the full computation, not a checkpoint
                // cache hit (the incremental path has its own bench group).
                let request = RepairRequest::new(sem).incremental(false);
                b.iter(|| black_box(session.repair(&request).expect("valid").size()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mas);
criterion_main!(benches);

//! `semantics_scale` — scaled-up workloads at 1/2/4/8 worker threads.
//!
//! The fig7/fig9b benches track the paper's sizes; this group runs the
//! heaviest tracked workloads at 10× those scales plus the zipf universe
//! (built so one wide rule dominates — the regime where per-rule fan-out is
//! useless and intra-rule morsel parallelism has to deliver), overriding
//! the worker count per measurement via `RepairRequest::threads`. Build
//! with `--features parallel` to measure real fan-out; on a serial build
//! every thread count measures the serial path. Scales override via
//! `REPRO_SCALE_MAS` / `REPRO_SCALE_TPCH` / `REPRO_SCALE_ZIPF` (the 50×
//! protocol of EXPERIMENTS.md raises `REPRO_SCALE_ZIPF` to 50.0).
//!
//! Delete-set sizes are asserted identical across thread counts on every
//! measurement — the in-bench parity check backing the differential suites.

use bench::{scale_picks, SCALE_THREADS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repair_core::{RepairRequest, Semantics};
use std::time::Duration;

fn semantics_scale(c: &mut Criterion) {
    let quick = std::env::var("BENCH_JSON_QUICK").is_ok_and(|v| v == "1");
    let picks = scale_picks(quick);
    let mut g = c.benchmark_group("semantics_scale");
    g.sample_size(5)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1000));
    for (name, session) in &picks {
        for sem in [Semantics::End, Semantics::Independent] {
            let mut sizes: Vec<usize> = Vec::new();
            for t in SCALE_THREADS {
                let request = RepairRequest::new(sem).incremental(false).threads(t);
                // Sentinel distinguishes "measured" from "skipped by a CLI
                // filter" (the harness never calls the closure then).
                let mut size = usize::MAX;
                g.bench_function(
                    BenchmarkId::new(format!("{name}/{}", sem.name()), format!("t{t}")),
                    |b| {
                        b.iter(|| {
                            size = session.repair(&request).expect("valid request").size();
                            size
                        })
                    },
                );
                if size != usize::MAX {
                    sizes.push(size);
                }
            }
            // The shim runs benches unconditionally unless filtered; when a
            // CLI filter skipped some thread counts the vector holds only
            // the measured ones — parity still must hold among those.
            assert!(
                sizes.windows(2).all(|w| w[0] == w[1]),
                "thread-count parity violated for {name}/{}: {sizes:?}",
                sem.name()
            );
        }
    }
    g.finish();
}

criterion_group!(benches, semantics_scale);
criterion_main!(benches);

//! Figure 9b — execution time of the four semantics on the TPC-H programs.
//!
//! T-2 (pure cascade), T-4 (mixed) and T-5 (same-body pair) cover the three
//! behaviours; `repro fig9` reports all six.

use bench::{session_for, TpchLab};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repair_core::{RepairRequest, Semantics};
use std::hint::black_box;
use std::time::Duration;

fn bench_tpch(c: &mut Criterion) {
    let lab = TpchLab::at_scale(0.01);
    let mut group = c.benchmark_group("fig9b_tpch_semantics");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1200));
    for name in ["tpch-2", "tpch-4", "tpch-5"] {
        let w = lab
            .workloads
            .iter()
            .find(|w| w.name == name)
            .expect("workload");
        let session = session_for(&lab.data.db, w);
        for sem in Semantics::ALL {
            group.bench_with_input(BenchmarkId::new(sem.name(), name), &sem, |b, &sem| {
                // incremental(false): track the full computation, not a checkpoint
                // cache hit (the incremental path has its own bench group).
                let request = RepairRequest::new(sem).incremental(false);
                b.iter(|| black_box(session.repair(&request).expect("valid").size()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tpch);
criterion_main!(benches);

//! Section 6, "Comparison with Triggers" — the trigger interpreter under
//! both firing-order policies against end and step semantics on the
//! deep-cascade program (the paper's program-20 comparison, where
//! PostgreSQL took 3.3 minutes vs 2.9 for end semantics; here everything
//! is in-process so only the ratio is meaningful).

use bench::{session_for, MasLab};
use criterion::{criterion_group, criterion_main, Criterion};
use repair_core::{RepairRequest, Semantics};
use std::hint::black_box;
use std::time::Duration;
use triggers::{run_triggers, triggers_from_program, FiringOrder};

fn bench_triggers(c: &mut Criterion) {
    let lab = MasLab::at_scale(0.02);
    let w = lab
        .workloads
        .iter()
        .find(|w| w.name == "mas-20")
        .expect("workload");
    let session = session_for(&lab.data.db, w);
    let (db, ev) = (session.db(), session.evaluator());
    let trigs = triggers_from_program(&w.program);

    let mut group = c.benchmark_group("triggers_vs_semantics");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1200));
    group.bench_function("postgresql_alphabetical", |b| {
        b.iter(|| {
            black_box(
                run_triggers(db, ev, &trigs, FiringOrder::Alphabetical)
                    .deleted
                    .len(),
            )
        })
    });
    group.bench_function("mysql_creation_order", |b| {
        b.iter(|| {
            black_box(
                run_triggers(db, ev, &trigs, FiringOrder::CreationOrder)
                    .deleted
                    .len(),
            )
        })
    });
    group.bench_function("end_semantics", |b| {
        b.iter(|| {
            let req = RepairRequest::new(Semantics::End).incremental(false);
            black_box(session.repair(&req).expect("valid").size())
        })
    });
    group.bench_function("stage_semantics", |b| {
        b.iter(|| {
            let req = RepairRequest::new(Semantics::Stage).incremental(false);
            black_box(session.repair(&req).expect("valid").size())
        })
    });
    group.bench_function("step_semantics", |b| {
        b.iter(|| {
            let req = RepairRequest::new(Semantics::Step).incremental(false);
            black_box(session.repair(&req).expect("valid").size())
        })
    });
    group.bench_function("independent_semantics", |b| {
        b.iter(|| {
            let req = RepairRequest::new(Semantics::Independent).incremental(false);
            black_box(session.repair(&req).expect("valid").size())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_triggers);
criterion_main!(benches);

//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [experiment …]
//!
//! experiments:
//!   table3    containment of results (Table 3)
//!   fig6      result sizes, MAS programs (Figure 6a/6b/6c)
//!   fig7      execution times, MAS programs (Figure 7)
//!   fig8      runtime breakdown of Algorithms 1 and 2 (Figure 8a–d)
//!   fig9      result sizes and runtimes, TPC-H programs (Figure 9a/9b)
//!   triggers  PostgreSQL/MySQL trigger comparison (Section 6)
//!   table4    over-deletions vs HoloClean-substitute under-repairs (Table 4)
//!   table5    residual DC violations after repair (Table 5)
//!   fig10     runtime scaling vs #errors and #rows (Figure 10a/10b)
//!   all       everything above
//!
//!   bench-json  emit this repository's BENCH_*.json perf record to stdout
//!               (not part of `all`). Env: BENCH_JSON_MODE names the run
//!               key (default "serial"); BENCH_JSON_QUICK=1 (or the
//!               `--quick` flag) shortens the measurement for CI smoke —
//!               never commit quick numbers. Includes the
//!               incremental_rerepair group (mutate → re-repair loop,
//!               incremental vs full recompute).
//! ```
//!
//! Scales via `REPRO_MAS_SCALE` / `REPRO_TPCH_SCALE` / `REPRO_ROWS`
//! (see the `bench` crate docs). Run with `--release`.

use bench::{
    check, env_usize, fmt_duration, mas_scale, run_four, session_for, tpch_scale, MasLab, TpchLab,
    ZipfLab,
};
use cellrepair::{count_violating_tuples, repair as hc_repair, CellRepairConfig};
use datagen::{author_table, inject_errors};
use repair_core::{relationships, Semantics};
use std::time::Instant;
use triggers::{run_triggers, triggers_from_program, FiringOrder};
use workloads::{author_instance_from_table, dc_delta_program, paper_dcs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--quick` shortens bench-json measurement (same as BENCH_JSON_QUICK=1).
    let quick_flag = args.iter().any(|a| a == "--quick");
    let args: Vec<String> = args.into_iter().filter(|a| a != "--quick").collect();
    if quick_flag && args.is_empty() {
        // A bare `repro --quick` must not silently fall through to the
        // full-scale everything run.
        eprintln!("--quick applies to bench-json; run `repro bench-json --quick`");
        return;
    }
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table3", "fig6", "fig7", "fig8", "fig9", "triggers", "table4", "table5", "fig10",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for w in wanted {
        match w {
            "table3" => table3(),
            "fig6" => fig6(),
            "fig7" => fig7(),
            "fig8" => fig8(),
            "fig9" => fig9(),
            "triggers" => trigger_comparison(),
            "table4" => table4_and_5(false),
            "table5" => table4_and_5(true),
            "fig10" => fig10(),
            "bench-json" => bench_json(quick_flag),
            "lint-workloads" => lint_workloads(),
            other => eprintln!("unknown experiment `{other}` (see --help text in source)"),
        }
    }
}

/// `repro lint-workloads` — run the static analyzer over every built-in
/// workload program (20 MAS + 6 TPC-H + 3 zipf) against its generated
/// schema and print one line per program: diagnostic counts plus which
/// equivalence certificate (if any) the program earns. CI runs this as a
/// smoke test; any error-level finding exits nonzero. The data scales are
/// irrelevant to static analysis, so the smallest generators are used.
fn lint_workloads() {
    banner("lint — static analysis of the built-in workload programs");
    let mas = MasLab::at_scale(0.01);
    let tpch = TpchLab::at_scale(0.01);
    let zipf = ZipfLab::at_scale(0.01);
    let all = mas
        .workloads
        .iter()
        .map(|w| (&mas.data.db, w))
        .chain(tpch.workloads.iter().map(|w| (&tpch.data.db, w)))
        .chain(zipf.workloads.iter().map(|w| (&zipf.data.db, w)));
    println!(
        "{:<14} {:>7} {:>9} {:>6}  certificate",
        "program", "errors", "warnings", "infos"
    );
    let mut total_errors = 0;
    let mut certified = 0;
    let mut count = 0;
    for (db, w) in all {
        let report = datalog::lint(Some(db.schema()), &w.program);
        let errors = report.count(datalog::Severity::Error);
        total_errors += errors;
        count += 1;
        if report.certificate.any() {
            certified += 1;
        }
        println!(
            "{:<14} {:>7} {:>9} {:>6}  {}",
            w.name,
            errors,
            report.count(datalog::Severity::Warning),
            report.count(datalog::Severity::Info),
            report.certificate.describe(),
        );
        if errors > 0 {
            for d in &report.diagnostics {
                if d.severity == datalog::Severity::Error {
                    println!("    {d}");
                }
            }
        }
    }
    println!("{count} programs linted, {certified} with an equivalence certificate");
    if total_errors > 0 {
        eprintln!("lint-workloads: {total_errors} error-level finding(s)");
        std::process::exit(1);
    }
}

/// Emit the `BENCH_*.json` perf record for this build to stdout. Progress
/// goes to stderr so the JSON can be redirected to a file directly.
fn bench_json(quick_flag: bool) {
    let mode = std::env::var("BENCH_JSON_MODE").unwrap_or_else(|_| "serial".to_owned());
    let quick = quick_flag || std::env::var("BENCH_JSON_QUICK").is_ok_and(|v| v == "1");
    eprintln!(
        "bench-json: mode `{mode}`{} — fig7 MAS (0.02) + fig9b TPC-H (0.01)",
        if quick { " (quick)" } else { "" }
    );
    let records = bench::bench_json_records(quick);
    for r in &records {
        eprintln!(
            "  {:<55} {:>14.1} ns ({} iters)",
            r.bench, r.mean_ns, r.iterations
        );
    }
    print!("{}", bench::render_bench_json(&mode, &records));
}

fn banner(title: &str) {
    println!("\n════════════════════════════════════════════════════════════════");
    println!("  {title}");
    println!("════════════════════════════════════════════════════════════════");
}

/// Table 3: containment of results for all 26 programs.
fn table3() {
    banner(&format!(
        "Table 3 — containment of results (MAS scale {}, TPC-H scale {})",
        mas_scale(),
        tpch_scale()
    ));
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "program", "Step=Stage", "Ind⊆Stage", "Ind⊆Step"
    );
    let mas = MasLab::from_env();
    let tpch = TpchLab::from_env();
    let all = mas
        .workloads
        .iter()
        .map(|w| (&mas.data.db, w))
        .chain(tpch.workloads.iter().map(|w| (&tpch.data.db, w)));
    for (base, w) in all {
        let session = session_for(base, w);
        let [ind, step, stage, end] = run_four(&session);
        let row = relationships::table3_row(&ind, &step, &stage);
        if let Some(violation) = relationships::check_figure3_invariants(&ind, &step, &stage, &end)
        {
            println!("{:<10} FIGURE-3 INVARIANT VIOLATED: {violation}", w.name);
            continue;
        }
        println!(
            "{:<10} {:>12} {:>12} {:>12}",
            w.name,
            check(row.step_eq_stage),
            check(row.ind_sub_stage),
            check(row.ind_sub_step)
        );
    }
}

/// Figure 6: result sizes for the MAS programs, in the paper's three groups.
fn fig6() {
    banner(&format!(
        "Figure 6 — result sizes, MAS programs (scale {})",
        mas_scale()
    ));
    let lab = MasLab::from_env();
    println!(
        "{:<10} {:>12} {:>8} {:>8} {:>8}",
        "program", "independent", "step", "stage", "end"
    );
    for (i, w) in lab.workloads.iter().enumerate() {
        let session = session_for(&lab.data.db, w);
        let [ind, step, stage, end] = run_four(&session);
        println!(
            "{:<10} {:>12} {:>8} {:>8} {:>8}",
            w.name,
            ind.size(),
            step.size(),
            stage.size(),
            end.size()
        );
        if i == 9 || i == 14 {
            println!("{:-<50}", ""); // group boundaries: 6a | 6b | 6c
        }
    }
}

/// Figure 7: execution times for the MAS programs.
fn fig7() {
    banner(&format!(
        "Figure 7 — execution time, MAS programs (scale {})",
        mas_scale()
    ));
    let lab = MasLab::from_env();
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}",
        "program", "independent", "step", "stage", "end"
    );
    let mut totals = [0f64; 4];
    for w in &lab.workloads {
        let session = session_for(&lab.data.db, w);
        let results = run_four(&session);
        for (i, r) in results.iter().enumerate() {
            totals[i] += r.breakdown.total().as_secs_f64();
        }
        println!(
            "{:<10} {:>12} {:>10} {:>10} {:>10}",
            w.name,
            fmt_duration(results[0].breakdown.total()),
            fmt_duration(results[1].breakdown.total()),
            fmt_duration(results[2].breakdown.total()),
            fmt_duration(results[3].breakdown.total()),
        );
    }
    println!("{:-<56}", "");
    println!(
        "{:<10} {:>12.3} {:>10.3} {:>10.3} {:>10.3}   (avg seconds)",
        "average",
        totals[0] / 20.0,
        totals[1] / 20.0,
        totals[2] / 20.0,
        totals[3] / 20.0
    );
}

/// Figure 8: runtime breakdown of Algorithm 1 (independent) and
/// Algorithm 2 (step), averaged over programs 1–15 and 16–20.
fn fig8() {
    banner(&format!(
        "Figure 8 — runtime breakdown, Algorithms 1 & 2 (scale {})",
        mas_scale()
    ));
    let lab = MasLab::from_env();
    let mut groups: [[f64; 6]; 2] = [[0.0; 6]; 2]; // [group][alg1 e/p/s, alg2 e/p/s]
    for (i, w) in lab.workloads.iter().enumerate() {
        let session = session_for(&lab.data.db, w);
        let ind = session.run(Semantics::Independent);
        let step = session.run(Semantics::Step);
        let g = usize::from(i >= 15);
        let (e1, p1, s1) = ind.breakdown().fractions();
        let (e2, p2, s2) = step.breakdown().fractions();
        for (slot, v) in [e1, p1, s1, e2, p2, s2].into_iter().enumerate() {
            groups[g][slot] += v;
        }
    }
    for (g, label, n) in [(0, "programs 1–15", 15.0), (1, "programs 16–20", 5.0)] {
        println!("\n  {label}:");
        println!(
            "    Algorithm 1 (independent): Eval {:.0}%  ProcessProv {:.0}%  Solve {:.0}%",
            groups[g][0] / n * 100.0,
            groups[g][1] / n * 100.0,
            groups[g][2] / n * 100.0
        );
        println!(
            "    Algorithm 2 (step):        Eval {:.0}%  ProcessProv {:.0}%  Traverse {:.0}%",
            groups[g][3] / n * 100.0,
            groups[g][4] / n * 100.0,
            groups[g][5] / n * 100.0
        );
    }
}

/// Figure 9: result sizes and runtimes for the TPC-H programs.
fn fig9() {
    banner(&format!(
        "Figure 9 — TPC-H result sizes and runtimes (scale {})",
        tpch_scale()
    ));
    let lab = TpchLab::from_env();
    println!(
        "{:<8} {:>12} {:>8} {:>8} {:>8} | {:>12} {:>10} {:>10} {:>10}",
        "program", "independent", "step", "stage", "end", "t(ind)", "t(step)", "t(stage)", "t(end)"
    );
    for w in &lab.workloads {
        let session = session_for(&lab.data.db, w);
        let [ind, step, stage, end] = run_four(&session);
        println!(
            "{:<8} {:>12} {:>8} {:>8} {:>8} | {:>12} {:>10} {:>10} {:>10}",
            w.name,
            ind.size(),
            step.size(),
            stage.size(),
            end.size(),
            fmt_duration(ind.breakdown.total()),
            fmt_duration(step.breakdown.total()),
            fmt_duration(stage.breakdown.total()),
            fmt_duration(end.breakdown.total()),
        );
    }
}

/// Section 6 "Comparison with Triggers": programs 3, 4, 5, 8, 20 under
/// PostgreSQL (alphabetical) and MySQL (creation-order) firing.
fn trigger_comparison() {
    banner(&format!(
        "Triggers — PostgreSQL vs MySQL firing order (MAS scale {})",
        mas_scale()
    ));
    let lab = MasLab::from_env();
    println!(
        "{:<10} {:>14} {:>14} {:>8} {:>8} | {:>10} {:>10}",
        "program", "pg(size)", "mysql(size)", "step", "stage", "pg stable", "my stable"
    );
    for idx in [2usize, 3, 4, 7, 19] {
        let w = &lab.workloads[idx];
        let session = session_for(&lab.data.db, w);
        let trigs = triggers_from_program(session.program());
        // Reverse alphabetical names demonstrate the PostgreSQL reordering:
        // name triggers so alphabetical order is the reverse of creation.
        let named: Vec<triggers::Trigger> = trigs
            .iter()
            .enumerate()
            .map(|(i, t)| triggers::Trigger {
                name: format!("{}_{}", (b'z' - i as u8) as char, t.name),
                rule: t.rule,
            })
            .collect();
        let pg = run_triggers(
            session.db(),
            session.evaluator(),
            &named,
            FiringOrder::Alphabetical,
        );
        let my = run_triggers(
            session.db(),
            session.evaluator(),
            &named,
            FiringOrder::CreationOrder,
        );
        let step = session.run(Semantics::Step);
        let stage = session.run(Semantics::Stage);
        println!(
            "{:<10} {:>14} {:>14} {:>8} {:>8} | {:>10} {:>10}",
            w.name,
            pg.deleted.len(),
            my.deleted.len(),
            step.size(),
            stage.size(),
            check(pg.stable),
            check(my.stable),
        );
    }
}

const ERROR_STEPS: [usize; 6] = [100, 200, 300, 500, 700, 1000];

/// Tables 4 and 5: deletion semantics vs the HoloClean substitute on the
/// duplicated Author table.
fn table4_and_5(violations_view: bool) {
    let rows = env_usize("REPRO_ROWS", 5000);
    if violations_view {
        banner(&format!(
            "Table 5 — DC violations after/before repair ({rows} rows)"
        ));
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>14} {:>12}",
            "errors", "DC1", "DC2", "DC3", "DC4", "HC total", "sem. total"
        );
    } else {
        banner(&format!(
            "Table 4 — over-deletions vs HoloClean-substitute ({rows} rows)"
        ));
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>8} {:>12}",
            "errors", "Ind", "Step", "Stage", "End", "HoloClean"
        );
    }
    let dcs = paper_dcs();
    for errors in ERROR_STEPS {
        let mut table = author_table(rows, 42);
        let injected = inject_errors(&mut table, errors, 99).len();
        // Deletion semantics.
        let db = author_instance_from_table(&table);
        let session =
            repair_core::RepairSession::new(db, dc_delta_program()).expect("DC program valid");
        let results = session.run_all();
        for r in &results {
            assert!(
                session.verify_stabilizing(r.deleted()),
                "semantics must always stabilize (Prop. 3.18)"
            );
        }
        // Cell repair.
        let before: Vec<usize> = dcs
            .iter()
            .map(|dc| count_violating_tuples(&table, dc))
            .collect();
        let mut hc_table = table.clone();
        let report = hc_repair(&mut hc_table, &dcs, &CellRepairConfig::default());
        let after: Vec<usize> = dcs
            .iter()
            .map(|dc| count_violating_tuples(&hc_table, dc))
            .collect();
        if violations_view {
            println!(
                "{:<8} {:>5}/{:<6} {:>5}/{:<6} {:>5}/{:<6} {:>5}/{:<6} {:>6}/{:<7} {:>5}/{:<6}",
                injected,
                after[0],
                before[0],
                after[1],
                before[1],
                after[2],
                before[2],
                after[3],
                before[3],
                after.iter().sum::<usize>(),
                before.iter().sum::<usize>(),
                0,
                before.iter().sum::<usize>(),
            );
        } else {
            let over = |r: &repair_core::RepairOutcome| r.size() as i64 - injected as i64;
            println!(
                "{:<8} {:>+8} {:>+8} {:>+8} {:>+8} {:>+12}",
                injected,
                over(&results[0]),
                over(&results[1]),
                over(&results[2]),
                over(&results[3]),
                report.repairs.len() as i64 - injected as i64,
            );
        }
    }
}

/// Figure 10: runtimes for the four semantics and the HoloClean substitute,
/// scaling errors (10a) and rows (10b).
fn fig10() {
    let rows = env_usize("REPRO_ROWS", 5000);
    banner(&format!("Figure 10a — runtime vs #errors ({rows} rows)"));
    fig10_line_header();
    for errors in ERROR_STEPS {
        fig10_row(rows, errors);
    }
    let errors = env_usize("REPRO_ERRORS", 700);
    banner(&format!("Figure 10b — runtime vs #rows ({errors} errors)"));
    fig10_line_header();
    for rows in [1000, 3000, 5000, 7000, 9000] {
        fig10_row(rows, errors);
    }
}

fn fig10_line_header() {
    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "config", "independent", "step", "stage", "end", "holoclean"
    );
}

fn fig10_row(rows: usize, errors: usize) {
    let dcs = paper_dcs();
    let mut table = author_table(rows, 42);
    inject_errors(&mut table, errors, 99);
    let db = author_instance_from_table(&table);
    let session =
        repair_core::RepairSession::new(db, dc_delta_program()).expect("DC program valid");
    let times: Vec<String> = bench::SEM_ORDER
        .iter()
        .map(|&s| fmt_duration(session.run(s).breakdown().total()))
        .collect();
    let mut hc_table = table.clone();
    let t0 = Instant::now();
    hc_repair(&mut hc_table, &dcs, &CellRepairConfig::default());
    let hc = t0.elapsed();
    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>10} {:>12}",
        format!("{rows}r/{errors}e"),
        times[0],
        times[1],
        times[2],
        times[3],
        fmt_duration(hc)
    );
}

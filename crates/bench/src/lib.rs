//! Shared experiment plumbing for the `repro` binary and the criterion
//! benches.
//!
//! Dataset sizes are controlled by environment variables so the same code
//! drives quick CI runs and full paper-scale reproductions:
//!
//! * `REPRO_MAS_SCALE` — fraction of the 124K-tuple MAS fragment
//!   (default `0.05`; set `1.0` for paper scale);
//! * `REPRO_TPCH_SCALE` — fraction of the ~370K-tuple TPC-H fragment
//!   (default `0.02`);
//! * `REPRO_ROWS` / `REPRO_ERRORS` — the HoloClean-comparison table size
//!   and error count (defaults 5000 / 700, the paper's settings).

use datagen::{mas, scale, tpch, MasConfig, MasData, ScaleConfig, ScaleData, TpchConfig, TpchData};
use repair_core::{RepairRequest, RepairResult, RepairSession, Semantics};
use storage::Instance;
use workloads::Workload;

/// Read a float environment variable with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read an integer environment variable with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// MAS scale factor (`REPRO_MAS_SCALE`, default 0.05 ≈ 6.2K tuples).
pub fn mas_scale() -> f64 {
    env_f64("REPRO_MAS_SCALE", 0.05)
}

/// TPC-H scale factor (`REPRO_TPCH_SCALE`, default 0.02 ≈ 7.4K tuples).
pub fn tpch_scale() -> f64 {
    env_f64("REPRO_TPCH_SCALE", 0.02)
}

/// The MAS dataset with its twenty Table 1 workloads.
pub struct MasLab {
    /// Generated data + heavy-hitter metadata.
    pub data: MasData,
    /// The twenty programs.
    pub workloads: Vec<Workload>,
}

impl MasLab {
    /// Generate at the given scale.
    pub fn at_scale(scale: f64) -> MasLab {
        let data = mas::generate(&MasConfig::scaled(scale));
        let workloads = workloads::mas_programs(&data);
        MasLab { data, workloads }
    }

    /// Generate at the environment-selected scale.
    pub fn from_env() -> MasLab {
        MasLab::at_scale(mas_scale())
    }
}

/// The TPC-H dataset with its six Table 2 workloads.
pub struct TpchLab {
    /// Generated data.
    pub data: TpchData,
    /// The six programs.
    pub workloads: Vec<Workload>,
}

impl TpchLab {
    /// Generate at the given scale.
    pub fn at_scale(scale: f64) -> TpchLab {
        let data = tpch::generate(&TpchConfig::scaled(scale));
        let workloads = workloads::tpch_programs(&data);
        TpchLab { data, workloads }
    }

    /// Generate at the environment-selected scale.
    pub fn from_env() -> TpchLab {
        TpchLab::at_scale(tpch_scale())
    }
}

/// The zipf scaling dataset (`datagen::scale`) with its three workloads.
pub struct ZipfLab {
    /// Generated data.
    pub data: ScaleData,
    /// `zipf-cascade`, `zipf-join` and `zipf-pessimal`.
    pub workloads: Vec<Workload>,
}

impl ZipfLab {
    /// Generate at the given scale (1.0 ≈ 122K tuples).
    pub fn at_scale(scale_factor: f64) -> ZipfLab {
        let data = scale::generate(&ScaleConfig::scaled(scale_factor));
        let workloads = workloads::zipf_programs(&data);
        ZipfLab { data, workloads }
    }
}

/// Build a repair session for one workload over (a clone of) `db`.
///
/// The clone is needed because the session takes ownership and builds its
/// probe indexes; experiments share one generated dataset across many
/// programs.
pub fn session_for(db: &Instance, w: &Workload) -> RepairSession {
    RepairSession::new(db.clone(), w.program.clone())
        .unwrap_or_else(|e| panic!("workload {}: {e}", w.name))
}

/// Run all four semantics for a workload; results in paper order
/// (independent, step, stage, end).
pub fn run_four(session: &RepairSession) -> [RepairResult; 4] {
    session
        .run_all()
        .map(repair_core::RepairOutcome::into_result)
}

/// Format a `Duration` in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Render `✓`/`✗` like Table 3.
pub fn check(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}

/// The four semantics in paper order, for table headers.
pub const SEM_ORDER: [Semantics; 4] = [
    Semantics::Independent,
    Semantics::Step,
    Semantics::Stage,
    Semantics::End,
];

// ---------------------------------------------------------------------------
// BENCH_*.json emission (`repro bench-json`).
// ---------------------------------------------------------------------------

/// One measured benchmark in the `BENCH_*.json` schema.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full bench id, e.g. `fig7_mas_semantics/independent/mas-08`.
    pub bench: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iterations: u64,
    /// Delete-set size of the measured repair, when the group records it.
    /// The `semantics_scale` group carries it so `scripts/bench_gate.py`
    /// can assert thread-count parity (every `t*` variant of a workload
    /// must report the same size).
    pub size: Option<usize>,
}

/// The criterion shim's measurement loop, re-exported so `BENCH_*.json`
/// records are timed exactly like the criterion benches.
pub use criterion::measure_mean_ns;

/// Run the repository's perf-tracking bench set — the same workloads and
/// groups as the `semantics_mas` (MAS scale 0.02) and `semantics_tpch`
/// (TPC-H scale 0.01) criterion benches — and return the records.
/// `quick` shortens warm-up/measurement for CI smoke runs; committed
/// `BENCH_*.json` files must use `quick = false`.
pub fn bench_json_records(quick: bool) -> Vec<BenchRecord> {
    use std::time::Duration;
    let (warm, meas, iters) = if quick {
        (Duration::from_millis(30), Duration::from_millis(100), 3)
    } else {
        (Duration::from_millis(400), Duration::from_millis(1200), 10)
    };
    let mut records = Vec::new();
    let mut run_group = |group: &str, db: &Instance, workloads: &[Workload], names: &[&str]| {
        for name in names {
            let w = workloads
                .iter()
                .find(|w| w.name == *name)
                .expect("workload present");
            let session = session_for(db, w);
            for sem in SEM_ORDER {
                // Force a full computation per iteration: repeated
                // identical end requests on an unmutated session are
                // otherwise served from the incremental checkpoint in ~1µs,
                // which is the service win but not the hot path these
                // records track against earlier BENCH_*.json baselines.
                // The incremental path has its own group below.
                let request = repair_core::RepairRequest::new(sem).incremental(false);
                let (mean_ns, iterations) = measure_mean_ns(warm, meas, iters, || {
                    std::hint::black_box(session.repair(&request).expect("valid").size());
                });
                records.push(BenchRecord {
                    bench: format!("{group}/{}/{name}", sem.name()),
                    mean_ns,
                    iterations,
                    size: None,
                });
            }
        }
    };
    let mas = MasLab::at_scale(0.02);
    run_group(
        "fig7_mas_semantics",
        &mas.data.db,
        &mas.workloads,
        &["mas-02", "mas-08", "mas-11", "mas-20"],
    );
    let tpch = TpchLab::at_scale(0.01);
    run_group(
        "fig9b_tpch_semantics",
        &tpch.data.db,
        &tpch.workloads,
        &["tpch-2", "tpch-4", "tpch-5"],
    );
    incremental_rerepair_records(quick, &mut records);
    semantics_scale_records(quick, &mut records);
    durability_cold_open_records(quick, &mut records);
    planner_records(quick, &mut records);
    records
}

/// The `planner` group: the adversarially ordered `zipf-pessimal` join
/// enumerated under the static textual-order planner and the cost-based
/// planner — the `planner/{static,cost}/zipf-pessimal` pair whose ratio is
/// the headline planning speedup, gated by `scripts/bench_gate.py
/// --min-plan-speedup`. The workload's body leads with the 60K-row `Leaf`
/// and buries the `k = 'bad'`-filtered `Hub` last, so textual order drives
/// the join from the biggest relation while live statistics drive it from
/// the ~2% selective one. Both evaluators enumerate the same assignment
/// set; each record carries the assignment count as `size` so the gate can
/// assert parity. Scale overrides via `REPRO_PLANNER_ZIPF`.
fn planner_records(quick: bool, records: &mut Vec<BenchRecord>) {
    use datalog::Evaluator;
    use std::time::Duration;
    let (warm, meas, iters) = if quick {
        (Duration::from_millis(20), Duration::from_millis(80), 2)
    } else {
        (Duration::from_millis(300), Duration::from_millis(1000), 5)
    };
    let zipf = ZipfLab::at_scale(if quick {
        0.1
    } else {
        env_f64("REPRO_PLANNER_ZIPF", 1.0)
    });
    let w = zipf
        .workloads
        .iter()
        .find(|w| w.name == "zipf-pessimal")
        .expect("workload present");
    let mut counts: Vec<u64> = Vec::new();
    for mode in ["static", "cost"] {
        let mut db = zipf.data.db.clone();
        let ev = if mode == "cost" {
            Evaluator::new(&mut db, w.program.clone())
        } else {
            Evaluator::new_static(&mut db, w.program.clone())
        }
        .expect("zipf program valid");
        let state0 = db.initial_state();
        let mut n = 0u64;
        let (mean_ns, iterations) = measure_mean_ns(warm, meas, iters, || {
            let mut c = 0u64;
            ev.for_each_assignment(&db, &state0, datalog::Mode::Hypothetical, &mut |_| {
                c += 1;
                true
            });
            n = std::hint::black_box(c);
        });
        counts.push(n);
        records.push(BenchRecord {
            bench: format!("planner/{mode}/zipf-pessimal"),
            mean_ns,
            iterations,
            size: Some(n as usize),
        });
    }
    assert!(
        counts.windows(2).all(|c| c[0] == c[1]),
        "planner parity violated on zipf-pessimal: {counts:?}"
    );
}

/// The cold-start cost of a durable session: opening the newest snapshot
/// (binary decode + WAL replay) versus re-ingesting the same database from
/// its TSV dump — the `durability/{cold_open,tsv_ingest}` pair. Both paths
/// produce a ready [`Instance`]; everything downstream (session build,
/// planning) is identical, so the pair isolates exactly what `open_durable`
/// saves over the pre-durability "reload the TSV" cold start. Measured on
/// the zipf universe at 10× the `semantics_scale` quick size (override via
/// `REPRO_DURABILITY_ZIPF`); gated by `scripts/bench_gate.py
/// --min-cold-open-speedup`.
fn durability_cold_open_records(quick: bool, records: &mut Vec<BenchRecord>) {
    use std::path::Path;
    use std::sync::Arc;
    use std::time::Duration;
    use storage::{DiskOptions, DiskStore, FsyncPolicy, MemIo, SessionMeta};
    let (warm, meas, iters) = if quick {
        (Duration::from_millis(20), Duration::from_millis(80), 2)
    } else {
        (Duration::from_millis(300), Duration::from_millis(1000), 5)
    };
    let zipf = ZipfLab::at_scale(if quick {
        0.25
    } else {
        env_f64("REPRO_DURABILITY_ZIPF", 2.5)
    });
    let db = &zipf.data.db;
    let tsv = storage::tsv::to_tsv_typed(db);
    // An in-memory store keeps the pair an apples-to-apples CPU comparison
    // (snapshot decode vs text parse), free of device variance.
    let io: Arc<MemIo> = Arc::new(MemIo::new());
    let dir = Path::new("/bench-store");
    let opts = || DiskOptions {
        fsync: FsyncPolicy::OnCheckpoint,
        io: io.clone(),
        checkpoint_every: 0,
    };
    DiskStore::create(dir, opts(), db, &SessionMeta::default()).expect("in-memory store");
    let rows = db.total_rows();
    let (mean_ns, iterations) = measure_mean_ns(warm, meas, iters, || {
        let (_, recovered, _, _) = DiskStore::open(dir, opts()).expect("clean store");
        assert_eq!(std::hint::black_box(recovered).total_rows(), rows);
    });
    records.push(BenchRecord {
        bench: "durability/cold_open/zipf".into(),
        mean_ns,
        iterations,
        size: None,
    });
    let (mean_ns, iterations) = measure_mean_ns(warm, meas, iters, || {
        let ingested = storage::tsv::load_document(&tsv).expect("own dump");
        assert_eq!(std::hint::black_box(ingested).total_rows(), rows);
    });
    records.push(BenchRecord {
        bench: "durability/tsv_ingest/zipf".into(),
        mean_ns,
        iterations,
        size: None,
    });
}

/// The thread counts the `semantics_scale` group measures at.
pub const SCALE_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The scaled-up workload set of the `semantics_scale` group: the heaviest
/// tracked MAS and TPC-H workloads at 10× the fig7/fig9b measurement
/// scales, plus the two zipf-universe programs built for intra-rule
/// parallelism. Scales override via `REPRO_SCALE_MAS` / `REPRO_SCALE_TPCH`
/// / `REPRO_SCALE_ZIPF` (e.g. 1.0 / 0.5 / 50.0 for the 50× protocol of
/// EXPERIMENTS.md); quick mode shrinks everything to CI-smoke size.
pub fn scale_picks(quick: bool) -> Vec<(String, RepairSession)> {
    let (mas_s, tpch_s, zipf_s) = if quick {
        (0.05, 0.02, 0.25)
    } else {
        (
            env_f64("REPRO_SCALE_MAS", 0.2),
            env_f64("REPRO_SCALE_TPCH", 0.1),
            env_f64("REPRO_SCALE_ZIPF", 1.0),
        )
    };
    let mut picks: Vec<(String, RepairSession)> = Vec::new();
    let mas = MasLab::at_scale(mas_s);
    let tpch = TpchLab::at_scale(tpch_s);
    let zipf = ZipfLab::at_scale(zipf_s);
    for (db, workloads, names) in [
        (&mas.data.db, &mas.workloads, &["mas-08"][..]),
        (&tpch.data.db, &tpch.workloads, &["tpch-2"][..]),
        (
            &zipf.data.db,
            &zipf.workloads,
            &["zipf-cascade", "zipf-join"][..],
        ),
    ] {
        for name in names {
            let w = workloads
                .iter()
                .find(|w| w.name == *name)
                .expect("workload present");
            picks.push((w.name.clone(), session_for(db, w)));
        }
    }
    picks
}

/// The `semantics_scale` group: end and independent semantics over the
/// scaled-up workloads, measured at 1/2/4/8 worker threads inside one
/// process via [`RepairRequest::threads`]. Each record carries the
/// delete-set size so the bench gate can assert bit-level parity across
/// thread counts (the sizes must match; the full differential suites prove
/// the stronger bit-for-bit property). On a serial (non-`parallel`) build
/// the thread knob is inert and every `t*` variant measures the serial
/// path — still a valid parity record, never a speedup one.
fn semantics_scale_records(quick: bool, records: &mut Vec<BenchRecord>) {
    use std::time::Duration;
    let (warm, meas, iters) = if quick {
        (Duration::from_millis(20), Duration::from_millis(80), 2)
    } else {
        (Duration::from_millis(300), Duration::from_millis(1000), 5)
    };
    for (name, session) in scale_picks(quick) {
        for sem in [Semantics::End, Semantics::Independent] {
            let mut sizes: Vec<usize> = Vec::new();
            for t in SCALE_THREADS {
                // Force the full computation (not the incremental
                // checkpoint) so every thread count measures the same
                // evaluation work.
                let request = RepairRequest::new(sem).incremental(false).threads(t);
                let mut size = 0usize;
                let (mean_ns, iterations) = measure_mean_ns(warm, meas, iters, || {
                    size = std::hint::black_box(session.repair(&request).expect("valid").size());
                });
                sizes.push(size);
                records.push(BenchRecord {
                    bench: format!("semantics_scale/{name}/{}/t{t}", sem.name()),
                    mean_ns,
                    iterations,
                    size: Some(size),
                });
            }
            assert!(
                sizes.windows(2).all(|w| w[0] == w[1]),
                "thread-count parity violated for semantics_scale/{name}/{}: {sizes:?}",
                sem.name()
            );
        }
    }
}

/// The mutate → re-repair loop a long-lived session serves: delete a ≤1%
/// spread of tuples, repair, restore them, repair again. Each id is
/// measured per *loop iteration* (two re-repairs plus the two mutations),
/// once with the incrementally maintained checkpoint and once forced
/// through full recomputes — the `incremental_rerepair/{incremental,full}`
/// ratio is the headline incremental speedup, on the **largest** tracked
/// MAS and TPC-H workloads at a heavier scale than the fig7/fig9b groups.
fn incremental_rerepair_records(quick: bool, records: &mut Vec<BenchRecord>) {
    use repair_core::RepairRequest;
    use std::time::Duration;
    let (warm, meas, iters) = if quick {
        (Duration::from_millis(30), Duration::from_millis(120), 3)
    } else {
        (Duration::from_millis(400), Duration::from_millis(1500), 10)
    };
    let mas = MasLab::at_scale(0.1);
    let tpch = TpchLab::at_scale(0.05);
    let picks: [(&Instance, &[Workload], &str); 2] = [
        (&mas.data.db, &mas.workloads, "mas-08"),
        (&tpch.data.db, &tpch.workloads, "tpch-2"),
    ];
    for (db, workloads, name) in picks {
        let w = workloads
            .iter()
            .find(|w| w.name == name)
            .expect("workload present");
        // A ≤1% delta: every 500th live tuple (0.2%), spread across all
        // relations so deletions land inside real join cones.
        let ids: Vec<storage::TupleId> = db
            .all_tuple_ids()
            .enumerate()
            .filter(|(i, _)| i % 500 == 250)
            .map(|(_, t)| t)
            .collect();
        assert!(!ids.is_empty(), "scale too small for a 0.2% delta");
        for mode in ["incremental", "full"] {
            let mut session = session_for(db, w);
            let request = RepairRequest::new(Semantics::End).incremental(mode == "incremental");
            session.repair(&request).expect("valid request"); // prime / warm
            let (mean_ns, iterations) = measure_mean_ns(warm, meas, iters, || {
                session.delete_batch(&ids).expect("live ids");
                let after_delete = session.repair(&request).expect("valid request");
                session.restore_batch(&ids).expect("tombstoned ids");
                let after_restore = session.repair(&request).expect("valid request");
                std::hint::black_box(after_delete.size() + after_restore.size());
            });
            records.push(BenchRecord {
                bench: format!("incremental_rerepair/{mode}/{name}"),
                mean_ns,
                iterations,
                size: None,
            });
        }
    }
}

/// `(year, month, day)` of a Unix timestamp (civil-from-days, UTC).
fn civil_date(secs: u64) -> (i64, u32, u32) {
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Render one mode's records in the committed `BENCH_*.json` layout. Files
/// with several modes (serial + parallel builds) are produced by one
/// invocation per mode and merging the `runs` objects; see EXPERIMENTS.md.
pub fn render_bench_json(mode: &str, records: &[BenchRecord]) -> String {
    use std::fmt::Write as _;
    let (y, m, d) = civil_date(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    );
    let hardware = std::env::var("BENCH_JSON_HARDWARE").unwrap_or_else(|_| {
        "CI container, 1 vCPU (parallel speedup not observable here; see EXPERIMENTS.md)".to_owned()
    });
    let mut out = String::new();
    out.push_str("{\n \"meta\": {\n");
    let _ = writeln!(out, "  \"date\": \"{y:04}-{m:02}-{d:02}\",");
    let _ = writeln!(out, "  \"hardware\": \"{hardware}\",");
    out.push_str(
        "  \"benches\": [\n   \"semantics_mas (fig7, scale 0.02)\",\n   \"semantics_tpch (fig9, scale 0.01)\",\n   \"semantics_scale (threads 1/2/4/8, 10x scales)\",\n   \"durability (cold_open vs tsv_ingest, zipf)\",\n   \"planner (static vs cost, zipf-pessimal)\"\n  ],\n");
    out.push_str("  \"unit\": \"mean_ns per session.run()\"\n },\n \"runs\": {\n");
    let _ = writeln!(out, "  \"{mode}\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let size = r
            .size
            .map(|s| format!("\n    \"size\": {s},"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "   {{\n    \"bench\": \"{}\",{size}\n    \"mean_ns\": {:.1},\n    \"iterations\": {}\n   }}{comma}",
            r.bench, r.mean_ns, r.iterations
        );
    }
    out.push_str("  ]\n }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labs_build_at_tiny_scale() {
        let mas = MasLab::at_scale(0.005);
        assert_eq!(mas.workloads.len(), 20);
        assert!(mas.data.db.total_rows() > 100);
        let tpch = TpchLab::at_scale(0.005);
        assert_eq!(tpch.workloads.len(), 6);
    }

    #[test]
    fn run_four_is_ordered_and_stabilizing() {
        let lab = MasLab::at_scale(0.005);
        let session = session_for(&lab.data.db, &lab.workloads[4]); // mas-05
        let results = run_four(&session);
        assert_eq!(results[0].semantics, Semantics::Independent);
        assert_eq!(results[3].semantics, Semantics::End);
        for r in &results {
            assert!(session.verify_stabilizing(&r.deleted));
        }
    }

    #[test]
    fn incremental_and_full_rerepair_agree_bit_for_bit() {
        use repair_core::RepairRequest;
        let lab = MasLab::at_scale(0.01);
        let w = &lab.workloads[7]; // mas-08, the tracked heavy hitter
        let mut session = session_for(&lab.data.db, w);
        session.run(Semantics::End); // prime
        let ids: Vec<storage::TupleId> = lab
            .data
            .db
            .all_tuple_ids()
            .enumerate()
            .filter(|(i, _)| i % 100 == 50)
            .map(|(_, t)| t)
            .collect();
        session.delete_batch(&ids).unwrap();
        let inc = session.run(Semantics::End);
        assert!(inc.served_incrementally(), "bench must hit the fast path");
        let full = session
            .repair(&RepairRequest::new(Semantics::End).incremental(false))
            .unwrap();
        assert_eq!(inc.deleted(), full.deleted());
        session.restore_batch(&ids).unwrap();
        let back = session.run(Semantics::End);
        assert!(back.served_incrementally());
        let full_back = session
            .repair(&RepairRequest::new(Semantics::End).incremental(false))
            .unwrap();
        assert_eq!(back.deleted(), full_back.deleted());
    }

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_f64("REPRO_NO_SUCH_VAR_XYZ", 0.25), 0.25);
        assert_eq!(env_usize("REPRO_NO_SUCH_VAR_XYZ", 7), 7);
    }

    #[test]
    fn civil_date_known_values() {
        assert_eq!(civil_date(0), (1970, 1, 1));
        assert_eq!(civil_date(86_400), (1970, 1, 2));
        // 2026-07-30 00:00:00 UTC.
        assert_eq!(civil_date(1_785_369_600), (2026, 7, 30));
    }

    #[test]
    fn bench_json_renders_parseable_schema() {
        let records = vec![
            BenchRecord {
                bench: "fig7_mas_semantics/end/mas-02".into(),
                mean_ns: 1234.5,
                iterations: 100,
                size: None,
            },
            BenchRecord {
                bench: "semantics_scale/zipf-join/end/t4".into(),
                mean_ns: 9.0,
                iterations: 3,
                size: Some(77),
            },
        ];
        let out = render_bench_json("serial", &records);
        // Structural spot-checks (no JSON parser in the offline build).
        assert!(out.contains("\"runs\""));
        assert!(out.contains("\"serial\": ["));
        assert!(out.contains("\"bench\": \"fig7_mas_semantics/end/mas-02\""));
        assert!(out.contains("\"mean_ns\": 1234.5"));
        assert!(out.contains("\"iterations\": 3"));
        assert!(out.contains("\"size\": 77"));
        assert_eq!(out.matches("\"bench\"").count(), 2);
        assert_eq!(
            out.matches("\"size\"").count(),
            1,
            "size only when recorded"
        );
    }

    #[test]
    fn measure_mean_ns_runs_at_least_min_iters() {
        use std::time::Duration;
        let mut n = 0u64;
        let (mean, iters) =
            measure_mean_ns(Duration::ZERO, Duration::ZERO, 5, || n = n.wrapping_add(1));
        assert!(iters >= 5);
        assert!(mean >= 0.0);
        assert!(n >= 5);
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(10)), "10µs");
    }
}

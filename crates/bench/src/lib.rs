//! Shared experiment plumbing for the `repro` binary and the criterion
//! benches.
//!
//! Dataset sizes are controlled by environment variables so the same code
//! drives quick CI runs and full paper-scale reproductions:
//!
//! * `REPRO_MAS_SCALE` — fraction of the 124K-tuple MAS fragment
//!   (default `0.05`; set `1.0` for paper scale);
//! * `REPRO_TPCH_SCALE` — fraction of the ~370K-tuple TPC-H fragment
//!   (default `0.02`);
//! * `REPRO_ROWS` / `REPRO_ERRORS` — the HoloClean-comparison table size
//!   and error count (defaults 5000 / 700, the paper's settings).

use datagen::{mas, tpch, MasConfig, MasData, TpchConfig, TpchData};
use repair_core::{RepairResult, Repairer, Semantics};
use storage::Instance;
use workloads::Workload;

/// Read a float environment variable with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read an integer environment variable with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// MAS scale factor (`REPRO_MAS_SCALE`, default 0.05 ≈ 6.2K tuples).
pub fn mas_scale() -> f64 {
    env_f64("REPRO_MAS_SCALE", 0.05)
}

/// TPC-H scale factor (`REPRO_TPCH_SCALE`, default 0.02 ≈ 7.4K tuples).
pub fn tpch_scale() -> f64 {
    env_f64("REPRO_TPCH_SCALE", 0.02)
}

/// The MAS dataset with its twenty Table 1 workloads.
pub struct MasLab {
    /// Generated data + heavy-hitter metadata.
    pub data: MasData,
    /// The twenty programs.
    pub workloads: Vec<Workload>,
}

impl MasLab {
    /// Generate at the given scale.
    pub fn at_scale(scale: f64) -> MasLab {
        let data = mas::generate(&MasConfig::scaled(scale));
        let workloads = workloads::mas_programs(&data);
        MasLab { data, workloads }
    }

    /// Generate at the environment-selected scale.
    pub fn from_env() -> MasLab {
        MasLab::at_scale(mas_scale())
    }
}

/// The TPC-H dataset with its six Table 2 workloads.
pub struct TpchLab {
    /// Generated data.
    pub data: TpchData,
    /// The six programs.
    pub workloads: Vec<Workload>,
}

impl TpchLab {
    /// Generate at the given scale.
    pub fn at_scale(scale: f64) -> TpchLab {
        let data = tpch::generate(&TpchConfig::scaled(scale));
        let workloads = workloads::tpch_programs(&data);
        TpchLab { data, workloads }
    }

    /// Generate at the environment-selected scale.
    pub fn from_env() -> TpchLab {
        TpchLab::at_scale(tpch_scale())
    }
}

/// Build a repairer for one workload over (a clone of) `db`.
///
/// The clone is needed because planning builds indexes; experiments share
/// one generated dataset across many programs.
pub fn repairer_for(db: &Instance, w: &Workload) -> (Instance, Repairer) {
    let mut db = db.clone();
    let repairer = Repairer::new(&mut db, w.program.clone())
        .unwrap_or_else(|e| panic!("workload {}: {e}", w.name));
    (db, repairer)
}

/// Run all four semantics for a workload; results in paper order
/// (independent, step, stage, end).
pub fn run_four(db: &Instance, repairer: &Repairer) -> [RepairResult; 4] {
    repairer.run_all(db)
}

/// Format a `Duration` in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Render `✓`/`✗` like Table 3.
pub fn check(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}

/// The four semantics in paper order, for table headers.
pub const SEM_ORDER: [Semantics; 4] = [
    Semantics::Independent,
    Semantics::Step,
    Semantics::Stage,
    Semantics::End,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labs_build_at_tiny_scale() {
        let mas = MasLab::at_scale(0.005);
        assert_eq!(mas.workloads.len(), 20);
        assert!(mas.data.db.total_rows() > 100);
        let tpch = TpchLab::at_scale(0.005);
        assert_eq!(tpch.workloads.len(), 6);
    }

    #[test]
    fn run_four_is_ordered_and_stabilizing() {
        let lab = MasLab::at_scale(0.005);
        let (db, repairer) = repairer_for(&lab.data.db, &lab.workloads[4]); // mas-05
        let results = run_four(&db, &repairer);
        assert_eq!(results[0].semantics, Semantics::Independent);
        assert_eq!(results[3].semantics, Semantics::End);
        for r in &results {
            assert!(repairer.verify_stabilizing(&db, &r.deleted));
        }
    }

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_f64("REPRO_NO_SUCH_VAR_XYZ", 0.25), 0.25);
        assert_eq!(env_usize("REPRO_NO_SUCH_VAR_XYZ", 7), 7);
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(10)), "10µs");
    }
}

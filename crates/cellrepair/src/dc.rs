//! Single-table binary denial constraints.
//!
//! The comparison experiment uses four DCs over
//! `Author(aid, name, oid, organization)` — all of the form
//! `¬(t1.A = t2.A ∧ t1.B ≠ t2.B)`. Detection groups rows by the equality
//! columns and checks the inequality predicates within each group, so it is
//! near-linear rather than quadratic.

use crate::table::Table;
use std::collections::HashMap;
use storage::Value;

/// Predicate operator between two tuples' cells.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DcOp {
    /// `t1[left] = t2[right]`
    Eq,
    /// `t1[left] ≠ t2[right]`
    Neq,
}

/// One predicate of a binary DC.
#[derive(Clone, Copy, Debug)]
pub struct DcPredicate {
    /// Column of the first tuple.
    pub left: usize,
    /// Operator.
    pub op: DcOp,
    /// Column of the second tuple.
    pub right: usize,
}

/// A binary denial constraint `¬(p1 ∧ p2 ∧ …)` over one table.
#[derive(Clone, Debug)]
pub struct DenialConstraint {
    /// Display name (e.g. `DC1`).
    pub name: String,
    /// Conjunction of predicates over a tuple pair.
    pub preds: Vec<DcPredicate>,
}

impl DenialConstraint {
    /// Convenience constructor for the common `same A ⇒ same B` shape:
    /// `¬(t1.key = t2.key ∧ t1.val ≠ t2.val)`.
    pub fn key_determines(name: &str, key: usize, val: usize) -> DenialConstraint {
        DenialConstraint {
            name: name.to_owned(),
            preds: vec![
                DcPredicate {
                    left: key,
                    op: DcOp::Eq,
                    right: key,
                },
                DcPredicate {
                    left: val,
                    op: DcOp::Neq,
                    right: val,
                },
            ],
        }
    }

    /// Columns appearing in equality predicates (the grouping key).
    pub fn eq_columns(&self) -> Vec<(usize, usize)> {
        self.preds
            .iter()
            .filter(|p| p.op == DcOp::Eq)
            .map(|p| (p.left, p.right))
            .collect()
    }

    /// Columns appearing in inequality predicates — the cells detection
    /// flags as noisy.
    pub fn neq_columns(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .preds
            .iter()
            .filter(|p| p.op == DcOp::Neq)
            .flat_map(|p| [p.left, p.right])
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Do rows `(i, j)` of `table` jointly violate the constraint?
    pub fn violates(&self, table: &Table, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        self.preds.iter().all(|p| {
            let a = table.cell(i, p.left);
            let b = table.cell(j, p.right);
            match p.op {
                DcOp::Eq => a == b,
                DcOp::Neq => a != b,
            }
        })
    }
}

/// All unordered violating pairs `(i, j)`, `i < j`, for one constraint.
pub fn violating_pairs(table: &Table, dc: &DenialConstraint) -> Vec<(usize, usize)> {
    let eq = dc.eq_columns();
    let mut pairs = Vec::new();
    if eq.is_empty() {
        for i in 0..table.len() {
            for j in (i + 1)..table.len() {
                if dc.violates(table, i, j) || dc.violates(table, j, i) {
                    pairs.push((i, j));
                }
            }
        }
        return pairs;
    }
    // Group rows by the equality key of the *left* side; since all our DCs
    // use symmetric keys (left == right), group membership is symmetric.
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for i in 0..table.len() {
        let key: Vec<Value> = eq.iter().map(|&(l, _)| *table.cell(i, l)).collect();
        groups.entry(key).or_default().push(i);
    }
    for group in groups.values() {
        for (a, &i) in group.iter().enumerate() {
            for &j in &group[a + 1..] {
                if dc.violates(table, i, j) || dc.violates(table, j, i) {
                    pairs.push((i, j));
                }
            }
        }
    }
    pairs
}

/// Number of distinct tuples participating in at least one violation of
/// `dc` — the quantity reported per DC in Table 5 of the paper.
pub fn count_violating_tuples(table: &Table, dc: &DenialConstraint) -> usize {
    let mut rows: Vec<usize> = violating_pairs(table, dc)
        .into_iter()
        .flat_map(|(i, j)| [i, j])
        .collect();
    rows.sort_unstable();
    rows.dedup();
    rows.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn author_table() -> Table {
        let mut t = Table::new(&["aid", "name", "oid", "org"]);
        let mut push = |aid: i64, name: &str, oid: i64, org: &str| {
            t.push_row(vec![
                Value::Int(aid),
                Value::str(name),
                Value::Int(oid),
                Value::str(org),
            ]);
        };
        push(1, "Ann", 10, "MIT");
        push(1, "Ann", 10, "MIT"); // duplicate, consistent
        push(2, "Bob", 20, "CMU");
        push(2, "Bob", 21, "CMU"); // violates aid→oid
        push(3, "Cid", 30, "UW");
        push(4, "Dan", 30, "U W"); // violates oid→org with row 4
        t
    }

    #[test]
    fn key_determines_finds_pairs() {
        let t = author_table();
        let dc1 = DenialConstraint::key_determines("DC1", 0, 2); // aid → oid
        assert_eq!(violating_pairs(&t, &dc1), vec![(2, 3)]);
        assert_eq!(count_violating_tuples(&t, &dc1), 2);
    }

    #[test]
    fn consistent_duplicates_do_not_violate() {
        let t = author_table();
        let dc2 = DenialConstraint::key_determines("DC2", 0, 1); // aid → name
        assert!(violating_pairs(&t, &dc2).is_empty());
    }

    #[test]
    fn oid_determines_org() {
        let t = author_table();
        let dc4 = DenialConstraint::key_determines("DC4", 2, 3);
        assert_eq!(violating_pairs(&t, &dc4), vec![(4, 5)]);
    }

    #[test]
    fn neq_columns_flag_repairable_cells() {
        let dc = DenialConstraint::key_determines("DC", 0, 2);
        assert_eq!(dc.neq_columns(), vec![2]);
        assert_eq!(dc.eq_columns(), vec![(0, 0)]);
    }

    #[test]
    fn violates_is_irreflexive() {
        let t = author_table();
        let dc = DenialConstraint::key_determines("DC", 0, 2);
        assert!(!dc.violates(&t, 2, 2));
    }
}

//! # cellrepair — a HoloClean-style probabilistic cell-repair system
//!
//! The paper's Section 6 compares the four deletion semantics against
//! HoloClean [Rekatsinas et al., PVLDB 2017], which *relaxes* denial
//! constraints and repairs **cells** (attribute values) instead of deleting
//! tuples. HoloClean itself (Python + Torch) is not available offline, so
//! this crate substitutes a compact reimplementation of its pipeline:
//!
//! 1. **detect** — find tuple pairs violating denial constraints; the cells
//!    named by inequality predicates are marked noisy;
//! 2. **domain** — candidate values for a noisy cell are values co-occurring
//!    with the tuple's other attributes elsewhere in the table;
//! 3. **featurize** — frequency, co-occurrence, minimality (is the current
//!    value) and a DC-violation penalty per candidate;
//! 4. **learn** — logistic weights trained by weak supervision on cells
//!    *not* marked noisy (their current value is the positive example);
//! 5. **infer** — repair a cell only when the best candidate's probability
//!    beats the runner-up by a confidence margin.
//!
//! The confidence gate is what reproduces the paper's observation (Tables 4
//! and 5): as errors grow, statistics get noisier, fewer repairs clear the
//! bar, and the repaired table still contains DC violations — whereas all
//! four deletion semantics always return a stable database.

pub mod dc;
pub mod model;
pub mod repair;
pub mod table;

pub use dc::{count_violating_tuples, violating_pairs, DcOp, DcPredicate, DenialConstraint};
pub use repair::{repair, CellRepairConfig, RepairReport};
pub use table::Table;

//! Feature extraction and the weak-supervised logistic scorer.

use crate::dc::DenialConstraint;
use crate::table::Table;
use std::collections::HashMap;
use storage::Value;

/// Number of features per candidate value.
pub const N_FEATURES: usize = 4;

/// Precomputed statistics for feature extraction.
pub struct FeatureExtractor<'a> {
    table: &'a Table,
    /// `freq[c][v]` = number of rows with value `v` in column `c`.
    freq: Vec<HashMap<Value, u32>>,
    /// `cooc[(a, b)][(va, vb)]` = rows with `a = va ∧ b = vb`.
    cooc: HashMap<(usize, usize), HashMap<(Value, Value), u32>>,
    /// Per DC: rows grouped by the equality-column key.
    dc_groups: Vec<HashMap<Vec<Value>, Vec<usize>>>,
    dcs: &'a [DenialConstraint],
}

impl<'a> FeatureExtractor<'a> {
    /// Scan the table once and build all statistics.
    pub fn new(table: &'a Table, dcs: &'a [DenialConstraint]) -> FeatureExtractor<'a> {
        let ncols = table.columns.len();
        let mut freq = vec![HashMap::new(); ncols];
        let mut cooc: HashMap<(usize, usize), HashMap<(Value, Value), u32>> = HashMap::new();
        for row in &table.rows {
            for (c, v) in row.iter().enumerate() {
                *freq[c].entry(*v).or_insert(0) += 1;
            }
            for a in 0..ncols {
                for b in 0..ncols {
                    if a != b {
                        *cooc
                            .entry((a, b))
                            .or_default()
                            .entry((row[a], row[b]))
                            .or_insert(0) += 1;
                    }
                }
            }
        }
        let dc_groups = dcs
            .iter()
            .map(|dc| {
                let eq = dc.eq_columns();
                let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (i, row) in table.rows.iter().enumerate() {
                    let key: Vec<Value> = eq.iter().map(|&(l, _)| row[l]).collect();
                    groups.entry(key).or_default().push(i);
                }
                groups
            })
            .collect();
        FeatureExtractor {
            table,
            freq,
            cooc,
            dc_groups,
            dcs,
        }
    }

    /// How many rows would violate some DC against row `i` if cell
    /// `(i, col)` were set to `v`?
    fn hypothetical_violations(&self, i: usize, col: usize, v: Value) -> usize {
        let mut hrow = self.table.rows[i].clone();
        hrow[col] = v;
        let mut total = 0;
        for (dc, groups) in self.dcs.iter().zip(&self.dc_groups) {
            let involved = dc.preds.iter().any(|p| p.left == col || p.right == col);
            if !involved {
                continue;
            }
            let eq = dc.eq_columns();
            let key: Vec<Value> = eq.iter().map(|&(l, _)| hrow[l]).collect();
            let Some(group) = groups.get(&key) else {
                continue;
            };
            for &j in group {
                if j == i {
                    continue;
                }
                let other = &self.table.rows[j];
                let viol = dc.preds.iter().all(|p| {
                    let a = hrow[p.left];
                    let b = other[p.right];
                    match p.op {
                        crate::dc::DcOp::Eq => a == b,
                        crate::dc::DcOp::Neq => a != b,
                    }
                });
                if viol {
                    total += 1;
                }
            }
        }
        total
    }

    /// Feature vector for assigning `v` to cell `(row, col)`:
    /// `[frequency, co-occurrence, minimality, dc-penalty]`, all in `[0,1]`.
    pub fn features(&self, row: usize, col: usize, v: Value) -> [f64; N_FEATURES] {
        let n = self.table.len() as f64;
        let freq = *self.freq[col].get(&v).unwrap_or(&0) as f64 / n;
        // Mean conditional probability of v given each other attribute.
        let mut cooc_sum = 0.0;
        let mut cooc_cnt = 0.0;
        for other in 0..self.table.columns.len() {
            if other == col {
                continue;
            }
            let u = self.table.rows[row][other];
            let denom = *self.freq[other].get(&u).unwrap_or(&0) as f64;
            if denom > 0.0 {
                let num = self
                    .cooc
                    .get(&(other, col))
                    .and_then(|m| m.get(&(u, v)))
                    .copied()
                    .unwrap_or(0) as f64;
                cooc_sum += num / denom;
                cooc_cnt += 1.0;
            }
        }
        let cooc = if cooc_cnt > 0.0 {
            cooc_sum / cooc_cnt
        } else {
            0.0
        };
        let minimality = if self.table.rows[row][col] == v {
            1.0
        } else {
            0.0
        };
        let viol = self.hypothetical_violations(row, col, v) as f64;
        let dc_penalty = viol / (viol + 1.0);
        [freq, cooc, minimality, dc_penalty]
    }

    /// [`FeatureExtractor::features`] with the minimality prior masked out.
    ///
    /// The initial value of a cell flagged by DC detection cannot be
    /// trusted, so — as in HoloClean, where the minimality prior applies
    /// only to clean cells — candidates for noisy cells are scored purely
    /// on frequency, co-occurrence and DC violations. Training uses the
    /// same masked vector so the learned weights match what inference sees
    /// (otherwise the trivially separating "is the current value" indicator
    /// absorbs all the signal and the model never repairs anything).
    pub fn features_masked(&self, row: usize, col: usize, v: Value) -> [f64; N_FEATURES] {
        let mut f = self.features(row, col, v);
        f[2] = 0.0;
        f
    }
}

/// A logistic scorer over candidate features.
#[derive(Clone, Debug)]
pub struct Model {
    /// `N_FEATURES` weights plus a bias term.
    pub weights: [f64; N_FEATURES + 1],
}

impl Default for Model {
    /// Sensible prior: frequency and co-occurrence help, DC violations hurt,
    /// mild preference for the current value. Training adjusts from here.
    fn default() -> Model {
        Model {
            weights: [1.0, 2.0, 0.5, -3.0, 0.0],
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Model {
    /// Probability that `v` is the correct value given its features.
    pub fn predict(&self, f: &[f64; N_FEATURES]) -> f64 {
        let mut z = self.weights[N_FEATURES];
        for (w, x) in self.weights[..N_FEATURES].iter().zip(f) {
            z += w * x;
        }
        sigmoid(z)
    }

    /// Plain SGD over `(features, label)` samples.
    pub fn train(&mut self, samples: &[([f64; N_FEATURES], bool)], epochs: usize, lr: f64) {
        for _ in 0..epochs {
            for (f, label) in samples {
                let p = self.predict(f);
                let err = (*label as i8 as f64) - p;
                for (w, x) in self.weights[..N_FEATURES].iter_mut().zip(f) {
                    *w += lr * err * x;
                }
                self.weights[N_FEATURES] += lr * err;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::DenialConstraint;

    fn table() -> Table {
        let mut t = Table::new(&["aid", "oid"]);
        for (aid, oid) in [(1, 10), (1, 10), (1, 99), (2, 20), (2, 20)] {
            t.push_row(vec![Value::Int(aid), Value::Int(oid)]);
        }
        t
    }

    #[test]
    fn features_prefer_the_consistent_value() {
        let t = table();
        let dcs = [DenialConstraint::key_determines("DC", 0, 1)];
        let fx = FeatureExtractor::new(&t, &dcs);
        // Row 2 has the outlier oid=99; candidate 10 co-occurs with aid=1
        // twice and causes no violations, candidate 99 violates twice.
        let f_good = fx.features(2, 1, Value::Int(10));
        let f_bad = fx.features(2, 1, Value::Int(99));
        assert!(f_good[1] > f_bad[1], "co-occurrence favors 10");
        assert!(f_good[3] < f_bad[3], "dc penalty punishes 99");
        assert_eq!(f_bad[2], 1.0, "99 is the current value");
        let m = Model::default();
        assert!(m.predict(&f_good) > m.predict(&f_bad));
    }

    #[test]
    fn training_moves_probabilities_toward_labels() {
        let mut m = Model {
            weights: [0.0; N_FEATURES + 1],
        };
        let pos = [0.9, 0.9, 1.0, 0.0];
        let neg = [0.1, 0.1, 0.0, 0.9];
        let before_gap = m.predict(&pos) - m.predict(&neg);
        m.train(&[(pos, true), (neg, false)], 200, 0.5);
        let after_gap = m.predict(&pos) - m.predict(&neg);
        assert!(after_gap > before_gap);
        assert!(m.predict(&pos) > 0.8);
        assert!(m.predict(&neg) < 0.2);
    }

    #[test]
    fn hypothetical_violations_counted_via_groups() {
        let t = table();
        let dcs = [DenialConstraint::key_determines("DC", 0, 1)];
        let fx = FeatureExtractor::new(&t, &dcs);
        // Setting row 0's oid to 99 would clash with row 1 (10) but agree
        // with row 2 (99).
        assert_eq!(fx.hypothetical_violations(0, 1, Value::Int(99)), 1);
        assert_eq!(fx.hypothetical_violations(0, 1, Value::Int(10)), 1); // row 2 still clashes
        assert_eq!(fx.hypothetical_violations(3, 1, Value::Int(20)), 0);
    }
}

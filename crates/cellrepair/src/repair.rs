//! The repair pipeline: detect → domain → featurize → learn → infer.

use crate::dc::{violating_pairs, DenialConstraint};
use crate::model::{FeatureExtractor, Model, N_FEATURES};
use crate::table::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use storage::Value;

/// Tuning knobs of the cell-repair system.
#[derive(Clone, Debug)]
pub struct CellRepairConfig {
    /// Repair only when the winner beats the runner-up (and the current
    /// value) by at least this probability margin. Higher = more cautious =
    /// more under-repair.
    pub confidence_margin: f64,
    /// Candidate-domain size cap per noisy cell.
    pub max_candidates: usize,
    /// SGD epochs for the weak-supervised scorer.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Number of clean cells sampled as training data.
    pub train_samples: usize,
    /// RNG seed (sampling of training cells).
    pub seed: u64,
}

impl Default for CellRepairConfig {
    fn default() -> CellRepairConfig {
        CellRepairConfig {
            confidence_margin: 0.05,
            max_candidates: 8,
            epochs: 20,
            learning_rate: 0.3,
            train_samples: 400,
            seed: 7,
        }
    }
}

/// One applied repair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repair {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Previous value.
    pub old: Value,
    /// New value.
    pub new: Value,
}

/// Outcome of [`repair`].
#[derive(Clone, Debug)]
pub struct RepairReport {
    /// Number of cells flagged noisy by DC detection.
    pub noisy_cells: usize,
    /// Applied repairs (cells changed).
    pub repairs: Vec<Repair>,
    /// Noisy cells left untouched because no candidate cleared the
    /// confidence margin — the source of the under-repair the paper reports.
    pub skipped_low_confidence: usize,
}

/// Per-column inverted index `value → rows`, built once per repair run.
type ColIndex = Vec<HashMap<Value, Vec<usize>>>;

fn build_col_index(table: &Table) -> ColIndex {
    let mut idx: ColIndex = vec![HashMap::new(); table.columns.len()];
    for (r, row) in table.rows.iter().enumerate() {
        for (c, v) in row.iter().enumerate() {
            idx[c].entry(*v).or_default().push(r);
        }
    }
    idx
}

/// Candidate values for a noisy cell: the current value plus values of the
/// same column in rows agreeing on some other attribute, by co-occurrence
/// count.
fn candidates(table: &Table, idx: &ColIndex, row: usize, col: usize, cap: usize) -> Vec<Value> {
    let mut counts: HashMap<Value, u32> = HashMap::new();
    for (other, col_idx) in idx.iter().enumerate() {
        if other == col {
            continue;
        }
        let u = table.rows[row][other];
        if let Some(rows) = col_idx.get(&u) {
            for &r in rows {
                *counts.entry(table.rows[r][col]).or_insert(0) += 1;
            }
        }
    }
    let current = table.rows[row][col];
    let mut ranked: Vec<(Value, u32)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(format!("{}", a.0).cmp(&format!("{}", b.0)))
    });
    let mut out = vec![current];
    for (v, _) in ranked {
        if v != current && out.len() < cap {
            out.push(v);
        }
    }
    out
}

/// Run the full pipeline on `table` in place.
pub fn repair(table: &mut Table, dcs: &[DenialConstraint], cfg: &CellRepairConfig) -> RepairReport {
    // 1. Detect: noisy cells named by the inequality predicates of
    //    violating pairs.
    let mut noisy: HashSet<(usize, usize)> = HashSet::new();
    for dc in dcs {
        let cols = dc.neq_columns();
        for (i, j) in violating_pairs(table, dc) {
            for &c in &cols {
                noisy.insert((i, c));
                noisy.insert((j, c));
            }
        }
    }
    let mut noisy: Vec<(usize, usize)> = noisy.into_iter().collect();
    noisy.sort_unstable();

    let fx = FeatureExtractor::new(table, dcs);
    let col_index = build_col_index(table);

    // 2–4. Weak supervision: sample clean cells from the columns that have
    //      noisy cells; their current value is a positive example, other
    //      candidates are negatives.
    let noisy_set: HashSet<(usize, usize)> = noisy.iter().copied().collect();
    let cols_with_noise: HashSet<usize> = noisy.iter().map(|&(_, c)| c).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clean_cells: Vec<(usize, usize)> = (0..table.len())
        .flat_map(|r| cols_with_noise.iter().map(move |&c| (r, c)))
        .filter(|cell| !noisy_set.contains(cell))
        .collect();
    clean_cells.shuffle(&mut rng);
    clean_cells.truncate(cfg.train_samples);

    let mut samples: Vec<([f64; N_FEATURES], bool)> = Vec::new();
    for &(r, c) in &clean_cells {
        let cands = candidates(table, &col_index, r, c, cfg.max_candidates);
        let current = table.rows[r][c];
        for v in cands {
            samples.push((fx.features_masked(r, c, v), v == current));
        }
    }
    let mut model = Model::default();
    model.train(&samples, cfg.epochs, cfg.learning_rate);

    // 5. Infer: argmax candidate per noisy cell, gated by the confidence
    //    margin; repairs are applied in one batch afterwards so scoring sees
    //    a consistent table.
    let mut repairs: Vec<Repair> = Vec::new();
    let mut skipped = 0usize;
    for &(r, c) in &noisy {
        let current = table.rows[r][c];
        let mut scored: Vec<(Value, f64)> = candidates(table, &col_index, r, c, cfg.max_candidates)
            .into_iter()
            .map(|v| (v, model.predict(&fx.features_masked(r, c, v))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let (best, best_p) = scored[0];
        if best == current {
            continue; // keep as-is; not an under-repair, the model trusts it
        }
        let runner_up = scored
            .iter()
            .find(|(v, _)| *v != best)
            .map(|&(_, p)| p)
            .unwrap_or(0.0);
        if best_p - runner_up >= cfg.confidence_margin {
            repairs.push(Repair {
                row: r,
                col: c,
                old: current,
                new: best,
            });
        } else {
            skipped += 1;
        }
    }
    for rep in &repairs {
        table.set(rep.row, rep.col, rep.new);
    }
    RepairReport {
        noisy_cells: noisy.len(),
        repairs,
        skipped_low_confidence: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::count_violating_tuples;

    /// A small table with duplicate author records and two injected errors.
    fn dirty_table() -> (Table, Vec<DenialConstraint>) {
        let mut t = Table::new(&["aid", "name", "oid", "org"]);
        let mut push = |aid: i64, name: &str, oid: i64, org: &str| {
            t.push_row(vec![
                Value::Int(aid),
                Value::str(name),
                Value::Int(oid),
                Value::str(org),
            ]);
        };
        // Three duplicated authors across two orgs; plenty of clean signal.
        for _ in 0..3 {
            push(1, "Ann", 10, "MIT");
            push(2, "Bob", 10, "MIT");
            push(3, "Cid", 20, "CMU");
        }
        // Errors: one wrong oid for Ann, one wrong org for Cid.
        push(1, "Ann", 99, "MIT");
        push(3, "Cid", 20, "CMx");
        let dcs = vec![
            DenialConstraint::key_determines("DC1", 0, 2), // aid → oid
            DenialConstraint::key_determines("DC2", 0, 1), // aid → name
            DenialConstraint::key_determines("DC3", 0, 3), // aid → org
            DenialConstraint::key_determines("DC4", 2, 3), // oid → org
        ];
        (t, dcs)
    }

    #[test]
    fn repairs_fix_clear_errors() {
        let (mut t, dcs) = dirty_table();
        let before: usize = dcs.iter().map(|d| count_violating_tuples(&t, d)).sum();
        assert!(before > 0);
        let report = repair(&mut t, &dcs, &CellRepairConfig::default());
        assert!(!report.repairs.is_empty(), "should repair something");
        let after: usize = dcs.iter().map(|d| count_violating_tuples(&t, d)).sum();
        assert!(
            after < before,
            "violations must decrease ({before} → {after})"
        );
        // The wrong oid should be restored to 10.
        let fixed = t.rows[9][2];
        assert_eq!(fixed, Value::Int(10));
    }

    #[test]
    fn high_margin_under_repairs() {
        let (mut t, dcs) = dirty_table();
        let cautious = CellRepairConfig {
            confidence_margin: 0.99,
            ..Default::default()
        };
        let report = repair(&mut t, &dcs, &cautious);
        assert!(report.repairs.is_empty());
        assert!(report.skipped_low_confidence > 0 || report.noisy_cells > 0);
    }

    #[test]
    fn clean_table_is_untouched() {
        let mut t = Table::new(&["aid", "oid"]);
        t.push_row(vec![Value::Int(1), Value::Int(10)]);
        t.push_row(vec![Value::Int(1), Value::Int(10)]);
        let dcs = vec![DenialConstraint::key_determines("DC", 0, 1)];
        let report = repair(&mut t, &dcs, &CellRepairConfig::default());
        assert_eq!(report.noisy_cells, 0);
        assert!(report.repairs.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut t1, dcs) = dirty_table();
        let (mut t2, _) = dirty_table();
        let cfg = CellRepairConfig::default();
        let r1 = repair(&mut t1, &dcs, &cfg);
        let r2 = repair(&mut t2, &dcs, &cfg);
        assert_eq!(r1.repairs, r2.repairs);
    }
}

//! A single mutable table (cell repair modifies values in place, which the
//! append-only [`storage::Instance`] deliberately does not support).

use storage::Value;

/// A named-column table with mutable cells.
#[derive(Clone, Debug)]
pub struct Table {
    /// Column names.
    pub columns: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Empty table with the given columns.
    pub fn new(columns: &[&str]) -> Table {
        Table {
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Column index by name.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column `{name}`"))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }

    /// Overwrite one cell.
    pub fn set(&mut self, row: usize, col: usize, v: Value) {
        self.rows[row][col] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let mut t = Table::new(&["aid", "name"]);
        t.push_row(vec![Value::Int(1), Value::str("Ann")]);
        t.push_row(vec![Value::Int(2), Value::str("Bob")]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.col("name"), 1);
        assert_eq!(t.cell(1, 1), &Value::str("Bob"));
        t.set(1, 1, Value::str("Ben"));
        assert_eq!(t.cell(1, 1), &Value::str("Ben"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec![Value::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        let t = Table::new(&["a"]);
        t.col("zzz");
    }
}

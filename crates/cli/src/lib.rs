//! Implementation of the `delta-repair` command-line tool.
//!
//! The binary wraps the library for shell use:
//!
//! ```text
//! delta-repair --db data.tsv --program rules.dl [--semantics step] \
//!              [--apply out.tsv] [--explain] [--triggers alphabetical]
//! ```
//!
//! * `--db` — a self-describing TSV document (typed `# relation` headers,
//!   see `storage::tsv::load_document`);
//! * `--program` — delta rules in the paper's concrete syntax;
//! * `--semantics` — `independent`, `step`, `stage`, `end`, or `all`
//!   (default `all`: compare the four results side by side);
//! * `--apply OUT` — write the database repaired under the chosen
//!   semantics back to a typed TSV document;
//! * `--explain` — list the deleted tuples, not just the counts;
//! * `--triggers ORDER` — additionally simulate "after delete, delete" SQL
//!   triggers with `alphabetical` (PostgreSQL) or `creation` (MySQL)
//!   firing order.
//!
//! There is also a `lint` subcommand that runs the static analyzer
//! (`datalog::lint`) over a program without repairing anything:
//!
//! ```text
//! delta-repair lint --program rules.dl [--db data.tsv] [--json]
//! ```
//!
//! and an `explain` subcommand that prints the cost-based join plan the
//! planner chose for every rule — driver atom, probe order, estimated vs
//! actual cardinalities — from a database's live statistics:
//!
//! ```text
//! delta-repair explain --program rules.dl --db data.tsv [--json]
//! ```
//!
//! The module is a library so the parsing/reporting logic is unit-testable;
//! `main.rs` is a thin shell.

use repair_core::{RepairError, RepairOutcome, RepairRequest, RepairSession, Semantics};
use std::fmt::Write as _;
use storage::{tsv, StorageError};
use triggers::FiringOrder;

/// Every way a CLI run can fail, mapped to a **distinct process exit
/// code** (documented in [`USAGE`]): no user input reaches an `unwrap`.
///
/// | variant | exit code | meaning |
/// |---------|-----------|---------|
/// | [`CliError::Help`]  | 0 | `--help` was requested |
/// | [`CliError::Usage`] | 2 | bad command line (unknown flag, missing value) |
/// | [`CliError::Io`]    | 3 | filesystem failure on `--db`/`--program`/`--apply` |
/// | [`CliError::Input`] | 4 | malformed input content (TSV, rules, `--why` tuple) |
/// | [`CliError::Repair`]| 5 | the repair engine rejected the run ([`RepairError`]) |
/// | [`CliError::Corrupt`]| 6 | a durable store failed checksum/recovery validation |
/// | [`CliError::Lint`]  | 7 | `lint` found error-level diagnostics |
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// `--help`: carries the usage text; exits 0.
    Help,
    /// Malformed command line; exits 2.
    Usage(String),
    /// Filesystem failure (the path and OS error text); exits 3.
    Io(String),
    /// Malformed input content; exits 4.
    Input(String),
    /// Engine-level failure, preserved as a typed [`RepairError`]; exits 5.
    Repair(RepairError),
    /// A `--data-dir` store is corrupt beyond what the recovery ladder can
    /// route around, preserved as the typed error; exits 6 so operators
    /// can distinguish "restore from backup" from ordinary failures.
    Corrupt(RepairError),
    /// The `lint` subcommand found error-level diagnostics (the count is
    /// carried for the message); exits 7 so CI can gate on "program has
    /// static errors" separately from every other failure class. The
    /// report itself goes to stdout before this is raised.
    Lint(usize),
}

impl CliError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Help => 0,
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Input(_) => 4,
            CliError::Repair(_) => 5,
            CliError::Corrupt(_) => 6,
            CliError::Lint(_) => 7,
        }
    }
}

/// Route a [`RepairError`] to its CLI class: unrecoverable store corruption
/// gets its own exit code, everything else is an engine error.
fn repair_to_cli(e: RepairError) -> CliError {
    match &e {
        RepairError::Storage {
            source: StorageError::Corrupt { .. },
            ..
        } => CliError::Corrupt(e),
        _ => CliError::Repair(e),
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => f.write_str(USAGE),
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(msg) => write!(f, "{msg}"),
            CliError::Input(msg) => write!(f, "{msg}"),
            CliError::Repair(e) => write!(f, "{e}"),
            CliError::Corrupt(e) => write!(f, "{e}"),
            CliError::Lint(n) => write!(f, "lint: {n} error-level finding(s)"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Repair(e) | CliError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RepairError> for CliError {
    fn from(e: RepairError) -> CliError {
        repair_to_cli(e)
    }
}

/// Parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Options {
    /// Path of the TSV database document. Optional when `--data-dir`
    /// points at an existing durable store.
    pub db: Option<String>,
    /// Durable store directory: with `--db`, initialize a new store from
    /// the TSV; alone, open (and crash-recover) the existing store.
    pub data_dir: Option<String>,
    /// Run N apply/undo churn cycles against the session before reporting
    /// (durable write traffic for crash testing).
    pub churn: Option<u64>,
    /// Path of the delta program.
    pub program: String,
    /// Semantics to run (`None` = all four).
    pub semantics: Option<Semantics>,
    /// Write the repaired database here.
    pub apply: Option<String>,
    /// Print deleted tuples.
    pub explain: bool,
    /// Also simulate triggers with this firing order.
    pub triggers: Option<FiringOrder>,
    /// Explain why this tuple (by display name, e.g. `Pub(6, x)`) is
    /// deleted under end semantics.
    pub why: Option<String>,
    /// Emit the Figure-5 provenance graph as Graphviz DOT.
    pub dot: bool,
    /// Worker-thread override for every repair computation (`None` = the
    /// `DELTA_REPAIRS_THREADS` / logical-CPU process default). Validated at
    /// parse time: `--threads 0` is a usage error (exit 2).
    pub threads: Option<usize>,
}

/// Usage string printed on `--help` and argument errors.
pub const USAGE: &str = "\
delta-repair — declarative database repair under four semantics

USAGE:
    delta-repair --db DATA.tsv --program RULES.dl [OPTIONS]
    delta-repair lint --program RULES.dl [--db DATA.tsv] [--json]
    delta-repair explain --program RULES.dl --db DATA.tsv [--json]

OPTIONS:
    --db PATH          self-describing TSV document (typed headers);
                       optional when --data-dir holds an existing store
    --data-dir DIR     durable store: with --db, initialize DIR from the
                       TSV (checksummed WAL + snapshots); alone, open and
                       crash-recover the store already in DIR
    --churn N          run N apply/undo cycles before reporting (durable
                       write traffic for crash testing; needs --data-dir)
    --program PATH     delta rules (paper syntax; `delta R(x) :- R(x), ….`)
    --semantics NAME   independent | step | stage | end | all   [default: all]
    --apply PATH       write the repaired database (typed TSV) to PATH
    --explain          list every deleted tuple
    --triggers ORDER   also run SQL-trigger simulation: alphabetical | creation
    --why TUPLE        print the derivation tree for a tuple, e.g. --why 'Pub(6, x)'
    --dot              print the provenance graph in Graphviz DOT format
    --threads N        worker threads per repair (N ≥ 1; overrides
                       DELTA_REPAIRS_THREADS; default: that variable, else
                       all logical CPUs; needs a `parallel`-feature build to
                       actually fan out — results are identical either way)
    --help             this text

LINT SUBCOMMAND:
    delta-repair lint --program RULES.dl [--db DATA.tsv] [--json]

    Statically analyze a delta program without repairing anything: unsafe
    variables, unused relations, dead rules, constant contradictions,
    cartesian-product joins, duplicate/subsumed rules, recursion cycles,
    and the semantics-equivalence certificate (which of the four repair
    semantics provably coincide). With --db, schema-dependent checks
    (unknown relations, arity, types) run too; --json emits the report as
    machine-readable JSON. Error-level findings exit 7. With --db the
    cartesian-join warning (W103) also reports the estimated blow-up
    factor from the database's live column statistics.

EXPLAIN SUBCOMMAND:
    delta-repair explain --program RULES.dl --db DATA.tsv [--json]

    Show the cost-based join plan chosen for every rule from the
    database's live statistics: the driver atom, the probe order with
    each step's index key, the estimator's per-step fanout and
    cardinality, and the actual number of assignments the rule produces
    on this database. --json emits one machine-readable object.

EXIT CODES:
    0    success (or --help)
    2    bad command line: unknown flag, missing value or argument
    3    filesystem failure reading --db/--program or writing --apply
    4    malformed input: TSV database, delta program, or --why tuple name
    5    repair engine error (invalid program for this schema, apply failure)
    6    corrupt --data-dir store (recovery ladder exhausted; restore a backup)
    7    lint found error-level diagnostics (report already on stdout)
";

/// Parse `argv[1..]`-style arguments.
pub fn parse_args<I, S>(args: I) -> Result<Options, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut db = None;
    let mut data_dir = None;
    let mut churn = None;
    let mut program = None;
    let mut semantics = None;
    let mut apply = None;
    let mut explain = false;
    let mut triggers = None;
    let mut why = None;
    let mut dot = false;
    let mut threads = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let arg = arg.as_ref();
        let mut value_for = |name: &str| {
            it.next()
                .map(|v| v.as_ref().to_owned())
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match arg {
            "--db" => db = Some(value_for("--db")?),
            "--data-dir" => data_dir = Some(value_for("--data-dir")?),
            "--churn" => {
                let raw = value_for("--churn")?;
                churn = Some(raw.parse::<u64>().map_err(|_| {
                    CliError::Usage(format!("--churn needs a non-negative integer, got `{raw}`"))
                })?);
            }
            "--program" => program = Some(value_for("--program")?),
            "--semantics" => {
                // `Semantics::from_str` is the single source of truth for
                // the names; only the CLI-level `all` pseudo-value lives
                // here.
                semantics = match value_for("--semantics")?.as_str() {
                    "all" => Some(None),
                    other => Some(Some(
                        other
                            .parse::<Semantics>()
                            .map_err(|e| CliError::Usage(e.to_string()))?,
                    )),
                }
            }
            "--apply" => apply = Some(value_for("--apply")?),
            "--explain" => explain = true,
            "--why" => why = Some(value_for("--why")?),
            "--dot" => dot = true,
            "--threads" => {
                let raw = value_for("--threads")?;
                let n: usize = raw.parse().map_err(|_| {
                    CliError::Usage(format!("--threads needs a positive integer, got `{raw}`"))
                })?;
                if n == 0 {
                    return Err(CliError::Usage(
                        "--threads must be ≥ 1 (omit it to use the process default)".into(),
                    ));
                }
                threads = Some(n);
            }
            "--triggers" => {
                triggers = Some(match value_for("--triggers")?.as_str() {
                    "alphabetical" | "postgres" | "postgresql" => FiringOrder::Alphabetical,
                    "creation" | "mysql" => FiringOrder::CreationOrder,
                    other => {
                        return Err(CliError::Usage(format!("unknown firing order `{other}`")))
                    }
                })
            }
            "--help" | "-h" => return Err(CliError::Help),
            other => {
                return Err(CliError::Usage(format!(
                    "unknown argument `{other}`\n\n{USAGE}"
                )))
            }
        }
    }
    if db.is_none() && data_dir.is_none() {
        return Err(CliError::Usage(
            "--db is required (or --data-dir to open a durable store)".into(),
        ));
    }
    if churn.is_some() && data_dir.is_none() {
        return Err(CliError::Usage("--churn needs --data-dir".into()));
    }
    Ok(Options {
        db,
        data_dir,
        churn,
        program: program.ok_or_else(|| CliError::Usage("--program is required".into()))?,
        semantics: semantics.unwrap_or(None),
        apply,
        explain,
        triggers,
        why,
        dot,
        threads,
    })
}

/// Parsed `lint` subcommand line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintOptions {
    /// Path of the delta program to analyze (required).
    pub program: String,
    /// Optional TSV database: its schema enables the schema-dependent
    /// passes (unknown relations, arity, column types).
    pub db: Option<String>,
    /// Emit the report as JSON instead of human-readable lines.
    pub json: bool,
}

/// Parse the arguments *after* the `lint` subcommand word.
pub fn parse_lint_args<I, S>(args: I) -> Result<LintOptions, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut program = None;
    let mut db = None;
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let arg = arg.as_ref();
        let mut value_for = |name: &str| {
            it.next()
                .map(|v| v.as_ref().to_owned())
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match arg {
            "--program" => program = Some(value_for("--program")?),
            "--db" => db = Some(value_for("--db")?),
            "--json" => json = true,
            "--help" | "-h" => return Err(CliError::Help),
            other => {
                return Err(CliError::Usage(format!(
                    "unknown argument `{other}` for lint\n\n{USAGE}"
                )))
            }
        }
    }
    Ok(LintOptions {
        program: program.ok_or_else(|| CliError::Usage("lint: --program is required".into()))?,
        db,
        json,
    })
}

/// What `lint` produced: the text to print and the structured report.
#[derive(Debug)]
pub struct LintOutput {
    /// Rendered report — human lines, or one JSON object with `--json`.
    pub rendered: String,
    /// The structured report, for callers that want the diagnostics.
    pub report: datalog::LintReport,
}

impl LintOutput {
    /// The exit status the subcommand maps to: `Err(CliError::Lint)` when
    /// any error-level diagnostic was found, `Ok(())` otherwise. The report
    /// is printed either way.
    pub fn status(&self) -> Result<(), CliError> {
        let errors = self.report.count(datalog::Severity::Error);
        if errors > 0 {
            Err(CliError::Lint(errors))
        } else {
            Ok(())
        }
    }
}

/// Run the static analyzer. Pure with respect to the filesystem: callers
/// hand in file contents. A program that fails to *parse* is a malformed
/// input (exit 4, same as the repair path); a program that parses but
/// trips validation shows up as `E…` diagnostics in the report instead.
pub fn run_lint(
    opts: &LintOptions,
    program_text: &str,
    db_text: Option<&str>,
) -> Result<LintOutput, CliError> {
    let program = datalog::parse_program(program_text)
        .map_err(|e| CliError::Input(format!("--program: {e}")))?;
    let db = db_text
        .map(|text| tsv::load_document(text).map_err(|e| CliError::Input(format!("--db: {e}"))))
        .transpose()?;
    let report = datalog::lint_with_stats(db.as_ref(), &program);
    let rendered = if opts.json {
        report.to_json()
    } else {
        report.render()
    };
    Ok(LintOutput { rendered, report })
}

/// Parsed `explain` subcommand line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainOptions {
    /// Path of the delta program whose plans to explain (required).
    pub program: String,
    /// Path of the TSV database: the statistics the planner consulted and
    /// the instance the actual cardinalities are counted on (required).
    pub db: String,
    /// Emit the report as JSON instead of human-readable lines.
    pub json: bool,
}

/// Parse the arguments *after* the `explain` subcommand word.
pub fn parse_explain_args<I, S>(args: I) -> Result<ExplainOptions, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut program = None;
    let mut db = None;
    let mut json = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let arg = arg.as_ref();
        let mut value_for = |name: &str| {
            it.next()
                .map(|v| v.as_ref().to_owned())
                .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
        };
        match arg {
            "--program" => program = Some(value_for("--program")?),
            "--db" => db = Some(value_for("--db")?),
            "--json" => json = true,
            "--help" | "-h" => return Err(CliError::Help),
            other => {
                return Err(CliError::Usage(format!(
                    "unknown argument `{other}` for explain\n\n{USAGE}"
                )))
            }
        }
    }
    Ok(ExplainOptions {
        program: program.ok_or_else(|| CliError::Usage("explain: --program is required".into()))?,
        db: db.ok_or_else(|| {
            CliError::Usage(
                "explain: --db is required (plans are chosen from its statistics)".into(),
            )
        })?,
        json,
    })
}

/// What `explain` produced: the rendered plan report.
#[derive(Debug)]
pub struct ExplainOutput {
    /// Rendered report — human lines, or one JSON object with `--json`.
    pub rendered: String,
}

/// Show the cost-based join plan chosen for every rule: the driver atom,
/// the probe order with the index key each step uses, the estimator's
/// per-step fanout/cardinality, and the *actual* number of assignments the
/// rule produces under the Algorithm-1 enumeration (the same assignment
/// set every plan family visits, so estimate vs actual is apples to
/// apples). Pure with respect to the filesystem: callers hand in contents.
pub fn run_explain(
    opts: &ExplainOptions,
    program_text: &str,
    db_text: &str,
) -> Result<ExplainOutput, CliError> {
    let db = tsv::load_document(db_text).map_err(|e| CliError::Input(format!("--db: {e}")))?;
    let program = datalog::parse_program(program_text)
        .map_err(|e| CliError::Input(format!("--program: {e}")))?;
    let session = RepairSession::new(db, program).map_err(CliError::Repair)?;
    let db = session.db();
    let ev = session.evaluator();
    let mut actual = vec![0u64; ev.num_rules()];
    let state0 = db.initial_state();
    ev.for_each_assignment(db, &state0, datalog::Mode::Hypothetical, &mut |a| {
        actual[a.rule] += 1;
        true
    });

    let rel_name = |rel: storage::RelId| db.schema().rel(rel).name.as_str();
    let mut human = String::new();
    let mut json = String::from("{\n  \"rules\": [");
    for (ri, rule) in session.program().rules.iter().enumerate() {
        let cr = ev.compiled_rule(ri);
        let _ = writeln!(human, "rule {ri}: {rule}");
        if ri > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"rule\": {ri}, \"text\": \"{}\", \"never_fires\": {}",
            json_escape(&rule.to_string()),
            cr.never_fires
        );
        if cr.never_fires {
            let _ = writeln!(human, "  never fires (statically empty body); no plan");
            json.push_str(", \"steps\": [], \"estimated_rows\": 0, \"actual_assignments\": 0}");
            continue;
        }
        // The hypothetical sibling plan at fraction 1.0: explain compares
        // the estimate against hypothetical-mode actuals, where delta
        // atoms range the full relation.
        let est = datalog::cost::estimate_order(
            db,
            &cr.atoms,
            &cr.cmps,
            cr.n_vars,
            &cr.hypothetical.order,
            1.0,
        );
        json.push_str(", \"steps\": [");
        for (k, step) in est.steps.iter().enumerate() {
            let atom = &cr.atoms[step.atom];
            let probe = &cr.hypothetical.probes[k];
            let name = rel_name(atom.rel);
            let delta = if atom.is_delta { "delta " } else { "" };
            let keys: Vec<&str> = probe
                .key_cols
                .iter()
                .map(|&c| db.schema().rel(atom.rel).attrs[c].name.as_str())
                .collect();
            let access = if keys.is_empty() {
                "scan".to_owned()
            } else {
                format!("probe ({})", keys.join(", "))
            };
            let role = if k == 0 { "driver" } else { "probe " };
            let atom_label = format!("{delta}{name}");
            let _ = writeln!(
                human,
                "  {role}  {atom_label:<22} {access:<24} est fanout {:>10.2}  est rows {:>10.2}",
                step.fanout, step.rows
            );
            if k > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "\n      {{\"atom\": {}, \"relation\": \"{}\", \"delta\": {}, \"driver\": {}, \
                 \"probe\": [{}], \"est_fanout\": {}, \"est_rows\": {}}}",
                step.atom,
                json_escape(name),
                atom.is_delta,
                k == 0,
                keys.iter()
                    .map(|k| format!("\"{}\"", json_escape(k)))
                    .collect::<Vec<_>>()
                    .join(", "),
                step.fanout,
                step.rows,
            );
        }
        let est_rows = est.steps.last().map_or(0.0, |s| s.rows);
        let _ = writeln!(
            human,
            "  estimated {est_rows:.2} rows; actual {} assignment(s)",
            actual[ri]
        );
        let _ = write!(
            json,
            "\n    ], \"estimated_rows\": {est_rows}, \"actual_assignments\": {}}}",
            actual[ri]
        );
    }
    json.push_str("\n  ]\n}\n");
    Ok(ExplainOutput {
        rendered: if opts.json { json } else { human },
    })
}

/// Minimal JSON string escaping, mirroring `datalog::lint`'s hand-rolled
/// renderer (the workspace deliberately has no serde dependency).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Everything the run produced, ready for printing or inspection.
#[derive(Debug)]
pub struct RunOutput {
    /// Per-semantics outcomes, in the requested order.
    pub results: Vec<RepairOutcome>,
    /// The report text.
    pub report: String,
    /// The repaired document, when `--apply` was requested.
    pub applied: Option<String>,
}

/// Load inputs, repair, and render the report. Pure with respect to the
/// filesystem: callers hand in file *contents*.
pub fn run(opts: &Options, db_text: &str, program_text: &str) -> Result<RunOutput, CliError> {
    let db = tsv::load_document(db_text).map_err(|e| CliError::Input(format!("--db: {e}")))?;
    let program = datalog::parse_program(program_text)
        .map_err(|e| CliError::Input(format!("--program: {e}")))?;
    // Schema-level rejection of the program is an engine error (exit 5),
    // preserved as the typed `RepairError` rather than a flattened string.
    let mut session = RepairSession::new(db, program).map_err(CliError::Repair)?;
    run_session(opts, &mut session)
}

/// Build the session for a `--data-dir` run: initialize a fresh durable
/// store from the TSV when `db_text` is given, otherwise open (and
/// crash-recover) the store already in the directory. Unrecoverable
/// corruption maps to [`CliError::Corrupt`] (exit 6).
pub fn durable_session(
    opts: &Options,
    db_text: Option<&str>,
    program_text: &str,
) -> Result<RepairSession, CliError> {
    let dir = opts
        .data_dir
        .as_deref()
        .ok_or_else(|| CliError::Usage("--data-dir is required for a durable run".into()))?;
    let program = datalog::parse_program(program_text)
        .map_err(|e| CliError::Input(format!("--program: {e}")))?;
    match db_text {
        Some(text) => {
            let db = tsv::load_document(text).map_err(|e| CliError::Input(format!("--db: {e}")))?;
            RepairSession::create_durable(db, program, dir).map_err(repair_to_cli)
        }
        None => RepairSession::open_durable(dir, program).map_err(repair_to_cli),
    }
}

/// Repair and render the report over an existing session (in-memory or
/// durable). The `--churn` cycles run first, so the reported counts are
/// post-churn.
pub fn run_session(opts: &Options, session: &mut RepairSession) -> Result<RunOutput, CliError> {
    let program = session.program().clone();
    let mut report = String::new();
    if let Some(r) = session.recovery_report() {
        if r.degraded() {
            let _ = writeln!(
                report,
                "recovery: {} batches replayed, {} bytes truncated, fallbacks: {}",
                r.batches_replayed,
                r.truncated_bytes,
                r.fallbacks.join("; ")
            );
        }
    }
    if let Some(cycles) = opts.churn {
        for _ in 0..cycles {
            let outcome = session.run(Semantics::End);
            outcome.apply(session).map_err(repair_to_cli)?;
            session.undo().map_err(repair_to_cli)?;
        }
        let _ = writeln!(report, "churn: {cycles} apply/undo cycles committed");
    }
    let _ = writeln!(
        report,
        "database: {} tuples in {} relations; program: {} rules",
        session.db().total_rows(),
        session.db().schema().len(),
        program.len()
    );
    if session.is_stable() {
        let _ = writeln!(report, "database is already stable: nothing to repair");
    }
    let analysis = datalog::analyze(&program);
    if !analysis.is_nonrecursive() {
        let _ = writeln!(
            report,
            "note: program is recursive through Δ{} — all semantics terminate, \
             but provenance size is data-dependent (see paper §8)",
            analysis.recursive_relations.join(", Δ")
        );
    }

    let wanted: Vec<Semantics> = match opts.semantics {
        Some(s) => vec![s],
        None => Semantics::ALL.to_vec(),
    };
    let mut results = Vec::with_capacity(wanted.len());
    for sem in &wanted {
        let mut request = RepairRequest::new(*sem);
        if let Some(n) = opts.threads {
            request = request.threads(n);
        }
        let r = session.repair(&request).map_err(CliError::Repair)?;
        let _ = writeln!(
            report,
            "{:<12} |S| = {:<6} eval {:>9.2?}  process {:>9.2?}  solve {:>9.2?}{}",
            sem.to_string(),
            r.size(),
            r.breakdown().eval,
            r.breakdown().process,
            r.breakdown().solve,
            if r.proven_optimal() {
                ""
            } else {
                "  (heuristic)"
            },
        );
        if opts.explain {
            for &t in r.deleted() {
                let _ = writeln!(report, "    - {}", session.db().display_tuple(t));
            }
        }
        results.push(r);
    }

    if let Some(order) = opts.triggers {
        let trigs = triggers::triggers_from_program(&program);
        let run = triggers::run_triggers(session.db(), session.evaluator(), &trigs, order);
        let _ = writeln!(
            report,
            "triggers     |S| = {:<6} ({} activations, {:?} order, stable: {})",
            run.deleted.len(),
            run.activations,
            order,
            run.stable
        );
        if opts.explain {
            for &t in &run.deleted {
                let _ = writeln!(report, "    - {}", session.db().display_tuple(t));
            }
        }
    }

    if let Some(name) = &opts.why {
        let target = session
            .db()
            .all_tuple_ids()
            .find(|&t| session.db().display_tuple(t) == *name)
            .ok_or_else(|| {
                CliError::Input(format!("--why: no tuple named `{name}` in the database"))
            })?;
        match session.explain(target) {
            Some(tree) => {
                let _ = writeln!(report, "derivation of Δ {name}:");
                report.push_str(&tree.render(session.db()));
            }
            None => {
                let _ = writeln!(report, "{name} is never deleted under end semantics");
            }
        }
    }
    if opts.dot {
        report.push_str(&session.provenance_dot());
    }

    let applied = if opts.apply.is_some() {
        // `wanted` is never empty, so neither is `results`; keep the access
        // checked anyway — user input must not be able to reach a panic.
        let chosen = results
            .first()
            .ok_or_else(|| CliError::Usage("--apply needs at least one semantics".into()))?;
        let total = session.db().total_rows();
        let _ = writeln!(
            report,
            "applying {} repair: {} of {} tuples remain",
            chosen.semantics(),
            total - chosen.size(),
            total
        );
        // Commit through the session: the delete-set leaves the database
        // durably (indexes maintained incrementally) and the live tuples
        // are what gets serialized.
        chosen.apply(session).map_err(repair_to_cli)?;
        Some(tsv::to_tsv_typed(session.db()))
    } else {
        None
    };

    Ok(RunOutput {
        results,
        report,
        applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DB: &str = "\
# relation Grant(gid: int, name: string)
1\tNSF
2\tERC
# relation AuthGrant(aid: int, gid: int)
2\t1
4\t2
5\t2
";

    const RULES: &str = "\
delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
delta AuthGrant(a, g) :- AuthGrant(a, g), delta Grant(g, n).
";

    fn base_opts() -> Options {
        Options {
            db: Some("db.tsv".into()),
            data_dir: None,
            churn: None,
            program: "rules.dl".into(),
            semantics: None,
            apply: None,
            explain: false,
            triggers: None,
            why: None,
            dot: false,
            threads: None,
        }
    }

    #[test]
    fn parse_args_happy_path() {
        let opts = parse_args([
            "--db",
            "d.tsv",
            "--program",
            "p.dl",
            "--semantics",
            "step",
            "--explain",
            "--apply",
            "out.tsv",
            "--triggers",
            "mysql",
        ])
        .unwrap();
        assert_eq!(opts.semantics, Some(Semantics::Step));
        assert!(opts.explain);
        assert_eq!(opts.apply.as_deref(), Some("out.tsv"));
        assert_eq!(opts.triggers, Some(FiringOrder::CreationOrder));
    }

    #[test]
    fn threads_flag_parses_and_validates() {
        let opts = parse_args(["--db", "d", "--program", "p", "--threads", "4"]).unwrap();
        assert_eq!(opts.threads, Some(4));
        // `--threads 0` and garbage are usage errors: exit code 2.
        let zero = parse_args(["--db", "d", "--program", "p", "--threads", "0"]).unwrap_err();
        assert!(matches!(zero, CliError::Usage(_)));
        assert_eq!(zero.exit_code(), 2);
        let junk = parse_args(["--db", "d", "--program", "p", "--threads", "many"]).unwrap_err();
        assert_eq!(junk.exit_code(), 2);
        let missing = parse_args(["--db", "d", "--program", "p", "--threads"]).unwrap_err();
        assert_eq!(missing.exit_code(), 2);
        // An explicit thread count flows through the whole run and changes
        // nothing about the results.
        let mut opts = base_opts();
        opts.threads = Some(2);
        let out = run(&opts, DB, RULES).unwrap();
        assert_eq!(out.results.len(), 4);
        for r in &out.results {
            assert_eq!(r.size(), 3, "{}", r.semantics());
        }
    }

    #[test]
    fn parse_args_errors() {
        assert!(parse_args(["--db", "x"]).is_err(), "missing --program");
        assert!(parse_args(["--program", "x"]).is_err(), "missing --db");
        assert!(parse_args(["--db"]).is_err(), "missing value");
        assert!(parse_args(["--semantics", "vibes", "--db", "a", "--program", "b"]).is_err());
        assert!(parse_args(["--frobnicate"]).is_err());
        assert!(parse_args(["--help"]).is_err(), "help via Err(Help)");
    }

    #[test]
    fn errors_map_to_distinct_documented_exit_codes() {
        // Usage errors: exit 2.
        let usage = parse_args(["--frobnicate"]).unwrap_err();
        assert!(matches!(usage, CliError::Usage(_)));
        assert_eq!(usage.exit_code(), 2);
        // Help: exit 0, rendering the usage text.
        let help = parse_args(["--help"]).unwrap_err();
        assert_eq!(help.exit_code(), 0);
        assert!(help.to_string().contains("EXIT CODES"));
        // Malformed inputs: exit 4.
        let bad_db = run(&base_opts(), "not a document", RULES).unwrap_err();
        assert!(matches!(bad_db, CliError::Input(_)));
        assert_eq!(bad_db.exit_code(), 4);
        let bad_rules = run(&base_opts(), DB, "garbage !!").unwrap_err();
        assert_eq!(bad_rules.exit_code(), 4);
        let mut opts = base_opts();
        opts.why = Some("NoSuch(0)".into());
        let bad_why = run(&opts, DB, RULES).unwrap_err();
        assert_eq!(bad_why.exit_code(), 4);
        // Engine rejection (valid syntax, wrong schema): exit 5, with the
        // typed RepairError preserved as the source.
        let engine = run(&base_opts(), DB, "delta Nope(x) :- Nope(x).").unwrap_err();
        assert!(matches!(
            engine,
            CliError::Repair(repair_core::RepairError::Datalog { .. })
        ));
        assert_eq!(engine.exit_code(), 5);
        use std::error::Error as _;
        assert!(engine.source().is_some(), "RepairError kept as source");
        // Io: exit 3 (constructed directly; main.rs owns the filesystem).
        assert_eq!(CliError::Io("cannot read x".into()).exit_code(), 3);
        // Lint findings: exit 7.
        assert_eq!(CliError::Lint(2).exit_code(), 7);
        // Every failure variant maps to its own nonzero code; only Help
        // shares 0 with success.
        let mut codes: Vec<u8> = [
            CliError::Help,
            CliError::Usage(String::new()),
            CliError::Io(String::new()),
            CliError::Input(String::new()),
            CliError::Repair(repair_core::RepairError::NothingToUndo),
            CliError::Corrupt(repair_core::RepairError::NothingToUndo),
            CliError::Lint(1),
        ]
        .iter()
        .map(CliError::exit_code)
        .collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 7, "exit codes must stay distinct");
        assert!(codes.iter().skip(1).all(|&c| c != 0 && c != 1));
    }

    #[test]
    fn lint_args_parse_and_validate() {
        let opts = parse_lint_args(["--program", "p.dl", "--db", "d.tsv", "--json"]).unwrap();
        assert_eq!(opts.program, "p.dl");
        assert_eq!(opts.db.as_deref(), Some("d.tsv"));
        assert!(opts.json);
        // --program is mandatory; unknown flags and missing values are
        // usage errors; --help works inside the subcommand too.
        assert!(parse_lint_args(["--db", "d.tsv"]).is_err());
        assert!(parse_lint_args(["--program"]).is_err());
        assert!(parse_lint_args(["--program", "p", "--frobnicate"]).is_err());
        assert!(matches!(
            parse_lint_args(["--help"]).unwrap_err(),
            CliError::Help
        ));
    }

    #[test]
    fn lint_clean_program_exits_zero() {
        let opts = parse_lint_args(["--program", "p.dl", "--db", "d.tsv"]).unwrap();
        let out = run_lint(&opts, RULES, Some(DB)).unwrap();
        assert!(out.status().is_ok(), "{}", out.rendered);
        assert!(out.rendered.contains("certificate:"), "{}", out.rendered);
        assert!(out.rendered.contains("0 error(s)"), "{}", out.rendered);
    }

    #[test]
    fn lint_error_findings_map_to_exit_seven() {
        // Unknown relation against the schema: an E001 diagnostic, not a
        // hard failure — the report renders, then status() raises exit 7.
        let opts = parse_lint_args(["--program", "p.dl", "--db", "d.tsv"]).unwrap();
        let out = run_lint(&opts, "delta Nope(x) :- Nope(x).", Some(DB)).unwrap();
        assert!(out.rendered.contains("E001"), "{}", out.rendered);
        let err = out.status().unwrap_err();
        assert!(matches!(err, CliError::Lint(_)));
        assert_eq!(err.exit_code(), 7);
        // Without --db the schema passes are skipped and the same program
        // is clean (nothing else is wrong with it).
        let no_db = parse_lint_args(["--program", "p.dl"]).unwrap();
        let out = run_lint(&no_db, "delta Nope(x) :- Nope(x).", None).unwrap();
        assert!(out.status().is_ok(), "{}", out.rendered);
        // A parse failure is malformed input (exit 4), like the repair path.
        let bad = run_lint(&no_db, "garbage !!", None).unwrap_err();
        assert_eq!(bad.exit_code(), 4);
    }

    #[test]
    fn lint_with_db_quantifies_cartesian_joins() {
        // Grant and AuthGrant share no variable: 2 components. With the
        // fixture database (2 Grant rows, 3 AuthGrant rows) the cross
        // product multiplies the bigger component by the smaller one's
        // estimated 2 rows.
        let cartesian = "delta Grant(g, n) :- Grant(g, n), AuthGrant(a, b).";
        let opts = parse_lint_args(["--program", "p.dl", "--db", "d.tsv"]).unwrap();
        let out = run_lint(&opts, cartesian, Some(DB)).unwrap();
        assert!(out.rendered.contains("W103"), "{}", out.rendered);
        assert!(
            out.rendered
                .contains("estimated blow-up ×2.0 from live statistics"),
            "{}",
            out.rendered
        );
        // Without a database the warning stays purely syntactic.
        let no_db = parse_lint_args(["--program", "p.dl"]).unwrap();
        let out = run_lint(&no_db, cartesian, None).unwrap();
        assert!(out.rendered.contains("W103"), "{}", out.rendered);
        assert!(!out.rendered.contains("blow-up"), "{}", out.rendered);
    }

    #[test]
    fn explain_args_parse_and_validate() {
        let opts = parse_explain_args(["--program", "p.dl", "--db", "d.tsv", "--json"]).unwrap();
        assert_eq!(opts.program, "p.dl");
        assert_eq!(opts.db, "d.tsv");
        assert!(opts.json);
        // Both --program and --db are mandatory: plans come from live stats.
        assert!(parse_explain_args(["--db", "d.tsv"]).is_err());
        assert!(parse_explain_args(["--program", "p.dl"]).is_err());
        assert!(parse_explain_args(["--program", "p", "--frobnicate"]).is_err());
        assert!(matches!(
            parse_explain_args(["--help"]).unwrap_err(),
            CliError::Help
        ));
    }

    #[test]
    fn explain_reports_driver_probe_order_and_actuals() {
        let opts = parse_explain_args(["--program", "p.dl", "--db", "d.tsv"]).unwrap();
        let out = run_explain(&opts, RULES, DB).unwrap();
        // Every rule gets a plan with a driver step and an estimate/actual
        // summary line; the cascade rule's second step probes on the join
        // column instead of scanning.
        assert!(out.rendered.contains("rule 0:"), "{}", out.rendered);
        assert!(out.rendered.contains("driver"), "{}", out.rendered);
        assert!(out.rendered.contains("probe (gid)"), "{}", out.rendered);
        // Rule 0 matches the one ERC grant; under the Algorithm-1
        // enumeration rule 1's delta atom ranges over every Grant tuple, so
        // it joins all three AuthGrant rows.
        assert!(
            out.rendered.contains("actual 1 assignment(s)"),
            "{}",
            out.rendered
        );
        assert!(
            out.rendered.contains("actual 3 assignment(s)"),
            "{}",
            out.rendered
        );
    }

    #[test]
    fn explain_json_is_structured() {
        let opts = parse_explain_args(["--program", "p.dl", "--db", "d.tsv", "--json"]).unwrap();
        let out = run_explain(&opts, RULES, DB).unwrap();
        assert!(out.rendered.starts_with('{'), "{}", out.rendered);
        for key in [
            "\"rules\"",
            "\"steps\"",
            "\"driver\"",
            "\"probe\"",
            "\"est_fanout\"",
            "\"estimated_rows\"",
            "\"actual_assignments\"",
        ] {
            assert!(out.rendered.contains(key), "{key} in {}", out.rendered);
        }
        // Malformed inputs map to the documented exit codes, same as the
        // repair path.
        let bad = run_explain(&opts, "garbage !!", DB).unwrap_err();
        assert_eq!(bad.exit_code(), 4);
        let bad = run_explain(&opts, RULES, "not a document").unwrap_err();
        assert_eq!(bad.exit_code(), 4);
    }

    #[test]
    fn lint_json_is_structured() {
        let opts = parse_lint_args(["--program", "p.dl", "--json"]).unwrap();
        let out = run_lint(&opts, "delta R(x) :- R(x), S(y).", None).unwrap();
        assert!(out.rendered.starts_with('{'), "{}", out.rendered);
        assert!(out.rendered.contains("\"W103\""), "{}", out.rendered);
        assert!(out.rendered.contains("\"certificate\""), "{}", out.rendered);
    }

    #[test]
    fn corrupt_store_errors_get_their_own_exit_code() {
        // The From impl routes store corruption to exit 6, every other
        // engine failure to exit 5.
        let corrupt = repair_core::RepairError::Storage {
            context: "open durable store".into(),
            source: StorageError::Corrupt {
                path: "/x/snap-0.drs".into(),
                detail: "checksum mismatch".into(),
            },
        };
        let cli: CliError = corrupt.into();
        assert!(matches!(cli, CliError::Corrupt(_)));
        assert_eq!(cli.exit_code(), 6);
        use std::error::Error as _;
        assert!(cli.source().is_some(), "typed error preserved");
        let plain: CliError = repair_core::RepairError::NothingToUndo.into();
        assert_eq!(plain.exit_code(), 5);
    }

    #[test]
    fn data_dir_and_churn_flags_parse_and_validate() {
        // --data-dir alone is enough: --db becomes optional.
        let opts = parse_args([
            "--data-dir",
            "/var/store",
            "--program",
            "p.dl",
            "--churn",
            "3",
        ])
        .unwrap();
        assert_eq!(opts.db, None);
        assert_eq!(opts.data_dir.as_deref(), Some("/var/store"));
        assert_eq!(opts.churn, Some(3));
        // --db + --data-dir initializes a store from the TSV.
        let opts = parse_args(["--db", "d.tsv", "--data-dir", "s", "--program", "p"]).unwrap();
        assert_eq!(opts.db.as_deref(), Some("d.tsv"));
        // Neither --db nor --data-dir: usage error.
        let err = parse_args(["--program", "p.dl"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        // --churn without --data-dir, or with garbage: usage errors.
        assert!(parse_args(["--db", "d", "--program", "p", "--churn", "2"]).is_err());
        assert!(parse_args(["--data-dir", "s", "--program", "p", "--churn", "x"]).is_err());
    }

    #[test]
    fn churn_cycles_leave_the_database_unchanged() {
        let mut opts = base_opts();
        opts.churn = Some(2);
        opts.data_dir = Some("unused-by-run".into());
        opts.semantics = Some(Semantics::End);
        // run() serves in-memory sessions; churn works there too.
        let out = run(&opts, DB, RULES).unwrap();
        assert!(out.report.contains("churn: 2 apply/undo cycles"));
        assert!(out.report.contains("5 tuples"), "{}", out.report);
        assert_eq!(out.results[0].size(), 3, "churn is net-zero");
    }

    #[test]
    fn run_all_semantics() {
        let out = run(&base_opts(), DB, RULES).unwrap();
        assert_eq!(out.results.len(), 4);
        // Pure cascade: all four agree on {g2, ag2, ag3}.
        for r in &out.results {
            assert_eq!(r.size(), 3, "{}", r.semantics());
        }
        assert!(out.report.contains("independent"));
        assert!(out.report.contains("|S| = 3"));
    }

    #[test]
    fn run_single_semantics_with_apply_and_explain() {
        let mut opts = base_opts();
        opts.semantics = Some(Semantics::End);
        opts.apply = Some("out.tsv".into());
        opts.explain = true;
        let out = run(&opts, DB, RULES).unwrap();
        assert_eq!(out.results.len(), 1);
        assert!(out.report.contains("- Grant(2, ERC)"));
        let doc = out.applied.expect("apply requested");
        assert!(doc.contains("1\tNSF"));
        assert!(!doc.contains("2\tERC"));
        // The applied document is itself loadable and stable.
        let repaired = tsv::load_document(&doc).unwrap();
        assert_eq!(repaired.total_rows(), 2);
    }

    #[test]
    fn run_reports_stability() {
        let stable_rules = "delta Grant(g, n) :- Grant(g, n), n = 'NIH'.";
        let out = run(&base_opts(), DB, stable_rules).unwrap();
        assert!(out.report.contains("already stable"));
        assert!(out.results.iter().all(|r| r.size() == 0));
    }

    #[test]
    fn run_with_triggers() {
        let mut opts = base_opts();
        opts.triggers = Some(FiringOrder::Alphabetical);
        let out = run(&opts, DB, RULES).unwrap();
        assert!(out.report.contains("triggers"));
        assert!(out.report.contains("stable: true"));
    }

    #[test]
    fn run_rejects_bad_inputs() {
        assert!(run(&base_opts(), "not a document", RULES).is_err());
        assert!(run(&base_opts(), DB, "delta Nope(x) :- Nope(x).").is_err());
        assert!(run(&base_opts(), DB, "garbage !!").is_err());
    }
}

//! `delta-repair` — shell entry point. All logic lives in the library
//! (`cli`) so it can be unit-tested; this file only touches the filesystem
//! and maps [`cli::CliError`] to its documented process exit code (see the
//! EXIT CODES section of `--help`).

use cli::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Help) => {
            // Requested help goes to stdout and is a success.
            print!("{}", cli::USAGE);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn real_main() -> Result<(), CliError> {
    let opts = cli::parse_args(std::env::args().skip(1))?;
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))
    };
    let db_text = read(&opts.db)?;
    let program_text = read(&opts.program)?;
    let out = cli::run(&opts, &db_text, &program_text)?;
    print!("{}", out.report);
    if let (Some(path), Some(doc)) = (&opts.apply, &out.applied) {
        std::fs::write(path, doc).map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        println!("wrote repaired database to {path}");
    }
    Ok(())
}

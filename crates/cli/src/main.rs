//! `delta-repair` — shell entry point. All logic lives in the library
//! (`cli`) so it can be unit-tested; this file only touches the filesystem
//! and process exit codes.

use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match cli::parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let db_text = match std::fs::read_to_string(&opts.db) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.db);
            return ExitCode::FAILURE;
        }
    };
    let program_text = match std::fs::read_to_string(&opts.program) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.program);
            return ExitCode::FAILURE;
        }
    };
    match cli::run(&opts, &db_text, &program_text) {
        Ok(out) => {
            print!("{}", out.report);
            if let (Some(path), Some(doc)) = (&opts.apply, &out.applied) {
                if let Err(e) = std::fs::write(path, doc) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote repaired database to {path}");
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

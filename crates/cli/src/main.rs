//! `delta-repair` — shell entry point. All logic lives in the library
//! (`cli`) so it can be unit-tested; this file only touches the filesystem
//! and maps [`cli::CliError`] to its documented process exit code (see the
//! EXIT CODES section of `--help`).

use cli::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Help) => {
            // Requested help goes to stdout and is a success.
            print!("{}", cli::USAGE);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn real_main() -> Result<(), CliError> {
    let mut args = std::env::args().skip(1).peekable();
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))
    };
    if args.peek().map(String::as_str) == Some("explain") {
        let opts = cli::parse_explain_args(args.skip(1))?;
        let program_text = read(&opts.program)?;
        let db_text = read(&opts.db)?;
        let out = cli::run_explain(&opts, &program_text, &db_text)?;
        print!("{}", out.rendered);
        return Ok(());
    }
    if args.peek().map(String::as_str) == Some("lint") {
        let opts = cli::parse_lint_args(args.skip(1))?;
        let program_text = read(&opts.program)?;
        let db_text = match &opts.db {
            Some(path) => Some(read(path)?),
            None => None,
        };
        let out = cli::run_lint(&opts, &program_text, db_text.as_deref())?;
        print!("{}", out.rendered);
        return out.status();
    }
    let opts = cli::parse_args(args)?;
    let program_text = read(&opts.program)?;
    let db_text = match &opts.db {
        Some(path) => Some(read(path)?),
        None => None,
    };
    let out = if opts.data_dir.is_some() {
        // Durable run: --db initializes a fresh store, its absence opens
        // (and crash-recovers) the existing one.
        let mut session = cli::durable_session(&opts, db_text.as_deref(), &program_text)?;
        cli::run_session(&opts, &mut session)?
    } else {
        let db_text = db_text.expect("parse_args requires --db without --data-dir");
        cli::run(&opts, &db_text, &program_text)?
    };
    print!("{}", out.report);
    if let (Some(path), Some(doc)) = (&opts.apply, &out.applied) {
        std::fs::write(path, doc).map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        println!("wrote repaired database to {path}");
    }
    Ok(())
}

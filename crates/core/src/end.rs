//! End semantics (Definition 3.10) with provenance collection.
//!
//! Standard datalog evaluation treating the delta relations as intensional:
//! base relations stay frozen at `R⁰` while `Δ` grows to its fixpoint; the
//! deletions are applied once at the end. Evaluation is semi-naive — each
//! round only considers assignments that use at least one delta tuple derived
//! in the previous round — so every assignment is enumerated exactly once.
//! That stream of assignments, together with each delta tuple's first
//! derivation round (its **layer**), is exactly the provenance Algorithm 2
//! consumes.

use crate::engine::{DeltaPolicy, FixpointDriver, FixpointOutcome};
use datalog::{Assignment, Evaluator};
use std::collections::HashMap;
use storage::{Instance, State, TupleId};

/// Everything end semantics produces.
#[derive(Debug)]
pub struct EndOutcome {
    /// Final state: `R = R⁰ \ Δ`, `Δ` at its fixpoint.
    pub state: State,
    /// `End(P, D)` — the deleted tuples, sorted.
    pub deleted: Vec<TupleId>,
    /// Every assignment enumerated during evaluation (the provenance
    /// stream), in derivation order.
    pub assignments: Vec<Assignment>,
    /// 1-based derivation round of each delta tuple.
    pub layers: HashMap<TupleId, u32>,
    /// Number of rounds until the fixpoint.
    pub rounds: u32,
}

impl From<FixpointOutcome> for EndOutcome {
    fn from(out: FixpointOutcome) -> EndOutcome {
        EndOutcome {
            state: out.state,
            deleted: out.deleted,
            assignments: out.assignments,
            layers: out.layers,
            rounds: out.rounds,
        }
    }
}

/// Run end semantics: the engine's semi-naive [`DeltaPolicy::AtEnd`]
/// fixpoint, recording the assignment stream Algorithm 2 consumes.
pub fn run(db: &Instance, ev: &Evaluator) -> EndOutcome {
    run_threads(db, ev, None)
}

/// [`run`] with an explicit worker-thread override for the parallel build
/// (`None` = process default; results are bit-identical at every count).
pub fn run_threads(db: &Instance, ev: &Evaluator, threads: Option<usize>) -> EndOutcome {
    FixpointDriver::new(ev, DeltaPolicy::AtEnd { naive: false })
        .threads(threads)
        .run(db)
        .into()
}

/// Naive end semantics: every round re-enumerates *all* assignments against
/// the full current delta set instead of the frontier — the evaluation
/// strategy of the paper's prototype ("a standard naive evaluation,
/// evaluating all rules iteratively, terminating when no new tuples have
/// been generated"). Produces the same fixpoint as [`run`]; kept as the
/// baseline for the semi-naive ablation bench.
pub fn run_naive(db: &Instance, ev: &Evaluator) -> EndOutcome {
    FixpointDriver::new(ev, DeltaPolicy::AtEnd { naive: true })
        .run(db)
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure1_instance, figure2_program, names_of};
    use datalog::Evaluator;

    fn outcome() -> (Instance, EndOutcome) {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let out = run(&db, &ev);
        (db, out)
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let fast = run(&db, &ev);
        let slow = run_naive(&db, &ev);
        assert_eq!(fast.deleted, slow.deleted);
        assert_eq!(fast.layers, slow.layers);
    }

    #[test]
    fn example_1_3_end_result() {
        // End(P, D) = {g2, a2, a3, w1, w2, p1, p2, c}.
        let (db, out) = outcome();
        assert_eq!(
            names_of(&db, &out.deleted),
            vec![
                "Author(4, Marge)",
                "Author(5, Homer)",
                "Cite(7, 6)",
                "Grant(2, ERC)",
                "Pub(6, x)",
                "Pub(7, y)",
                "Writes(4, 6)",
                "Writes(5, 7)",
            ]
        );
    }

    #[test]
    fn layers_match_figure_5() {
        let (db, out) = outcome();
        let layer = |name: &str| {
            let (&tid, _) = out
                .layers
                .iter()
                .find(|(&t, _)| db.display_tuple(t) == name)
                .unwrap();
            out.layers[&tid]
        };
        assert_eq!(layer("Grant(2, ERC)"), 1);
        assert_eq!(layer("Author(4, Marge)"), 2);
        assert_eq!(layer("Author(5, Homer)"), 2);
        assert_eq!(layer("Writes(4, 6)"), 3);
        assert_eq!(layer("Pub(6, x)"), 3);
        assert_eq!(layer("Cite(7, 6)"), 4);
        assert_eq!(
            out.rounds, 5,
            "four productive rounds + empty fixpoint round"
        );
    }

    #[test]
    fn assignment_stream_matches_example_2_1() {
        // Example 2.1: 1 (rule 0) + 2 (rule 1) + 2 (rule 2) + 2 (rule 3)
        // + 1 (rule 4) = 8 assignments, each exactly once.
        let (_, out) = outcome();
        assert_eq!(out.assignments.len(), 8);
        let mut per_rule = [0usize; 5];
        for a in &out.assignments {
            per_rule[a.rule] += 1;
        }
        assert_eq!(per_rule, [1, 2, 2, 2, 1]);
    }

    #[test]
    fn final_state_is_stable() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let out = run(&db, &ev);
        assert!(ev.is_stable(&db, &out.state));
    }

    #[test]
    fn empty_program_deletes_nothing() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, datalog::Program::default()).unwrap();
        let out = run(&db, &ev);
        assert!(out.deleted.is_empty());
        assert_eq!(out.rounds, 1);
    }
}

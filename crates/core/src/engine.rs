//! The unified fixpoint engine behind end, stage and stability.
//!
//! Definitions 3.7, 3.10 and 3.12 of the paper share one computational
//! skeleton: repeatedly enumerate the satisfying assignments of the delta
//! program against a database view, derive the head tuples, and fold them
//! into the state — the three semantics differ only in *which view* the
//! body atoms range over ([`Mode`]) and *when* deletions are applied.
//! [`FixpointDriver`] factors that skeleton out; the policy axis is
//! [`DeltaPolicy`]:
//!
//! | policy | view | deletions applied | used by |
//! |--------|------|-------------------|---------|
//! | [`DeltaPolicy::AtEnd`] | frozen base relations (`R ← R⁰`) | once, at the fixpoint | end semantics (Def. 3.10) |
//! | [`DeltaPolicy::PerStage`] | live view (`D^{t-1}`) | between rounds, in one batch | stage semantics (Def. 3.7) |
//! | [`DeltaPolicy::Never`] | live view | never — one round, stop at the first assignment | stability checks (Def. 3.12/3.14) |
//!
//! `AtEnd` evaluation is **semi-naive** (each round enumerates only
//! assignments that use at least one frontier tuple, so every assignment is
//! produced exactly once — the provenance stream Algorithm 2 consumes);
//! `AtEnd { naive: true }` keeps the paper prototype's naive re-enumeration
//! as the ablation baseline. `PerStage` must re-enumerate in full each
//! round anyway, because applied deletions change which assignments exist.
//!
//! With the `parallel` feature enabled (and more than one worker allowed by
//! [`FixpointDriver::threads`] / `DELTA_REPAIRS_THREADS`), each round's
//! plans are sliced into fixed-size **morsels** of their driver domains and
//! dispatched to a worker pool from a shared atomic cursor; the per-morsel
//! streams are merged in `(rule, plan, morsel)` order, so results —
//! including the assignment stream, layer numbers and round counts — are
//! bit-for-bit identical to serial runs at every thread count.

use datalog::{Assignment, DeltaFrontier, EvalScratch, Evaluator, Mode};
use provenance::SupportIndex;
use std::collections::HashMap;
use storage::{DeltaBatch, FxHashSet, Instance, State, TupleId};

/// When (and whether) derived deletions are folded into the running state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeltaPolicy {
    /// Def. 3.10: grow `Δ` against frozen base relations; apply all
    /// deletions once at the fixpoint. `naive: true` re-enumerates every
    /// assignment each round instead of using the semi-naive frontier.
    AtEnd {
        /// Use naive re-enumeration instead of the semi-naive frontier.
        naive: bool,
    },
    /// Def. 3.7: derive a whole round against the previous state, then
    /// delete the derived tuples in one batch.
    PerStage,
    /// Def. 3.12: never apply anything — enumerate one round over the live
    /// view and stop at the first satisfying assignment (the instability
    /// witness).
    Never,
}

impl DeltaPolicy {
    /// The evaluation view this policy ranges body atoms over.
    pub fn mode(self) -> Mode {
        match self {
            DeltaPolicy::AtEnd { .. } => Mode::FrozenBase,
            DeltaPolicy::PerStage | DeltaPolicy::Never => Mode::Current,
        }
    }
}

/// Everything a fixpoint run can report. Fields a policy does not produce
/// are left empty (e.g. `assignments` unless recording is on, `violation`
/// except under [`DeltaPolicy::Never`]).
#[derive(Debug)]
pub struct FixpointOutcome {
    /// Final state (deltas applied for `AtEnd`, applied per round for
    /// `PerStage`, untouched for `Never`).
    pub state: State,
    /// All delta tuples, ascending — the semantics' deleted set (empty
    /// under [`DeltaPolicy::Never`], which only decides stability).
    pub deleted: Vec<TupleId>,
    /// The recorded assignment stream, in derivation order (semi-naive:
    /// each assignment exactly once; naive: the final round's full
    /// enumeration — the seed prototype's behaviour).
    pub assignments: Vec<Assignment>,
    /// 1-based derivation round of each delta tuple (its provenance
    /// *layer*).
    pub layers: HashMap<TupleId, u32>,
    /// Total enumeration rounds, including the final unproductive one.
    pub rounds: u32,
    /// Rounds that derived at least one new tuple (stage counts these).
    pub productive_rounds: u32,
    /// Under [`DeltaPolicy::Never`]: the first satisfying assignment, i.e.
    /// the witness that the state is unstable.
    pub violation: Option<Assignment>,
}

/// A configured fixpoint run: an evaluator, a [`DeltaPolicy`], and whether
/// the assignment stream is recorded.
pub struct FixpointDriver<'e> {
    ev: &'e Evaluator,
    policy: DeltaPolicy,
    record: bool,
    /// Worker-thread override for the parallel build; `None` falls back to
    /// the process-wide default (`DELTA_REPAIRS_THREADS` / logical CPUs).
    /// Stored but inert in serial builds, so the knob is API-stable across
    /// feature sets.
    #[cfg_attr(not(feature = "parallel"), allow(dead_code))]
    threads: Option<usize>,
}

impl<'e> FixpointDriver<'e> {
    /// Driver with the policy's default recording: `AtEnd` records the
    /// assignment stream (it *is* the provenance input of Algorithm 2),
    /// the others don't.
    pub fn new(ev: &'e Evaluator, policy: DeltaPolicy) -> FixpointDriver<'e> {
        FixpointDriver {
            ev,
            policy,
            record: matches!(policy, DeltaPolicy::AtEnd { .. }),
            threads: None,
        }
    }

    /// Override assignment-stream recording.
    pub fn record_assignments(mut self, on: bool) -> FixpointDriver<'e> {
        self.record = on;
        self
    }

    /// Override the worker-thread count every enumeration round of this
    /// driver uses (morsel-driven parallel evaluation, `parallel` feature).
    /// `Some(1)` forces serial execution; `None` (the default) uses the
    /// process-wide `DELTA_REPAIRS_THREADS` / logical-CPU default. Results
    /// are bit-identical at every thread count; in serial builds the knob
    /// is accepted and ignored.
    pub fn threads(mut self, threads: Option<usize>) -> FixpointDriver<'e> {
        self.threads = threads;
        self
    }

    /// Run from the instance's initial state.
    pub fn run(&self, db: &Instance) -> FixpointOutcome {
        self.run_from(db, db.initial_state())
    }

    /// Run from an explicit state (stability checks seed the state with a
    /// candidate deletion set first).
    pub fn run_from(&self, db: &Instance, state: State) -> FixpointOutcome {
        match self.policy {
            DeltaPolicy::Never => self.run_one_round(db, state),
            DeltaPolicy::AtEnd { naive: false } => self.run_semi_naive(db, state),
            DeltaPolicy::AtEnd { naive: true } | DeltaPolicy::PerStage => {
                self.run_round_based(db, state)
            }
        }
    }

    /// Semi-naive delta-fixpoint (Def. 3.10): round 1 enumerates the rules
    /// without delta atoms; every later round enumerates exactly the
    /// assignments using at least one tuple derived in the previous round.
    fn run_semi_naive(&self, db: &Instance, mut state: State) -> FixpointOutcome {
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut layers: HashMap<TupleId, u32> = HashMap::new();
        // One scratch serves every enumeration round of this run; `queued`
        // dedups heads in O(1) instead of a linear scan per assignment.
        let mut scratch = EvalScratch::new();
        let mut queued: FxHashSet<TupleId> = FxHashSet::default();

        let mut new_heads: Vec<TupleId> = Vec::new();
        self.enumerate(db, &state, Round::Base, &mut scratch, |a| {
            if !state.in_delta(a.head) && queued.insert(a.head) {
                new_heads.push(a.head);
            }
            if self.record {
                assignments.push(a.clone());
            }
        });

        let mut rounds = 1u32;
        let mut productive = 0u32;
        while !new_heads.is_empty() {
            productive += 1;
            let mut frontier = DeltaFrontier::empty(db);
            for &t in &new_heads {
                if state.mark_delta(t) {
                    layers.insert(t, rounds);
                    frontier.insert(t);
                }
            }
            rounds += 1;
            queued.clear();
            let mut next: Vec<TupleId> = Vec::new();
            self.enumerate(db, &state, Round::Frontier(&frontier), &mut scratch, |a| {
                if !state.in_delta(a.head) && queued.insert(a.head) {
                    next.push(a.head);
                }
                if self.record {
                    assignments.push(a.clone());
                }
            });
            new_heads = next;
        }

        state.apply_deltas();
        let deleted = state.all_delta_rows();
        FixpointOutcome {
            state,
            deleted,
            assignments,
            layers,
            rounds,
            productive_rounds: productive,
            violation: None,
        }
    }

    /// Full re-enumeration each round: the naive end baseline and stage
    /// semantics. Per round, *all* satisfying assignments against the
    /// current state derive heads; then the batch is folded in — marked
    /// (`AtEnd`) or deleted (`PerStage`).
    fn run_round_based(&self, db: &Instance, mut state: State) -> FixpointOutcome {
        let per_stage = self.policy == DeltaPolicy::PerStage;
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut layers: HashMap<TupleId, u32> = HashMap::new();
        let mut rounds = 0u32;
        let mut productive = 0u32;
        let mut scratch = EvalScratch::new();
        let mut queued: FxHashSet<TupleId> = FxHashSet::default();
        loop {
            rounds += 1;
            if self.record {
                // Naive evaluation re-derives everything each round; only
                // the final (complete) enumeration is kept.
                assignments.clear();
            }
            queued.clear();
            let mut new_heads: Vec<TupleId> = Vec::new();
            self.enumerate(db, &state, Round::Full, &mut scratch, |a| {
                let fresh = if per_stage {
                    state.is_present(a.head)
                } else {
                    !state.in_delta(a.head)
                };
                if fresh && queued.insert(a.head) {
                    new_heads.push(a.head);
                }
                if self.record {
                    assignments.push(a.clone());
                }
            });
            if new_heads.is_empty() {
                break;
            }
            productive += 1;
            for t in new_heads {
                if per_stage {
                    state.delete(t);
                } else {
                    state.mark_delta(t);
                }
                layers.insert(t, rounds);
            }
        }
        if !per_stage {
            state.apply_deltas();
        }
        let deleted = state.all_delta_rows();
        FixpointOutcome {
            state,
            deleted,
            assignments,
            layers,
            rounds,
            productive_rounds: productive,
            violation: None,
        }
    }

    /// One round over the live view, aborting at the first assignment —
    /// the stability decision procedure (Def. 3.12). Only `violation` is
    /// meaningful; `deleted` is left empty rather than re-scanning the
    /// caller-provided delta bits.
    fn run_one_round(&self, db: &Instance, state: State) -> FixpointOutcome {
        let mut violation: Option<Assignment> = None;
        self.ev
            .for_each_assignment(db, &state, Mode::Current, &mut |a| {
                violation = Some(a.clone());
                false
            });
        FixpointOutcome {
            state,
            deleted: Vec::new(),
            assignments: Vec::new(),
            layers: HashMap::new(),
            rounds: 1,
            productive_rounds: 0,
            violation,
        }
    }

    /// Enumerate one round, serially or in parallel, feeding assignments to
    /// `f` in deterministic `(rule, head, body)` order either way.
    fn enumerate(
        &self,
        db: &Instance,
        state: &State,
        round: Round<'_>,
        scratch: &mut EvalScratch,
        mut f: impl FnMut(&Assignment),
    ) {
        let mode = self.policy.mode();
        #[cfg(feature = "parallel")]
        {
            let threads = self.threads.unwrap_or_else(datalog::eval_threads);
            if threads > 1 {
                let scope = match round {
                    Round::Full => datalog::ParScope::All,
                    Round::Base => datalog::ParScope::BaseRules,
                    Round::Frontier(fr) => datalog::ParScope::Frontier(fr),
                    Round::Seeded(seed) => datalog::ParScope::Seeded(seed),
                };
                // Streaming fold: morsel outputs are consumed in task order
                // as they complete, never materializing the round's stream.
                self.ev
                    .par_for_each(db, state, mode, scope, threads, &mut |a| f(a));
                return;
            }
        }
        let mut cb = |a: &Assignment| {
            f(a);
            true
        };
        match round {
            Round::Full => self
                .ev
                .for_each_assignment_with(db, state, mode, scratch, &mut cb),
            Round::Base => self
                .ev
                .for_each_base_rule_assignment_with(db, state, mode, scratch, &mut cb),
            Round::Frontier(fr) => self
                .ev
                .for_each_frontier_assignment_with(db, state, mode, fr, scratch, &mut cb),
            Round::Seeded(seed) => self
                .ev
                .for_each_seeded_assignment_with(db, state, mode, seed, scratch, &mut cb),
        };
    }
}

/// Which enumeration a round performs.
enum Round<'f> {
    /// All rules, all assignments.
    Full,
    /// Rules without delta atoms (semi-naive round 1).
    Base,
    /// Frontier-restricted semi-naive round.
    Frontier(&'f DeltaFrontier),
    /// Change-seeded round of incremental maintenance: assignments binding
    /// at least one seed tuple at any body position.
    Seeded(&'f DeltaFrontier),
}

/// Checkpoint of the semi-naive end-semantics fixpoint, advanced in place
/// by mutation batches instead of recomputed from scratch.
///
/// The checkpoint holds the delta fixpoint (as [`State`] bits), the **set**
/// of every FrozenBase assignment valid for that fixpoint (the complete
/// derivation hypergraph — semi-naive evaluation enumerates each exactly
/// once), and a resumable [`SupportIndex`] over them. Given the net
/// [`DeltaBatch`] of a mutation window, [`FixpointDriver::advance`] replays
/// only the affected cone:
///
/// * **deletions** run DRed-style over-delete / re-derive entirely on the
///   cached hyperedges — no database enumeration at all;
/// * **insertions** run one change-seeded round (time proportional to the
///   batch's join cone, probing the composite indexes) followed by ordinary
///   semi-naive frontier rounds.
///
/// The final delta set is exactly the fixpoint a from-scratch run over the
/// mutated instance computes; the cached assignment set is maintained to
/// stay exactly the valid hyperedges (in maintenance order, **not** the
/// derivation order a fresh run would record — derivation layers are not
/// maintained, which is why provenance capture falls back to a full run).
#[derive(Debug)]
pub struct EngineState {
    /// Delta bits = the Δ fixpoint. Present bits are a stale snapshot and
    /// never consulted (FrozenBase ignores them).
    state: State,
    /// The valid derivation hyperedges, in maintenance order.
    assignments: Vec<Assignment>,
    /// Per-tuple adjacency over `assignments`.
    support: SupportIndex,
}

/// What one [`FixpointDriver::advance`] did — cone sizes for tests, logs
/// and the DESIGN notes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdvanceStats {
    /// Delta tuples retracted (over-deleted and not re-derived, plus
    /// tombstoned tuples that were in the fixpoint).
    pub retracted: usize,
    /// Over-deleted tuples whose alternative support re-derived them.
    pub rederived: usize,
    /// Cached assignments invalidated and dropped.
    pub dropped_assignments: usize,
    /// New assignments discovered by the seeded and frontier rounds.
    pub new_assignments: usize,
    /// Delta tuples newly added to the fixpoint.
    pub added: usize,
    /// Semi-naive rounds run for the insertion phase (0 when the batch had
    /// no net insertions).
    pub rounds: u32,
}

impl EngineState {
    /// Checkpoint a completed semi-naive run. `out` must come from
    /// [`DeltaPolicy::AtEnd`]`{ naive: false }` with assignment recording
    /// on (the default), so its stream is the complete hyperedge set.
    pub fn from_outcome(out: FixpointOutcome) -> EngineState {
        let support = SupportIndex::build(&out.assignments);
        EngineState {
            state: out.state,
            assignments: out.assignments,
            support,
        }
    }

    /// The fixpoint's delete-set, ascending — identical to the `deleted`
    /// field of a from-scratch [`FixpointOutcome`] over the same instance.
    pub fn deleted(&self) -> Vec<TupleId> {
        self.state.all_delta_rows()
    }

    /// Is `t` in the delta fixpoint?
    pub fn in_delta(&self, t: TupleId) -> bool {
        self.state.in_delta(t)
    }

    /// Number of cached derivation hyperedges.
    pub fn num_assignments(&self) -> usize {
        self.assignments.len()
    }

    /// The cached hyperedges, in maintenance order (a set, not the
    /// derivation-ordered provenance stream).
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Append a newly discovered hyperedge.
    fn push(&mut self, a: Assignment) {
        let id = u32::try_from(self.assignments.len()).expect("assignment cache too large");
        self.support.push(id, &a);
        self.assignments.push(a);
    }
}

impl FixpointDriver<'_> {
    /// Advance `es` over the net mutation `batch`, bringing it to the exact
    /// fixpoint a from-scratch [`FixpointDriver::run`] would compute on the
    /// mutated `db`. Only meaningful for the semi-naive
    /// [`DeltaPolicy::AtEnd`] policy this driver must have been built with.
    ///
    /// Deletions are resolved on the cached hyperedges alone (over-delete
    /// everything reachable from the tombstoned tuples, then re-derive what
    /// keeps alternative support — exact, because the cache holds *every*
    /// derivation). Insertions seed a change-focused enumeration round and
    /// then run ordinary frontier rounds to the new fixpoint.
    pub fn advance(&self, db: &Instance, es: &mut EngineState, batch: &DeltaBatch) -> AdvanceStats {
        debug_assert!(
            matches!(self.policy, DeltaPolicy::AtEnd { naive: false }),
            "incremental maintenance is defined for the semi-naive end fixpoint"
        );
        let mut stats = AdvanceStats::default();

        // ------------------------------------------------------------------
        // Phase 1 — deletions: DRed on the cached hypergraph, no DB access.
        // ------------------------------------------------------------------
        if !batch.deleted.is_empty() {
            let removed: FxHashSet<TupleId> = batch.deleted.iter().copied().collect();
            // Tombstoned tuples leave the fixpoint unconditionally: no live
            // witness can derive them any more.
            let gone: Vec<TupleId> = batch
                .deleted
                .iter()
                .copied()
                .filter(|&t| es.state.in_delta(t))
                .collect();

            // Over-delete: suspect every delta tuple reachable from a
            // removed tuple through any cached derivation.
            let mut suspects: FxHashSet<TupleId> = FxHashSet::default();
            let mut queue: Vec<TupleId> = Vec::new();
            let suspect_heads_of = |ids: &[u32],
                                    assignments: &[Assignment],
                                    suspects: &mut FxHashSet<TupleId>,
                                    queue: &mut Vec<TupleId>| {
                for &ai in ids {
                    let h = assignments[ai as usize].head;
                    if !removed.contains(&h) && suspects.insert(h) {
                        queue.push(h);
                    }
                }
            };
            for &t in &batch.deleted {
                suspect_heads_of(
                    es.support.base_uses(t),
                    &es.assignments,
                    &mut suspects,
                    &mut queue,
                );
                suspect_heads_of(
                    es.support.delta_uses(t),
                    &es.assignments,
                    &mut suspects,
                    &mut queue,
                );
            }
            while let Some(s) = queue.pop() {
                for &ai in es.support.delta_uses(s) {
                    let h = es.assignments[ai as usize].head;
                    if !removed.contains(&h) && suspects.insert(h) {
                        queue.push(h);
                    }
                }
            }

            // Re-derive: a suspect returns if some deriving hyperedge
            // survives on (live base, surviving delta) support. Monotone
            // worklist fixpoint — cycles without external support never
            // fire, so a cyclic derivation island falls as a whole.
            let mut rederived: FxHashSet<TupleId> = FxHashSet::default();
            let edge_ok = |a: &Assignment, rederived: &FxHashSet<TupleId>| {
                a.body.iter().all(|b| {
                    if removed.contains(&b.tid) {
                        false
                    } else if b.is_delta && suspects.contains(&b.tid) {
                        rederived.contains(&b.tid)
                    } else {
                        true
                    }
                })
            };
            let mut wl: Vec<TupleId> = suspects.iter().copied().collect();
            wl.sort_unstable(); // deterministic processing order
            while let Some(s) = wl.pop() {
                if rederived.contains(&s) {
                    continue;
                }
                let derivable = es
                    .support
                    .deriving(s)
                    .iter()
                    .any(|&ai| edge_ok(&es.assignments[ai as usize], &rederived));
                if derivable {
                    rederived.insert(s);
                    for &ai in es.support.delta_uses(s) {
                        let h = es.assignments[ai as usize].head;
                        if suspects.contains(&h) && !rederived.contains(&h) {
                            wl.push(h);
                        }
                    }
                }
            }

            // Retract: tombstoned members plus unsupported suspects.
            for &t in &gone {
                es.state.unmark_delta(t);
                stats.retracted += 1;
            }
            for &s in &suspects {
                if !rederived.contains(&s) && es.state.unmark_delta(s) {
                    stats.retracted += 1;
                }
            }
            stats.rederived = rederived.len();

            // Drop hyperedges that are no longer valid: a base binding left
            // the EDB, or a delta binding left the fixpoint.
            let invalid = |a: &Assignment| {
                a.body.iter().any(|b| {
                    if b.is_delta {
                        !es.state.in_delta(b.tid)
                    } else {
                        removed.contains(&b.tid)
                    }
                })
            };
            let keep: Vec<bool> = es.assignments.iter().map(|a| !invalid(a)).collect();
            if keep.iter().any(|&k| !k) {
                let mut remap = vec![u32::MAX; keep.len()];
                let mut next = 0u32;
                for (i, &k) in keep.iter().enumerate() {
                    if k {
                        remap[i] = next;
                        next += 1;
                    }
                }
                stats.dropped_assignments = keep.len() - next as usize;
                let mut i = 0;
                es.assignments.retain(|_| {
                    let k = keep[i];
                    i += 1;
                    k
                });
                es.support
                    .retain(|id| keep[id as usize], |id| remap[id as usize]);
            }
        }

        // ------------------------------------------------------------------
        // Phase 2 — insertions: one seeded round, then frontier rounds.
        // ------------------------------------------------------------------
        if !batch.inserted.is_empty() {
            let mut seed = DeltaFrontier::empty(db);
            for &t in &batch.inserted {
                seed.insert(t);
            }
            let mut scratch = EvalScratch::new();
            let mut queued: FxHashSet<TupleId> = FxHashSet::default();
            let mut new_heads: Vec<TupleId> = Vec::new();
            let mut found: Vec<Assignment> = Vec::new();
            self.enumerate(db, &es.state, Round::Seeded(&seed), &mut scratch, |a| {
                found.push(a.clone());
            });
            for a in found.drain(..) {
                if !es.state.in_delta(a.head) && queued.insert(a.head) {
                    new_heads.push(a.head);
                }
                es.push(a);
                stats.new_assignments += 1;
            }

            while !new_heads.is_empty() {
                stats.rounds += 1;
                let mut frontier = DeltaFrontier::empty(db);
                for &t in &new_heads {
                    if es.state.mark_delta(t) {
                        frontier.insert(t);
                        stats.added += 1;
                    }
                }
                queued.clear();
                let mut next: Vec<TupleId> = Vec::new();
                self.enumerate(
                    db,
                    &es.state,
                    Round::Frontier(&frontier),
                    &mut scratch,
                    |a| {
                        found.push(a.clone());
                    },
                );
                for a in found.drain(..) {
                    if !es.state.in_delta(a.head) && queued.insert(a.head) {
                        next.push(a.head);
                    }
                    es.push(a);
                    stats.new_assignments += 1;
                }
                new_heads = next;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure1_instance, figure2_program, names_of, tid_of};
    use datalog::Evaluator;

    fn fixture() -> (Instance, Evaluator) {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        (db, ev)
    }

    #[test]
    fn at_end_semi_naive_and_naive_agree() {
        let (db, ev) = fixture();
        let fast = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false }).run(&db);
        let slow = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: true }).run(&db);
        assert_eq!(fast.deleted, slow.deleted);
        assert_eq!(fast.layers, slow.layers);
        assert_eq!(fast.rounds, slow.rounds, "both count total rounds");
        assert_eq!(fast.deleted.len(), 8);
    }

    #[test]
    fn per_stage_counts_productive_rounds() {
        let (db, ev) = fixture();
        let out = FixpointDriver::new(&ev, DeltaPolicy::PerStage).run(&db);
        assert_eq!(out.productive_rounds, 3, "Example 3.8 runs in three stages");
        assert_eq!(out.rounds, 4, "plus the final unproductive round");
        assert_eq!(out.deleted.len(), 7, "stage drops the Cite tuple");
    }

    #[test]
    fn never_policy_finds_the_witness() {
        let (db, ev) = fixture();
        let driver = FixpointDriver::new(&ev, DeltaPolicy::Never);
        let unstable = driver.run(&db);
        let witness = unstable.violation.expect("figure 1 is unstable");
        assert_eq!(witness.rule, 0);
        assert_eq!(db.display_tuple(witness.head), "Grant(2, ERC)");

        // Seeding the state with the End deletion set stabilizes it.
        let end = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false }).run(&db);
        let mut state = db.initial_state();
        for &t in &end.deleted {
            state.delete(t);
        }
        assert!(driver.run_from(&db, state).violation.is_none());
    }

    #[test]
    fn recording_can_be_disabled() {
        let (db, ev) = fixture();
        let out = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false })
            .record_assignments(false)
            .run(&db);
        assert!(out.assignments.is_empty());
        assert_eq!(out.deleted.len(), 8, "deleted set unaffected by recording");
    }

    fn advance_matches_fresh(db: &mut Instance, ev: &Evaluator, batch_of: impl Fn(&mut Instance)) {
        let driver = FixpointDriver::new(ev, DeltaPolicy::AtEnd { naive: false });
        let cursor = db.journal().head();
        let mut es = EngineState::from_outcome(driver.run(db));
        batch_of(db);
        let batch = db.changes_since(cursor).expect("journal retained");
        driver.advance(db, &mut es, &batch);
        let fresh = driver.run(db);
        assert_eq!(es.deleted(), fresh.deleted, "incremental ≠ from-scratch");
        // The maintained hyperedge set equals the fresh stream as a set.
        let mut a: Vec<String> = es.assignments().iter().map(|x| format!("{x:?}")).collect();
        let mut b: Vec<String> = fresh.assignments.iter().map(|x| format!("{x:?}")).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "cached hyperedges diverged from a fresh enumeration");
    }

    #[test]
    fn advance_absorbs_insertions_like_a_fresh_run() {
        let (mut db, ev) = fixture();
        advance_matches_fresh(&mut db, &ev, |db| {
            // A second ERC grant with a full cascade behind it.
            db.insert_values(
                "Grant",
                [storage::Value::Int(9), storage::Value::str("ERC")],
            )
            .unwrap();
            db.insert_values(
                "AuthGrant",
                [storage::Value::Int(2), storage::Value::Int(9)],
            )
            .unwrap();
        });
    }

    #[test]
    fn advance_absorbs_deletions_like_a_fresh_run() {
        let (mut db, ev) = fixture();
        advance_matches_fresh(&mut db, &ev, |db| {
            // Severing one AuthGrant link prunes part of the cascade.
            let ag = tid_of(db, "AuthGrant(4, 2)");
            db.delete_tuples([ag]).unwrap();
        });
    }

    #[test]
    fn advance_absorbs_mixed_batches_and_composes() {
        let (mut db, ev) = fixture();
        let driver = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false });
        let mut cursor = db.journal().head();
        let mut es = EngineState::from_outcome(driver.run(&db));
        // Three successive windows: delete the seed, reinsert an ERC grant,
        // then delete a downstream support tuple.
        let g2 = tid_of(&db, "Grant(2, ERC)");
        type Step = Box<dyn Fn(&mut Instance)>;
        let steps: Vec<Step> = vec![
            Box::new(move |db: &mut Instance| {
                db.delete_tuples([g2]).unwrap();
            }),
            Box::new(|db: &mut Instance| {
                db.insert_values(
                    "Grant",
                    [storage::Value::Int(8), storage::Value::str("ERC")],
                )
                .unwrap();
                db.insert_values(
                    "AuthGrant",
                    [storage::Value::Int(4), storage::Value::Int(8)],
                )
                .unwrap();
            }),
            Box::new(|db: &mut Instance| {
                let w = tid_of(db, "Writes(4, 6)");
                db.delete_tuples([w]).unwrap();
            }),
        ];
        for step in steps {
            step(&mut db);
            let batch = db.changes_since(cursor).expect("retained");
            cursor = db.journal().head();
            driver.advance(&db, &mut es, &batch);
            let fresh = driver.run(&db);
            assert_eq!(es.deleted(), fresh.deleted);
            assert_eq!(es.num_assignments(), fresh.assignments.len());
        }
    }

    #[test]
    fn advance_retracts_unsupported_cycles_whole() {
        // Two tuples deriving each other through delta atoms, seeded by an
        // external support tuple: deleting the support must fell the whole
        // island even though the cycle "supports itself".
        let mut db = crate::testkit::tiny_instance(&[1], &[1], &[]);
        let program = datalog::parse_program(
            "delta R1(x) :- R1(x), x = 1.
             delta R2(x) :- R2(x), delta R1(x).
             delta R1(x) :- R1(x), delta R2(x).",
        )
        .unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let driver = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false });
        let cursor = db.journal().head();
        let mut es = EngineState::from_outcome(driver.run(&db));
        assert_eq!(es.deleted().len(), 2);
        // Tombstone the R1 tuple: Δ(R1(1)) is gone outright, and Δ(R2(1))'s
        // only remaining support is the cycle — it must fall too.
        let r1 = tid_of(&db, "R1(1)");
        db.delete_tuples([r1]).unwrap();
        let batch = db.changes_since(cursor).unwrap();
        let stats = driver.advance(&db, &mut es, &batch);
        assert_eq!(es.deleted(), driver.run(&db).deleted);
        assert!(es.deleted().is_empty(), "whole island retracted");
        assert_eq!(stats.rederived, 0);
        assert_eq!(es.num_assignments(), 0);
    }

    #[test]
    fn advance_rederives_alternative_support() {
        // R2(1) is derivable through either of two R1 seeds; deleting one
        // seed over-deletes Δ(R2(1)) and the re-derive phase rescues it.
        let mut db = crate::testkit::tiny_instance(&[1, 2], &[1], &[]);
        let program = datalog::parse_program(
            "delta R1(x) :- R1(x).
             delta R2(y) :- R2(y), delta R1(x).",
        )
        .unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let driver = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false });
        let cursor = db.journal().head();
        let mut es = EngineState::from_outcome(driver.run(&db));
        assert_eq!(es.deleted().len(), 3);
        let r1a = tid_of(&db, "R1(1)");
        db.delete_tuples([r1a]).unwrap();
        let batch = db.changes_since(cursor).unwrap();
        let stats = driver.advance(&db, &mut es, &batch);
        assert_eq!(es.deleted(), driver.run(&db).deleted);
        assert_eq!(es.deleted().len(), 2, "R1(2) and the rescued R2(1)");
        assert!(stats.rederived >= 1, "Δ(R2(1)) had alternative support");
    }

    #[test]
    fn policies_see_the_figure1_sets() {
        let (db, ev) = fixture();
        let end = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false }).run(&db);
        let stage = FixpointDriver::new(&ev, DeltaPolicy::PerStage).run(&db);
        assert!(names_of(&db, &end.deleted).contains(&"Cite(7, 6)".to_owned()));
        assert!(!names_of(&db, &stage.deleted).contains(&"Cite(7, 6)".to_owned()));
        let cite = tid_of(&db, "Cite(7, 6)");
        assert_eq!(end.layers[&cite], 4);
    }
}

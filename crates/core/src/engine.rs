//! The unified fixpoint engine behind end, stage and stability.
//!
//! Definitions 3.7, 3.10 and 3.12 of the paper share one computational
//! skeleton: repeatedly enumerate the satisfying assignments of the delta
//! program against a database view, derive the head tuples, and fold them
//! into the state — the three semantics differ only in *which view* the
//! body atoms range over ([`Mode`]) and *when* deletions are applied.
//! [`FixpointDriver`] factors that skeleton out; the policy axis is
//! [`DeltaPolicy`]:
//!
//! | policy | view | deletions applied | used by |
//! |--------|------|-------------------|---------|
//! | [`DeltaPolicy::AtEnd`] | frozen base relations (`R ← R⁰`) | once, at the fixpoint | end semantics (Def. 3.10) |
//! | [`DeltaPolicy::PerStage`] | live view (`D^{t-1}`) | between rounds, in one batch | stage semantics (Def. 3.7) |
//! | [`DeltaPolicy::Never`] | live view | never — one round, stop at the first assignment | stability checks (Def. 3.12/3.14) |
//!
//! `AtEnd` evaluation is **semi-naive** (each round enumerates only
//! assignments that use at least one frontier tuple, so every assignment is
//! produced exactly once — the provenance stream Algorithm 2 consumes);
//! `AtEnd { naive: true }` keeps the paper prototype's naive re-enumeration
//! as the ablation baseline. `PerStage` must re-enumerate in full each
//! round anyway, because applied deletions change which assignments exist.
//!
//! With the `parallel` feature enabled (and more than one thread allowed by
//! `DELTA_REPAIRS_THREADS`), each round's rules are enumerated on separate
//! OS threads and the per-rule streams are merged in `(rule, head, body)`
//! enumeration order, so results — including the assignment stream, layer
//! numbers and round counts — are bit-for-bit identical to serial runs.

use datalog::{Assignment, DeltaFrontier, EvalScratch, Evaluator, Mode};
use std::collections::HashMap;
use storage::{FxHashSet, Instance, State, TupleId};

/// When (and whether) derived deletions are folded into the running state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeltaPolicy {
    /// Def. 3.10: grow `Δ` against frozen base relations; apply all
    /// deletions once at the fixpoint. `naive: true` re-enumerates every
    /// assignment each round instead of using the semi-naive frontier.
    AtEnd {
        /// Use naive re-enumeration instead of the semi-naive frontier.
        naive: bool,
    },
    /// Def. 3.7: derive a whole round against the previous state, then
    /// delete the derived tuples in one batch.
    PerStage,
    /// Def. 3.12: never apply anything — enumerate one round over the live
    /// view and stop at the first satisfying assignment (the instability
    /// witness).
    Never,
}

impl DeltaPolicy {
    /// The evaluation view this policy ranges body atoms over.
    pub fn mode(self) -> Mode {
        match self {
            DeltaPolicy::AtEnd { .. } => Mode::FrozenBase,
            DeltaPolicy::PerStage | DeltaPolicy::Never => Mode::Current,
        }
    }
}

/// Everything a fixpoint run can report. Fields a policy does not produce
/// are left empty (e.g. `assignments` unless recording is on, `violation`
/// except under [`DeltaPolicy::Never`]).
#[derive(Debug)]
pub struct FixpointOutcome {
    /// Final state (deltas applied for `AtEnd`, applied per round for
    /// `PerStage`, untouched for `Never`).
    pub state: State,
    /// All delta tuples, ascending — the semantics' deleted set (empty
    /// under [`DeltaPolicy::Never`], which only decides stability).
    pub deleted: Vec<TupleId>,
    /// The recorded assignment stream, in derivation order (semi-naive:
    /// each assignment exactly once; naive: the final round's full
    /// enumeration — the seed prototype's behaviour).
    pub assignments: Vec<Assignment>,
    /// 1-based derivation round of each delta tuple (its provenance
    /// *layer*).
    pub layers: HashMap<TupleId, u32>,
    /// Total enumeration rounds, including the final unproductive one.
    pub rounds: u32,
    /// Rounds that derived at least one new tuple (stage counts these).
    pub productive_rounds: u32,
    /// Under [`DeltaPolicy::Never`]: the first satisfying assignment, i.e.
    /// the witness that the state is unstable.
    pub violation: Option<Assignment>,
}

/// A configured fixpoint run: an evaluator, a [`DeltaPolicy`], and whether
/// the assignment stream is recorded.
pub struct FixpointDriver<'e> {
    ev: &'e Evaluator,
    policy: DeltaPolicy,
    record: bool,
}

impl<'e> FixpointDriver<'e> {
    /// Driver with the policy's default recording: `AtEnd` records the
    /// assignment stream (it *is* the provenance input of Algorithm 2),
    /// the others don't.
    pub fn new(ev: &'e Evaluator, policy: DeltaPolicy) -> FixpointDriver<'e> {
        FixpointDriver {
            ev,
            policy,
            record: matches!(policy, DeltaPolicy::AtEnd { .. }),
        }
    }

    /// Override assignment-stream recording.
    pub fn record_assignments(mut self, on: bool) -> FixpointDriver<'e> {
        self.record = on;
        self
    }

    /// Run from the instance's initial state.
    pub fn run(&self, db: &Instance) -> FixpointOutcome {
        self.run_from(db, db.initial_state())
    }

    /// Run from an explicit state (stability checks seed the state with a
    /// candidate deletion set first).
    pub fn run_from(&self, db: &Instance, state: State) -> FixpointOutcome {
        match self.policy {
            DeltaPolicy::Never => self.run_one_round(db, state),
            DeltaPolicy::AtEnd { naive: false } => self.run_semi_naive(db, state),
            DeltaPolicy::AtEnd { naive: true } | DeltaPolicy::PerStage => {
                self.run_round_based(db, state)
            }
        }
    }

    /// Semi-naive delta-fixpoint (Def. 3.10): round 1 enumerates the rules
    /// without delta atoms; every later round enumerates exactly the
    /// assignments using at least one tuple derived in the previous round.
    fn run_semi_naive(&self, db: &Instance, mut state: State) -> FixpointOutcome {
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut layers: HashMap<TupleId, u32> = HashMap::new();
        // One scratch serves every enumeration round of this run; `queued`
        // dedups heads in O(1) instead of a linear scan per assignment.
        let mut scratch = EvalScratch::new();
        let mut queued: FxHashSet<TupleId> = FxHashSet::default();

        let mut new_heads: Vec<TupleId> = Vec::new();
        self.enumerate(db, &state, Round::Base, &mut scratch, |a| {
            if !state.in_delta(a.head) && queued.insert(a.head) {
                new_heads.push(a.head);
            }
            if self.record {
                assignments.push(a.clone());
            }
        });

        let mut rounds = 1u32;
        let mut productive = 0u32;
        while !new_heads.is_empty() {
            productive += 1;
            let mut frontier = DeltaFrontier::empty(db);
            for &t in &new_heads {
                if state.mark_delta(t) {
                    layers.insert(t, rounds);
                    frontier.insert(t);
                }
            }
            rounds += 1;
            queued.clear();
            let mut next: Vec<TupleId> = Vec::new();
            self.enumerate(db, &state, Round::Frontier(&frontier), &mut scratch, |a| {
                if !state.in_delta(a.head) && queued.insert(a.head) {
                    next.push(a.head);
                }
                if self.record {
                    assignments.push(a.clone());
                }
            });
            new_heads = next;
        }

        state.apply_deltas();
        let deleted = state.all_delta_rows();
        FixpointOutcome {
            state,
            deleted,
            assignments,
            layers,
            rounds,
            productive_rounds: productive,
            violation: None,
        }
    }

    /// Full re-enumeration each round: the naive end baseline and stage
    /// semantics. Per round, *all* satisfying assignments against the
    /// current state derive heads; then the batch is folded in — marked
    /// (`AtEnd`) or deleted (`PerStage`).
    fn run_round_based(&self, db: &Instance, mut state: State) -> FixpointOutcome {
        let per_stage = self.policy == DeltaPolicy::PerStage;
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut layers: HashMap<TupleId, u32> = HashMap::new();
        let mut rounds = 0u32;
        let mut productive = 0u32;
        let mut scratch = EvalScratch::new();
        let mut queued: FxHashSet<TupleId> = FxHashSet::default();
        loop {
            rounds += 1;
            if self.record {
                // Naive evaluation re-derives everything each round; only
                // the final (complete) enumeration is kept.
                assignments.clear();
            }
            queued.clear();
            let mut new_heads: Vec<TupleId> = Vec::new();
            self.enumerate(db, &state, Round::Full, &mut scratch, |a| {
                let fresh = if per_stage {
                    state.is_present(a.head)
                } else {
                    !state.in_delta(a.head)
                };
                if fresh && queued.insert(a.head) {
                    new_heads.push(a.head);
                }
                if self.record {
                    assignments.push(a.clone());
                }
            });
            if new_heads.is_empty() {
                break;
            }
            productive += 1;
            for t in new_heads {
                if per_stage {
                    state.delete(t);
                } else {
                    state.mark_delta(t);
                }
                layers.insert(t, rounds);
            }
        }
        if !per_stage {
            state.apply_deltas();
        }
        let deleted = state.all_delta_rows();
        FixpointOutcome {
            state,
            deleted,
            assignments,
            layers,
            rounds,
            productive_rounds: productive,
            violation: None,
        }
    }

    /// One round over the live view, aborting at the first assignment —
    /// the stability decision procedure (Def. 3.12). Only `violation` is
    /// meaningful; `deleted` is left empty rather than re-scanning the
    /// caller-provided delta bits.
    fn run_one_round(&self, db: &Instance, state: State) -> FixpointOutcome {
        let mut violation: Option<Assignment> = None;
        self.ev
            .for_each_assignment(db, &state, Mode::Current, &mut |a| {
                violation = Some(a.clone());
                false
            });
        FixpointOutcome {
            state,
            deleted: Vec::new(),
            assignments: Vec::new(),
            layers: HashMap::new(),
            rounds: 1,
            productive_rounds: 0,
            violation,
        }
    }

    /// Enumerate one round, serially or in parallel, feeding assignments to
    /// `f` in deterministic `(rule, head, body)` order either way.
    fn enumerate(
        &self,
        db: &Instance,
        state: &State,
        round: Round<'_>,
        scratch: &mut EvalScratch,
        mut f: impl FnMut(&Assignment),
    ) {
        let mode = self.policy.mode();
        #[cfg(feature = "parallel")]
        {
            if datalog::eval_threads() > 1 && self.ev.num_rules() > 1 {
                let scope = match round {
                    Round::Full => datalog::ParScope::All,
                    Round::Base => datalog::ParScope::BaseRules,
                    Round::Frontier(fr) => datalog::ParScope::Frontier(fr),
                };
                for a in self.ev.par_collect(db, state, mode, scope) {
                    f(&a);
                }
                return;
            }
        }
        let mut cb = |a: &Assignment| {
            f(a);
            true
        };
        match round {
            Round::Full => self
                .ev
                .for_each_assignment_with(db, state, mode, scratch, &mut cb),
            Round::Base => self
                .ev
                .for_each_base_rule_assignment_with(db, state, mode, scratch, &mut cb),
            Round::Frontier(fr) => self
                .ev
                .for_each_frontier_assignment_with(db, state, mode, fr, scratch, &mut cb),
        };
    }
}

/// Which enumeration a round performs.
enum Round<'f> {
    /// All rules, all assignments.
    Full,
    /// Rules without delta atoms (semi-naive round 1).
    Base,
    /// Frontier-restricted semi-naive round.
    Frontier(&'f DeltaFrontier),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure1_instance, figure2_program, names_of, tid_of};
    use datalog::Evaluator;

    fn fixture() -> (Instance, Evaluator) {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        (db, ev)
    }

    #[test]
    fn at_end_semi_naive_and_naive_agree() {
        let (db, ev) = fixture();
        let fast = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false }).run(&db);
        let slow = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: true }).run(&db);
        assert_eq!(fast.deleted, slow.deleted);
        assert_eq!(fast.layers, slow.layers);
        assert_eq!(fast.rounds, slow.rounds, "both count total rounds");
        assert_eq!(fast.deleted.len(), 8);
    }

    #[test]
    fn per_stage_counts_productive_rounds() {
        let (db, ev) = fixture();
        let out = FixpointDriver::new(&ev, DeltaPolicy::PerStage).run(&db);
        assert_eq!(out.productive_rounds, 3, "Example 3.8 runs in three stages");
        assert_eq!(out.rounds, 4, "plus the final unproductive round");
        assert_eq!(out.deleted.len(), 7, "stage drops the Cite tuple");
    }

    #[test]
    fn never_policy_finds_the_witness() {
        let (db, ev) = fixture();
        let driver = FixpointDriver::new(&ev, DeltaPolicy::Never);
        let unstable = driver.run(&db);
        let witness = unstable.violation.expect("figure 1 is unstable");
        assert_eq!(witness.rule, 0);
        assert_eq!(db.display_tuple(witness.head), "Grant(2, ERC)");

        // Seeding the state with the End deletion set stabilizes it.
        let end = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false }).run(&db);
        let mut state = db.initial_state();
        for &t in &end.deleted {
            state.delete(t);
        }
        assert!(driver.run_from(&db, state).violation.is_none());
    }

    #[test]
    fn recording_can_be_disabled() {
        let (db, ev) = fixture();
        let out = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false })
            .record_assignments(false)
            .run(&db);
        assert!(out.assignments.is_empty());
        assert_eq!(out.deleted.len(), 8, "deleted set unaffected by recording");
    }

    #[test]
    fn policies_see_the_figure1_sets() {
        let (db, ev) = fixture();
        let end = FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false }).run(&db);
        let stage = FixpointDriver::new(&ev, DeltaPolicy::PerStage).run(&db);
        assert!(names_of(&db, &end.deleted).contains(&"Cite(7, 6)".to_owned()));
        assert!(!names_of(&db, &stage.deleted).contains(&"Cite(7, 6)".to_owned()));
        let cite = tid_of(&db, "Cite(7, 6)");
        assert_eq!(end.layers[&cite], 4);
    }
}

//! The single error surface of the repair API.
//!
//! Every fallible entry point of [`crate::RepairSession`] (and the facade
//! around it) returns [`RepairError`], which wraps the layer-specific causes
//! — [`StorageError`], [`DatalogError`] — with the context of what the
//! session was doing, plus the session-level failure modes (invalid
//! requests, stale outcomes, empty undo stack). Callers match one enum; the
//! original cause stays reachable through [`std::error::Error::source`].

use crate::result::{ParseSemanticsError, Semantics};
use datalog::DatalogError;
use std::fmt;
use storage::StorageError;

/// Any failure of the repair API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// The storage layer rejected a mutation (schema violation, unknown
    /// relation or tuple).
    Storage {
        /// What the session was doing, e.g. `insert into Author`.
        context: String,
        /// The underlying cause.
        source: StorageError,
    },
    /// The datalog layer rejected the program (syntax, validation or
    /// planning).
    Datalog {
        /// What the session was doing, e.g. `planning the delta program`.
        context: String,
        /// The underlying cause.
        source: DatalogError,
    },
    /// A [`crate::RepairRequest`] carried unusable parameters (the
    /// conditions that previously surfaced as solver misuse panics).
    InvalidRequest(String),
    /// A semantics name failed to parse.
    UnknownSemantics(ParseSemanticsError),
    /// [`crate::RepairOutcome::apply`] was handed an outcome computed
    /// against an earlier revision of the session's database. Recompute the
    /// repair and apply the fresh outcome.
    StaleOutcome {
        /// Which semantics produced the stale outcome.
        semantics: Semantics,
        /// Session revision the outcome was computed at.
        outcome_epoch: u64,
        /// The session's current revision.
        session_epoch: u64,
    },
    /// [`crate::RepairSession::undo`] was called with no applied repair to
    /// roll back.
    NothingToUndo,
}

impl RepairError {
    pub(crate) fn storage(context: impl Into<String>, source: StorageError) -> RepairError {
        RepairError::Storage {
            context: context.into(),
            source,
        }
    }

    pub(crate) fn datalog(context: impl Into<String>, source: DatalogError) -> RepairError {
        RepairError::Datalog {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Storage { context, source } => write!(f, "{context}: {source}"),
            RepairError::Datalog { context, source } => write!(f, "{context}: {source}"),
            RepairError::InvalidRequest(msg) => write!(f, "invalid repair request: {msg}"),
            RepairError::UnknownSemantics(e) => write!(f, "{e}"),
            RepairError::StaleOutcome {
                semantics,
                outcome_epoch,
                session_epoch,
            } => write!(
                f,
                "stale {semantics} outcome: computed at session revision \
                 {outcome_epoch}, database is now at revision {session_epoch} \
                 — recompute the repair before applying"
            ),
            RepairError::NothingToUndo => write!(f, "no applied repair to undo"),
        }
    }
}

impl std::error::Error for RepairError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RepairError::Storage { source, .. } => Some(source),
            RepairError::Datalog { source, .. } => Some(source),
            RepairError::UnknownSemantics(source) => Some(source),
            _ => None,
        }
    }
}

impl From<ParseSemanticsError> for RepairError {
    fn from(e: ParseSemanticsError) -> RepairError {
        RepairError::UnknownSemantics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_carry_context_and_sources() {
        let e = RepairError::storage(
            "insert into Author",
            StorageError::UnknownRelation("Author".into()),
        );
        assert_eq!(
            e.to_string(),
            "insert into Author: unknown relation `Author`"
        );
        assert!(e.source().is_some());

        let e = RepairError::datalog(
            "planning the delta program",
            DatalogError::UnknownRelation {
                relation: "Nope".into(),
                span: None,
            },
        );
        assert!(e.to_string().contains("planning the delta program"));
        assert!(e.source().unwrap().to_string().contains("Nope"));

        assert!(RepairError::NothingToUndo.source().is_none());
        let stale = RepairError::StaleOutcome {
            semantics: Semantics::End,
            outcome_epoch: 1,
            session_epoch: 3,
        };
        assert!(stale.to_string().contains("revision 1"));
    }

    #[test]
    fn semantics_parse_errors_convert() {
        let err: RepairError = "vibes".parse::<Semantics>().unwrap_err().into();
        assert!(matches!(err, RepairError::UnknownSemantics(_)));
    }
}

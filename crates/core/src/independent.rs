//! Independent semantics (Definition 3.3) — Algorithm 1 plus an exact
//! reference.
//!
//! The result is the smallest set `S` of tuples such that
//! `(D \ S) ∪ Δ(S)` satisfies no rule. Algorithm 1:
//!
//! 1. **Eval** — enumerate every *possible* assignment (delta atoms range
//!    over all of `D`, not just derivable deltas) and store each as a DNF
//!    provenance clause;
//! 2. **Process Prov** — negate the disjunction: a CNF over per-tuple
//!    deletion variables;
//! 3. **Solve** — Min-Ones SAT: a model with the fewest `True` (deleted)
//!    variables is a minimum stabilizing set.

use crate::result::PhaseBreakdown;
use datalog::{Evaluator, Mode};
use provenance::{ProvFormula, ProvFormulaBuilder};
use sat::{solve_min_ones, Cnf, Lit, MinOnesOptions, Outcome};
use std::time::Instant;
use storage::{FxHashMap, Instance, State, TupleId};

/// Outcome of Algorithm 1.
#[derive(Debug)]
pub struct IndependentOutcome {
    /// Final state after deleting the set.
    pub state: State,
    /// `Ind(P, D)`, sorted.
    pub deleted: Vec<TupleId>,
    /// Eval / Process Prov / Solve, Figure 8's categories for Algorithm 1.
    pub breakdown: PhaseBreakdown,
    /// Whether the SAT search proved minimality (no budget cut-off).
    pub optimal: bool,
    /// Did a wall-clock deadline force the fast first-solution descent
    /// instead of the exact search? Implies `optimal == false` unless the
    /// first descent happened to be provably minimum.
    pub timed_out: bool,
    /// Number of CNF clauses after deduplication.
    pub cnf_clauses: usize,
    /// SAT statistics.
    pub sat_stats: sat::Stats,
}

/// Run Algorithm 1 with the given solver options.
pub fn run(db: &Instance, ev: &Evaluator, opts: &MinOnesOptions) -> IndependentOutcome {
    run_with_deadline(db, ev, opts, None)
}

/// [`run`] with a wall-clock deadline. The deadline is checked between the
/// phases of Algorithm 1 (the solver itself is budgeted in decision nodes,
/// not time): if Eval + Process Prov already exceeded it, the Solve phase
/// degrades to the first-solution descent — a stabilizing but possibly
/// non-minimum answer — and the outcome is marked `timed_out`.
pub fn run_with_deadline(
    db: &Instance,
    ev: &Evaluator,
    opts: &MinOnesOptions,
    deadline: Option<std::time::Instant>,
) -> IndependentOutcome {
    // Phase 1: Eval — provenance of all possible delta tuples, folded into
    // clauses as they stream out of the evaluator. With a parallel build
    // and more than one worker allowed, the hypothetical enumeration runs
    // morsel-parallel and completed morsels stream into the builder in
    // deterministic task order (no whole-stream materialization); the
    // serial path streams straight into the builder as before.
    let t0 = Instant::now();
    let state0 = db.initial_state();
    let mut builder = ProvFormulaBuilder::new();
    #[cfg(feature = "parallel")]
    let streamed_serially = opts.threads <= 1;
    #[cfg(not(feature = "parallel"))]
    let streamed_serially = true;
    if streamed_serially {
        ev.for_each_assignment(db, &state0, Mode::Hypothetical, &mut |a| {
            builder.add(a);
            true
        });
    }
    #[cfg(feature = "parallel")]
    if !streamed_serially {
        ev.par_for_each(
            db,
            &state0,
            Mode::Hypothetical,
            datalog::ParScope::All,
            opts.threads,
            &mut |a| builder.add(a),
        );
    }
    let eval = t0.elapsed();

    // Phase 2: Process Prov — negated formula as CNF over deletion vars.
    let t1 = Instant::now();
    let formula = builder.finish();
    let universe = formula.tuple_universe();
    let var_of: FxHashMap<TupleId, u32> = universe
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect();
    let mut cnf = Cnf::new(universe.len());
    let mut lits = Vec::new();
    // Canonical clause order. The builder yields clauses in first-seen
    // order, which tracks the evaluator's enumeration order and therefore
    // the chosen join plans. The Min-Ones search breaks ties between
    // equal-size minimum models by clause layout (local variable
    // numbering follows clause order), so sort clauses by content: the
    // CNF — and hence the returned repair — becomes a pure function of
    // the clause *set*, identical under any join order.
    let mut ordered: Vec<&provenance::ProvClause> = formula.clauses().iter().collect();
    ordered.sort_unstable_by(|a, b| a.pos.cmp(&b.pos).then_with(|| a.neg.cmp(&b.neg)));
    for clause in ordered {
        lits.clear();
        // ¬(pos present ∧ neg deleted) = ⋁ del(pos) ∨ ⋁ ¬del(neg).
        // Both sides are tuple-sorted and `var_of` is monotone in tuple
        // order, so merging the two ascending literal runs yields a sorted,
        // duplicate-free, tautology-free clause (contradictions were
        // dropped by the formula builder) — no per-clause sort needed.
        let mut pos = clause.pos.iter().map(|t| Lit::pos(var_of[t])).peekable();
        let mut neg = clause.neg.iter().map(|t| Lit::neg(var_of[t])).peekable();
        loop {
            match (pos.peek(), neg.peek()) {
                (Some(&p), Some(&n)) => {
                    if p < n {
                        lits.push(p);
                        pos.next();
                    } else {
                        lits.push(n);
                        neg.next();
                    }
                }
                (Some(_), None) => {
                    lits.extend(pos.by_ref());
                    break;
                }
                (None, Some(_)) => {
                    lits.extend(neg.by_ref());
                    break;
                }
                (None, None) => break,
            }
        }
        cnf.add_clause_presorted(&lits);
    }
    let process = t1.elapsed();

    // Phase 3: Solve — Min-Ones SAT.
    let t2 = Instant::now();
    let timed_out = deadline.is_some_and(|d| Instant::now() >= d);
    let effective = if timed_out {
        MinOnesOptions {
            first_solution_only: true,
            ..*opts
        }
    } else {
        *opts
    };
    let outcome = solve_min_ones(&cnf, &effective);
    let solve = t2.elapsed();

    let solution = match outcome {
        Outcome::Sat(s) => s,
        // Proposition 3.18: a stabilizing set always exists (every clause
        // has a positive literal via the head witness), so ¬F is always
        // satisfiable.
        Outcome::Unsat => unreachable!("delta-rule CNFs are always satisfiable"),
    };
    let mut deleted: Vec<TupleId> = universe
        .iter()
        .zip(&solution.values)
        .filter(|(_, &del)| del)
        .map(|(&t, _)| t)
        .collect();
    deleted.sort_unstable();
    let mut state = db.initial_state();
    for &t in &deleted {
        state.delete(t);
    }
    IndependentOutcome {
        state,
        deleted,
        breakdown: PhaseBreakdown {
            eval,
            process,
            solve,
        },
        optimal: solution.optimal,
        timed_out,
        cnf_clauses: cnf.num_clauses(),
        sat_stats: solution.stats,
    }
}

/// Exact independent semantics by subset enumeration in increasing size over
/// the tuples mentioned in the provenance formula. Exponential — test use
/// only. Returns `None` if the universe exceeds `max_universe` tuples.
pub fn optimal(db: &Instance, ev: &Evaluator, max_universe: usize) -> Option<Vec<TupleId>> {
    let state0 = db.initial_state();
    let mut assignments = Vec::new();
    ev.for_each_assignment(db, &state0, Mode::Hypothetical, &mut |a| {
        assignments.push(a.clone());
        true
    });
    let formula = ProvFormula::from_assignments(assignments.iter());
    let universe = formula.tuple_universe();
    let n = universe.len();
    if n > max_universe {
        return None;
    }
    if n == 0 {
        return Some(Vec::new());
    }
    // Subsets in order of increasing popcount.
    let mut masks: Vec<u64> = (0..(1u64 << n)).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        let set: std::collections::HashSet<TupleId> = universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &t)| t)
            .collect();
        if formula.stable_under(&set) {
            let mut v: Vec<TupleId> = set.into_iter().collect();
            v.sort_unstable();
            return Some(v);
        }
    }
    unreachable!("the full universe is always stabilizing")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure1_instance, figure2_program, names_of, tiny_instance};
    use datalog::{parse_program, Evaluator};

    fn default_run(db: &Instance, ev: &Evaluator) -> IndependentOutcome {
        run(db, ev, &MinOnesOptions::default())
    }

    #[test]
    fn example_3_4_independent_result() {
        // Ind(P, D) = {g2, ag2, ag3}: deleting the AuthGrant tuples voids
        // rule (1) without any cascade.
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let out = default_run(&db, &ev);
        assert_eq!(
            names_of(&db, &out.deleted),
            vec!["AuthGrant(4, 2)", "AuthGrant(5, 2)", "Grant(2, ERC)"]
        );
        assert!(out.optimal);
        assert!(ev.is_stable(&db, &out.state));
    }

    #[test]
    fn example_5_1_formula_shape() {
        // After dedup (rules 2/3 share bodies) the negated formula has six
        // clauses, exactly as printed in Example 5.1.
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let out = default_run(&db, &ev);
        // One hypothetical rule-1 assignment goes through g1/ag1/a1 — it
        // dedups with nothing, so 7 total: Example 5.1 writes only the 6
        // clauses over the ERC side plus the unit; the g1 clause
        // (¬a1 ∨ ¬ag1 ∨ g1) is trivially satisfiable and does not change
        // the result.
        assert_eq!(out.cnf_clauses, 7);
    }

    #[test]
    fn matches_exact_search_on_running_example() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let alg1 = default_run(&db, &ev);
        let exact = optimal(&db, &ev, 13).unwrap();
        assert_eq!(alg1.deleted.len(), exact.len());
    }

    #[test]
    fn prop_3_20_item_1_ind_can_beat_everything() {
        // D = {R1(a1..a5), R2(b)}, rule ΔR1(x) :- R1(x), R2(y): independent
        // deletes just R2(b); the others must delete all of R1.
        let mut db = tiny_instance(&[1, 2, 3, 4, 5], &[9], &[]);
        let program = parse_program("delta R1(x) :- R1(x), R2(y).").unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let ind = default_run(&db, &ev);
        assert_eq!(names_of(&db, &ind.deleted), vec!["R2(9)"]);
        let end_out = crate::end::run(&db, &ev);
        assert_eq!(end_out.deleted.len(), 5);
    }

    #[test]
    fn unconstrained_stable_database() {
        let mut db = tiny_instance(&[1], &[], &[]);
        let program = parse_program("delta R1(x) :- R1(x), R2(y).").unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let out = default_run(&db, &ev);
        assert!(out.deleted.is_empty());
        assert_eq!(out.cnf_clauses, 0);
    }

    #[test]
    fn first_solution_mode_still_stabilizes() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let out = run(
            &db,
            &ev,
            &MinOnesOptions {
                first_solution_only: true,
                ..Default::default()
            },
        );
        assert!(ev.is_stable(&db, &out.state));
    }

    #[test]
    fn exact_enumerator_budget() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        assert!(optimal(&db, &ev, 2).is_none());
    }
}

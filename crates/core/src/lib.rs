//! # repair-core — the four delta-rule repair semantics
//!
//! This crate is the primary contribution of *"On Multiple Semantics for
//! Declarative Database Repairs"* (SIGMOD 2020), re-implemented in full:
//!
//! | module | paper | what it computes |
//! |--------|-------|------------------|
//! | [`engine`]      | Defs. 3.7/3.10/3.12 | the shared fixpoint driver: one semi-naive/round-based loop parameterized by a [`engine::DeltaPolicy`] (when deletions are applied), optionally morsel-parallel inside every rule |
//! | [`end`]         | Def. 3.10 | semi-naive datalog fixpoint over frozen base relations; deletions applied at the end; also records every assignment and each delta tuple's derivation round (the provenance stream) |
//! | [`stage`]       | Def. 3.7  | staged evaluation: derive all delta tuples of a stage against the previous state, then delete, to fixpoint |
//! | [`step`]        | Def. 3.5, Alg. 2 | greedy max-benefit traversal of the layered provenance graph, plus an exact exponential search for small instances |
//! | [`independent`] | Def. 3.3, Alg. 1 | provenance Boolean formula → negation → Min-Ones SAT, plus an exact subset-enumeration reference |
//! | [`stability`]   | Def. 3.12/3.14 | stability of a state and verification of stabilizing sets |
//! | [`relationships`] | Prop. 3.20, Table 3 | containment/size relations between results |
//!
//! The one-stop entry point is [`RepairSession`]: it validates and plans a
//! program once, **owns** the instance and its indexes, and serves any
//! number of [`RepairRequest`]s. Each [`RepairOutcome`] carries the deleted
//! set, the paper's phase breakdown (Figure 8's Eval / Process Prov /
//! Solve / Traverse) and an [`Optimality`] certificate, and can be
//! previewed, applied to the session and undone.
//!
//! Sessions maintain repair state **incrementally**: mutations flow into
//! the storage layer's journal, and the next end-semantics repair advances
//! a cached [`engine::EngineState`] over the net change (DRed-style
//! deletion handling, change-seeded semi-naive insertion rounds) instead of
//! recomputing the fixpoint from scratch — bit-identical results at a
//! fraction of the cost for small deltas.
//!
//! ```
//! use repair_core::{RepairSession, Semantics};
//! use repair_core::testkit;
//!
//! let session =
//!     RepairSession::new(testkit::figure1_instance(), testkit::figure2_program())?;
//! let end = session.run(Semantics::End);
//! let ind = session.run(Semantics::Independent);
//! assert!(ind.size() <= end.size());
//! assert!(session.verify_stabilizing(ind.deleted()));
//! # Ok::<(), repair_core::RepairError>(())
//! ```
//!
//! The pre-session [`Repairer`] (`&mut db` to plan, `&db` on every run,
//! bare results, three unrelated error types) survives as a deprecated shim
//! over the same dispatch; see [`repairer`] for the migration table.

pub mod end;
pub mod engine;
pub mod error;
pub mod independent;
pub mod relationships;
pub mod repairer;
pub mod result;
pub mod session;
pub mod stability;
pub mod stage;
pub mod step;
pub mod testkit;

pub use engine::{AdvanceStats, DeltaPolicy, EngineState, FixpointDriver, FixpointOutcome};
pub use error::RepairError;
#[allow(deprecated)]
pub use repairer::Repairer;
pub use result::{ParseSemanticsError, PhaseBreakdown, RepairResult, Semantics};
pub use session::{
    AppliedRepair, Optimality, OptimalityCertificate, RepairOutcome, RepairPreview,
    RepairProvenance, RepairRequest, RepairSession,
};
// Durable-session vocabulary, re-exported so callers of
// `RepairSession::open_durable` don't need a direct `storage` dependency.
pub use storage::{DiskOptions, FsyncPolicy, RecoveryReport};

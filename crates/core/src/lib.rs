//! # repair-core — the four delta-rule repair semantics
//!
//! This crate is the primary contribution of *"On Multiple Semantics for
//! Declarative Database Repairs"* (SIGMOD 2020), re-implemented in full:
//!
//! | module | paper | what it computes |
//! |--------|-------|------------------|
//! | [`engine`]      | Defs. 3.7/3.10/3.12 | the shared fixpoint driver: one semi-naive/round-based loop parameterized by a [`engine::DeltaPolicy`] (when deletions are applied), optionally parallel per rule |
//! | [`end`]         | Def. 3.10 | semi-naive datalog fixpoint over frozen base relations; deletions applied at the end; also records every assignment and each delta tuple's derivation round (the provenance stream) |
//! | [`stage`]       | Def. 3.7  | staged evaluation: derive all delta tuples of a stage against the previous state, then delete, to fixpoint |
//! | [`step`]        | Def. 3.5, Alg. 2 | greedy max-benefit traversal of the layered provenance graph, plus an exact exponential search for small instances |
//! | [`independent`] | Def. 3.3, Alg. 1 | provenance Boolean formula → negation → Min-Ones SAT, plus an exact subset-enumeration reference |
//! | [`stability`]   | Def. 3.12/3.14 | stability of a state and verification of stabilizing sets |
//! | [`relationships`] | Prop. 3.20, Table 3 | containment/size relations between results |
//!
//! The one-stop entry point is [`Repairer`]: validate and plan a program once,
//! then run any semantics over the instance and get a [`RepairResult`] with
//! the deleted set and the paper's phase breakdown (Figure 8's Eval /
//! Process Prov / Solve / Traverse).
//!
//! ```
//! use repair_core::{Repairer, Semantics};
//! use repair_core::testkit;
//!
//! let mut db = testkit::figure1_instance();
//! let repairer = Repairer::new(&mut db, testkit::figure2_program()).unwrap();
//! let end = repairer.run(&db, Semantics::End);
//! let ind = repairer.run(&db, Semantics::Independent);
//! assert!(ind.deleted.len() <= end.deleted.len());
//! assert!(repairer.verify_stabilizing(&db, &ind.deleted));
//! ```

pub mod end;
pub mod engine;
pub mod independent;
pub mod relationships;
pub mod repairer;
pub mod result;
pub mod stability;
pub mod stage;
pub mod step;
pub mod testkit;

pub use repairer::Repairer;
pub use result::{PhaseBreakdown, RepairResult, Semantics};

//! Containment and size relationships between semantics results
//! (Proposition 3.20, Figure 3, Table 3).

use crate::result::RepairResult;
use storage::TupleId;

/// Is sorted `a` a subset of sorted `b`?
pub fn is_subset(a: &[TupleId], b: &[TupleId]) -> bool {
    let mut j = 0;
    for &x in a {
        loop {
            if j >= b.len() {
                return false;
            }
            match b[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

/// Set equality of sorted slices.
pub fn set_eq(a: &[TupleId], b: &[TupleId]) -> bool {
    a == b
}

/// One row of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContainmentRow {
    /// `Step(P,D) = Stage(P,D)`?
    pub step_eq_stage: bool,
    /// `Ind(P,D) ⊆ Stage(P,D)`?
    pub ind_sub_stage: bool,
    /// `Ind(P,D) ⊆ Step(P,D)`?
    pub ind_sub_step: bool,
}

/// Compute the Table 3 relationships from the four results.
pub fn table3_row(ind: &RepairResult, step: &RepairResult, stage: &RepairResult) -> ContainmentRow {
    ContainmentRow {
        step_eq_stage: set_eq(&step.deleted, &stage.deleted),
        ind_sub_stage: is_subset(&ind.deleted, &stage.deleted),
        ind_sub_step: is_subset(&ind.deleted, &step.deleted),
    }
}

/// The invariants of Figure 3 that must hold for **every** database and
/// program: size of independent ≤ size of step and stage; stage ⊆ end;
/// step ⊆ end. Returns a violation description, or `None` when all hold.
pub fn check_figure3_invariants(
    ind: &RepairResult,
    step: &RepairResult,
    stage: &RepairResult,
    end: &RepairResult,
) -> Option<String> {
    if ind.deleted.len() > step.deleted.len() {
        return Some(format!(
            "|Ind| = {} > |Step| = {}",
            ind.deleted.len(),
            step.deleted.len()
        ));
    }
    if ind.deleted.len() > stage.deleted.len() {
        return Some(format!(
            "|Ind| = {} > |Stage| = {}",
            ind.deleted.len(),
            stage.deleted.len()
        ));
    }
    if !is_subset(&stage.deleted, &end.deleted) {
        return Some("Stage ⊄ End".to_owned());
    }
    if !is_subset(&step.deleted, &end.deleted) {
        return Some("Step ⊄ End".to_owned());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::RelId;

    fn t(r: u16, w: u32) -> TupleId {
        TupleId::new(RelId(r), w)
    }

    #[test]
    fn subset_on_sorted_slices() {
        let a = vec![t(0, 1), t(1, 2)];
        let b = vec![t(0, 0), t(0, 1), t(1, 2), t(2, 0)];
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        assert!(is_subset(&[], &a));
        assert!(is_subset(&a, &a));
        assert!(!is_subset(&[t(3, 0)], &b));
    }

    #[test]
    fn equality_is_exact() {
        let a = vec![t(0, 1)];
        assert!(set_eq(&a, &a.clone()));
        assert!(!set_eq(&a, &[]));
    }
}

//! The unified entry point: validate once, repair under any semantics.

use crate::result::{PhaseBreakdown, RepairResult, Semantics};
use crate::{end, independent, stability, stage, step};
use datalog::{DatalogError, Evaluator, Program};
use sat::MinOnesOptions;
use std::time::Instant;
use storage::{Instance, TupleId};

/// A validated, planned delta program bound to a schema, ready to run any of
/// the four semantics.
pub struct Repairer {
    ev: Evaluator,
    minones: MinOnesOptions,
}

impl Repairer {
    /// Default per-component decision budget for the Min-Ones search used by
    /// independent semantics. The paper's observation that exact solvers are
    /// "not polynomial [but] efficient in practice" holds here too: every
    /// workload of Tables 1 and 2 except the widest DC-style joins proves
    /// optimality well within this budget, and on the pathological instances
    /// the greedy-first incumbent (reached within the first few thousand
    /// nodes) is returned with [`RepairResult::proven_optimal`] = `false`
    /// instead of searching forever. Use [`Repairer::with_options`] with
    /// `node_budget: u64::MAX` for a provably exact answer.
    pub const DEFAULT_NODE_BUDGET: u64 = 200_000;

    /// Validate `program` against `db`'s schema and prepare join plans and
    /// indexes.
    pub fn new(db: &mut Instance, program: Program) -> Result<Repairer, DatalogError> {
        Ok(Repairer {
            ev: Evaluator::new(db, program)?,
            minones: MinOnesOptions {
                node_budget: Self::DEFAULT_NODE_BUDGET,
                ..MinOnesOptions::default()
            },
        })
    }

    /// Like [`Repairer::new`] with explicit Min-Ones solver options
    /// (ablation benches switch decomposition off or cap the node budget).
    pub fn with_options(
        db: &mut Instance,
        program: Program,
        minones: MinOnesOptions,
    ) -> Result<Repairer, DatalogError> {
        Ok(Repairer {
            ev: Evaluator::new(db, program)?,
            minones,
        })
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.ev
    }

    /// Run one semantics and return its result with phase timings.
    pub fn run(&self, db: &Instance, semantics: Semantics) -> RepairResult {
        match semantics {
            Semantics::End => {
                let t0 = Instant::now();
                let out = end::run(db, &self.ev);
                RepairResult {
                    semantics,
                    deleted: out.deleted,
                    breakdown: PhaseBreakdown {
                        eval: t0.elapsed(),
                        ..Default::default()
                    },
                    proven_optimal: true,
                }
            }
            Semantics::Stage => {
                let t0 = Instant::now();
                let out = stage::run(db, &self.ev);
                RepairResult {
                    semantics,
                    deleted: out.deleted,
                    breakdown: PhaseBreakdown {
                        eval: t0.elapsed(),
                        ..Default::default()
                    },
                    proven_optimal: true,
                }
            }
            Semantics::Step => {
                let out = step::run_greedy(db, &self.ev);
                RepairResult {
                    semantics,
                    deleted: out.deleted,
                    breakdown: out.breakdown,
                    proven_optimal: false,
                }
            }
            Semantics::Independent => {
                let out = independent::run(db, &self.ev, &self.minones);
                RepairResult {
                    semantics,
                    deleted: out.deleted,
                    breakdown: out.breakdown,
                    proven_optimal: out.optimal,
                }
            }
        }
    }

    /// Run all four semantics in the paper's order
    /// (independent, step, stage, end).
    pub fn run_all(&self, db: &Instance) -> [RepairResult; 4] {
        Semantics::ALL.map(|s| self.run(db, s))
    }

    /// Is the database already stable?
    pub fn is_stable(&self, db: &Instance) -> bool {
        stability::initially_stable(db, &self.ev)
    }

    /// Does deleting `deleted` stabilize the database? Every
    /// [`RepairResult`] must pass this (Proposition 3.18).
    pub fn verify_stabilizing(&self, db: &Instance, deleted: &[TupleId]) -> bool {
        stability::is_stabilizing(db, &self.ev, deleted)
    }

    /// Why-provenance: the derivation tree explaining why `tuple` is
    /// deleted under end semantics, or `None` if it never is. Runs the
    /// end-semantics evaluation to collect the assignment stream; for
    /// repeated queries over a large instance build a
    /// [`provenance::Explainer`] over [`end::run`]'s output once instead.
    pub fn explain(&self, db: &Instance, tuple: TupleId) -> Option<provenance::DerivationTree> {
        let out = end::run(db, &self.ev);
        provenance::Explainer::new(&out.assignments, &out.layers).explain(tuple)
    }

    /// Graphviz DOT rendering of the full end-semantics provenance graph
    /// (the paper's Figure 5).
    pub fn provenance_dot(&self, db: &Instance) -> String {
        let out = end::run(db, &self.ev);
        provenance::to_dot(db, &out.assignments, &out.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationships;
    use crate::testkit::{figure1_instance, figure2_program, names_of};

    fn setup() -> (Instance, Repairer) {
        let mut db = figure1_instance();
        let r = Repairer::new(&mut db, figure2_program()).unwrap();
        (db, r)
    }

    #[test]
    fn example_1_3_all_four_semantics() {
        // End = {g2,a2,a3,w1,w2,p1,p2,c}; Stage drops c; Step keeps only the
        // Writes side; Ind = {g2, ag2, ag3}.
        let (db, r) = setup();
        let end = r.run(&db, Semantics::End);
        let stage = r.run(&db, Semantics::Stage);
        let step = r.run(&db, Semantics::Step);
        let ind = r.run(&db, Semantics::Independent);
        assert_eq!(end.size(), 8);
        assert_eq!(stage.size(), 7);
        assert_eq!(step.size(), 5);
        assert_eq!(
            names_of(&db, &ind.deleted),
            vec!["AuthGrant(4, 2)", "AuthGrant(5, 2)", "Grant(2, ERC)"]
        );
        for res in [&end, &stage, &step, &ind] {
            assert!(
                r.verify_stabilizing(&db, &res.deleted),
                "{} must stabilize",
                res.semantics
            );
        }
        assert!(relationships::check_figure3_invariants(&ind, &step, &stage, &end).is_none());
    }

    #[test]
    fn run_all_returns_paper_order() {
        let (db, r) = setup();
        let all = r.run_all(&db);
        assert_eq!(all[0].semantics, Semantics::Independent);
        assert_eq!(all[3].semantics, Semantics::End);
    }

    #[test]
    fn running_example_table3_row() {
        let (db, r) = setup();
        let [ind, step, stage, _] = r.run_all(&db);
        let row = relationships::table3_row(&ind, &step, &stage);
        // Step ⊊ Stage here, and the AuthGrant tuples are not derivable, so
        // Ind is not contained in either.
        assert!(!row.step_eq_stage);
        assert!(!row.ind_sub_stage);
        assert!(!row.ind_sub_step);
    }

    #[test]
    fn stability_entry_points() {
        let (db, r) = setup();
        assert!(!r.is_stable(&db));
        let all: Vec<_> = db.all_tuple_ids().collect();
        assert!(r.verify_stabilizing(&db, &all));
    }
}

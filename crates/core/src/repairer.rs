//! The original one-shot entry point, now a thin shim over the
//! [`RepairSession`](crate::RepairSession) machinery.
//!
//! `Repairer` predates the session API and kept an awkward contract: it
//! borrowed the instance mutably to build indexes, then required the caller
//! to hold on to the database and pass it back immutably on every call —
//! nothing stopped the two from drifting apart. It remains only so existing
//! code keeps compiling; it runs on the exact same dispatch as
//! [`RepairSession`](crate::RepairSession), so results are bit-identical.
//!
//! Migration:
//!
//! ```text
//! // before                                   // after
//! let r = Repairer::new(&mut db, prog)?;      let s = RepairSession::new(db, prog)?;
//! let res = r.run(&db, Semantics::End);       let res = s.run(Semantics::End);
//! r.verify_stabilizing(&db, &res.deleted);    s.verify_stabilizing(res.deleted());
//! ```

use crate::result::{RepairResult, Semantics};
use crate::session::run_semantics;
use crate::{end, stability};
use datalog::{DatalogError, Evaluator, Program};
use sat::MinOnesOptions;
use storage::{Instance, TupleId};

/// A validated, planned delta program bound to a schema, ready to run any of
/// the four semantics.
#[deprecated(
    since = "0.2.0",
    note = "use `RepairSession`, which owns the instance and adds \
            apply/undo, request budgets and unified errors"
)]
pub struct Repairer {
    ev: Evaluator,
    minones: MinOnesOptions,
}

#[allow(deprecated)]
impl Repairer {
    /// See [`crate::RepairSession::DEFAULT_NODE_BUDGET`].
    pub const DEFAULT_NODE_BUDGET: u64 = crate::RepairSession::DEFAULT_NODE_BUDGET;

    /// Validate `program` against `db`'s schema and prepare join plans and
    /// indexes.
    pub fn new(db: &mut Instance, program: Program) -> Result<Repairer, DatalogError> {
        Ok(Repairer {
            ev: Evaluator::new(db, program)?,
            minones: MinOnesOptions {
                node_budget: Self::DEFAULT_NODE_BUDGET,
                ..MinOnesOptions::default()
            },
        })
    }

    /// Like [`Repairer::new`] with explicit Min-Ones solver options
    /// (ablation benches switch decomposition off or cap the node budget).
    pub fn with_options(
        db: &mut Instance,
        program: Program,
        minones: MinOnesOptions,
    ) -> Result<Repairer, DatalogError> {
        Ok(Repairer {
            ev: Evaluator::new(db, program)?,
            minones,
        })
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.ev
    }

    /// Run one semantics and return its result with phase timings.
    pub fn run(&self, db: &Instance, semantics: Semantics) -> RepairResult {
        run_semantics(db, &self.ev, &self.minones, None, semantics, false, None).0
    }

    /// Run all four semantics in the paper's order
    /// (independent, step, stage, end).
    pub fn run_all(&self, db: &Instance) -> [RepairResult; 4] {
        Semantics::ALL.map(|s| self.run(db, s))
    }

    /// Is the database already stable?
    pub fn is_stable(&self, db: &Instance) -> bool {
        stability::initially_stable(db, &self.ev)
    }

    /// Does deleting `deleted` stabilize the database? Every
    /// [`RepairResult`] must pass this (Proposition 3.18).
    pub fn verify_stabilizing(&self, db: &Instance, deleted: &[TupleId]) -> bool {
        stability::is_stabilizing(db, &self.ev, deleted)
    }

    /// Why-provenance: the derivation tree explaining why `tuple` is
    /// deleted under end semantics, or `None` if it never is.
    pub fn explain(&self, db: &Instance, tuple: TupleId) -> Option<provenance::DerivationTree> {
        let out = end::run(db, &self.ev);
        provenance::Explainer::new(&out.assignments, &out.layers).explain(tuple)
    }

    /// Graphviz DOT rendering of the full end-semantics provenance graph
    /// (the paper's Figure 5).
    pub fn provenance_dot(&self, db: &Instance) -> String {
        let out = end::run(db, &self.ev);
        provenance::to_dot(db, &out.assignments, &out.layers)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::relationships;
    use crate::testkit::{figure1_instance, figure2_program, names_of};

    fn setup() -> (Instance, Repairer) {
        let mut db = figure1_instance();
        let r = Repairer::new(&mut db, figure2_program()).unwrap();
        (db, r)
    }

    #[test]
    fn example_1_3_all_four_semantics() {
        // End = {g2,a2,a3,w1,w2,p1,p2,c}; Stage drops c; Step keeps only the
        // Writes side; Ind = {g2, ag2, ag3}.
        let (db, r) = setup();
        let end = r.run(&db, Semantics::End);
        let stage = r.run(&db, Semantics::Stage);
        let step = r.run(&db, Semantics::Step);
        let ind = r.run(&db, Semantics::Independent);
        assert_eq!(end.size(), 8);
        assert_eq!(stage.size(), 7);
        assert_eq!(step.size(), 5);
        assert_eq!(
            names_of(&db, &ind.deleted),
            vec!["AuthGrant(4, 2)", "AuthGrant(5, 2)", "Grant(2, ERC)"]
        );
        for res in [&end, &stage, &step, &ind] {
            assert!(
                r.verify_stabilizing(&db, &res.deleted),
                "{} must stabilize",
                res.semantics
            );
        }
        assert!(relationships::check_figure3_invariants(&ind, &step, &stage, &end).is_none());
    }

    #[test]
    fn run_all_returns_paper_order() {
        let (db, r) = setup();
        let all = r.run_all(&db);
        assert_eq!(all[0].semantics, Semantics::Independent);
        assert_eq!(all[3].semantics, Semantics::End);
    }

    #[test]
    fn running_example_table3_row() {
        let (db, r) = setup();
        let [ind, step, stage, _] = r.run_all(&db);
        let row = relationships::table3_row(&ind, &step, &stage);
        // Step ⊊ Stage here, and the AuthGrant tuples are not derivable, so
        // Ind is not contained in either.
        assert!(!row.step_eq_stage);
        assert!(!row.ind_sub_stage);
        assert!(!row.ind_sub_step);
    }

    #[test]
    fn stability_entry_points() {
        let (db, r) = setup();
        assert!(!r.is_stable(&db));
        let all: Vec<_> = db.all_tuple_ids().collect();
        assert!(r.verify_stabilizing(&db, &all));
    }

    #[test]
    fn shim_and_session_share_one_dispatch() {
        // The shim result carries the session's optimality reasoning too:
        // step on Figure 1 is heuristic, not hard-coded `false` — a pure
        // cascade proves optimal through the same path.
        let (db, r) = setup();
        assert!(!r.run(&db, Semantics::Step).proven_optimal);
        let mut cascade = crate::testkit::tiny_instance(&[1], &[1], &[]);
        let program = datalog::parse_program(
            "delta R1(x) :- R1(x), x = 1.
             delta R2(x) :- R2(x), delta R1(x).",
        )
        .unwrap();
        let rc = Repairer::new(&mut cascade, program).unwrap();
        assert!(rc.run(&cascade, Semantics::Step).proven_optimal);
    }
}

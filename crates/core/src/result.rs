//! Result and timing types shared by the four semantics.

use std::fmt;
use std::time::Duration;
use storage::TupleId;

/// The four semantics of the paper (Section 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Semantics {
    /// Definition 3.10 — standard datalog baseline.
    End,
    /// Definition 3.7 — staged deterministic cascades.
    Stage,
    /// Definition 3.5 — fine-grained rule-at-a-time (Algorithm 2 heuristic).
    Step,
    /// Definition 3.3 — global minimum stabilizing set (Algorithm 1).
    Independent,
}

impl Semantics {
    /// All four, in the paper's presentation order.
    pub const ALL: [Semantics; 4] = [
        Semantics::Independent,
        Semantics::Step,
        Semantics::Stage,
        Semantics::End,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Semantics::End => "end",
            Semantics::Stage => "stage",
            Semantics::Step => "step",
            Semantics::Independent => "independent",
        }
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error of parsing a [`Semantics`] from a string: the input named no
/// semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSemanticsError {
    input: String,
}

impl fmt::Display for ParseSemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown semantics `{}` (expected one of: independent, step, stage, end)",
            self.input
        )
    }
}

impl std::error::Error for ParseSemanticsError {}

/// The inverse of [`Semantics::name`] / `Display` — the single source of
/// truth for the textual names (`"end" | "stage" | "step" | "independent"`,
/// plus the CLI's historical `"ind"` shorthand).
impl std::str::FromStr for Semantics {
    type Err = ParseSemanticsError;

    fn from_str(s: &str) -> Result<Semantics, ParseSemanticsError> {
        match s {
            "end" => Ok(Semantics::End),
            "stage" => Ok(Semantics::Stage),
            "step" => Ok(Semantics::Step),
            "independent" | "ind" => Ok(Semantics::Independent),
            other => Err(ParseSemanticsError {
                input: other.to_owned(),
            }),
        }
    }
}

/// Per-phase runtime, following the categories of Figure 8:
/// * **eval** — rule evaluation and provenance storage,
/// * **process** — converting provenance into the Boolean formula
///   (Algorithm 1) or the graph + benefits (Algorithm 2),
/// * **solve** — the SAT search (Algorithm 1) or the greedy layer traversal
///   (Algorithm 2).
///
/// End and stage semantics spend everything in `eval`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseBreakdown {
    /// Evaluation + provenance storage.
    pub eval: Duration,
    /// Provenance processing ("Process Prov").
    pub process: Duration,
    /// SAT solving / graph traversal ("Solve" / "Traverse").
    pub solve: Duration,
}

impl PhaseBreakdown {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.eval + self.process + self.solve
    }

    /// Fractions `(eval, process, solve)` of the total (0 when total is 0).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.eval.as_secs_f64() / t,
            self.process.as_secs_f64() / t,
            self.solve.as_secs_f64() / t,
        )
    }
}

/// Outcome of running one semantics over one instance.
#[derive(Clone, Debug)]
pub struct RepairResult {
    /// Which semantics produced this result.
    pub semantics: Semantics,
    /// The stabilizing set `S` (sorted, deduplicated tuple ids).
    pub deleted: Vec<TupleId>,
    /// Phase timings.
    pub breakdown: PhaseBreakdown,
    /// For the heuristic algorithms: was the answer proven optimal? End and
    /// stage semantics are deterministic fixpoints, always `true`. Step's
    /// greedy traversal is a heuristic, so `false` unless verified by the
    /// exact search. Independent is `true` when the SAT search completed
    /// within budget.
    pub proven_optimal: bool,
}

impl RepairResult {
    /// |S| — the headline number of Figures 6 and 9.
    pub fn size(&self) -> usize {
        self.deleted.len()
    }

    /// Membership test (ids are sorted).
    pub fn contains(&self, t: TupleId) -> bool {
        self.deleted.binary_search(&t).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::RelId;

    #[test]
    fn breakdown_totals_and_fractions() {
        let b = PhaseBreakdown {
            eval: Duration::from_millis(60),
            process: Duration::from_millis(30),
            solve: Duration::from_millis(10),
        };
        assert_eq!(b.total(), Duration::from_millis(100));
        let (e, p, s) = b.fractions();
        assert!((e - 0.6).abs() < 1e-9);
        assert!((p - 0.3).abs() < 1e-9);
        assert!((s - 0.1).abs() < 1e-9);
        let zero = PhaseBreakdown::default();
        assert_eq!(zero.fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn result_contains_uses_sorted_ids() {
        let t = |r: u16, w: u32| TupleId::new(RelId(r), w);
        let r = RepairResult {
            semantics: Semantics::End,
            deleted: vec![t(0, 1), t(0, 3), t(1, 0)],
            breakdown: PhaseBreakdown::default(),
            proven_optimal: true,
        };
        assert!(r.contains(t(0, 3)));
        assert!(!r.contains(t(0, 2)));
        assert_eq!(r.size(), 3);
    }

    #[test]
    fn semantics_names() {
        assert_eq!(Semantics::Independent.to_string(), "independent");
        assert_eq!(Semantics::ALL.len(), 4);
    }

    #[test]
    fn semantics_from_str_round_trips() {
        for sem in Semantics::ALL {
            assert_eq!(sem.to_string().parse::<Semantics>(), Ok(sem));
        }
        assert_eq!("ind".parse::<Semantics>(), Ok(Semantics::Independent));
        let err = "vibes".parse::<Semantics>().unwrap_err();
        assert!(err.to_string().contains("vibes"));
    }
}

//! [`RepairSession`] — the service-grade entry point of the repair system.
//!
//! A session **owns** the [`Instance`] and the prepared [`Evaluator`]: no
//! `&mut db` at construction followed by `&db` at every run, no way for a
//! caller to mutate data behind the evaluator's indexes. Mutations flow
//! through [`RepairSession::insert_batch`] / [`RepairSession::delete_batch`]
//! (incremental index and statistics maintenance; join plans are re-derived
//! only when the statistics drift far from their plan-time snapshot),
//! repairs are described
//! by a [`RepairRequest`] and come back as a [`RepairOutcome`] that can
//! [`RepairOutcome::preview`] its effect, [`RepairOutcome::apply`] itself to
//! the session, and be rolled back with [`RepairSession::undo`].
//!
//! ```
//! use repair_core::{RepairRequest, RepairSession, Semantics};
//! use repair_core::testkit;
//!
//! let mut session =
//!     RepairSession::new(testkit::figure1_instance(), testkit::figure2_program())?;
//!
//! let outcome = session.repair(&RepairRequest::new(Semantics::Independent))?;
//! assert_eq!(outcome.size(), 3);
//!
//! outcome.apply(&mut session)?;          // commit: tuples leave the database
//! assert!(session.is_stable());
//! session.undo()?;                       // roll the repair back
//! assert!(!session.is_stable());
//! # Ok::<(), repair_core::RepairError>(())
//! ```
//!
//! Long-lived sessions are **incremental**: every durable mutation lands in
//! the storage journal, and the next end-semantics `repair()` replays only
//! the affected cone against a cached fixpoint checkpoint instead of
//! re-deriving the world — same bits, small-delta cost. The mutate →
//! re-repair → apply loop is the intended service shape:
//!
//! ```
//! use repair_core::{RepairSession, Semantics};
//! use repair_core::testkit;
//! use storage::Value;
//!
//! let mut session =
//!     RepairSession::new(testkit::figure1_instance(), testkit::figure2_program())?;
//! let first = session.run(Semantics::End);       // primes the checkpoint
//!
//! // Ingest a batch; the next repair advances incrementally.
//! session.insert_batch("Grant", [[Value::Int(9), Value::str("ERC")]])?;
//! let second = session.run(Semantics::End);
//! assert!(second.served_incrementally());
//! assert_eq!(second.size(), first.size() + 1);   // the new seed fires once
//!
//! second.apply(&mut session)?;                   // commit the re-repair
//! assert!(session.is_stable());
//! # Ok::<(), repair_core::RepairError>(())
//! ```

use crate::engine::{DeltaPolicy, EngineState, FixpointDriver};
use crate::error::RepairError;
use crate::result::{PhaseBreakdown, RepairResult, Semantics};
use crate::{end, independent, stability, stage, step};
use datalog::{Assignment, EquivalenceCertificate, Evaluator, PlannedProgram, Program};
use sat::MinOnesOptions;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use storage::{
    DiskOptions, DiskStore, HistoryEntry, Instance, MutationKind, RecoveryReport, SessionMeta,
    StorageError, TupleId, Value, WalRecord,
};

/// Parameters of one repair computation, assembled builder-style.
///
/// ```
/// use repair_core::{RepairRequest, Semantics};
/// use std::time::Duration;
///
/// let req = RepairRequest::new(Semantics::Independent)
///     .node_budget(50_000)
///     .time_budget(Duration::from_secs(2))
///     .capture_provenance(true);
/// assert_eq!(req.semantics_value(), Semantics::Independent);
/// ```
#[derive(Clone, Debug)]
pub struct RepairRequest {
    semantics: Semantics,
    node_budget: u64,
    time_budget: Option<Duration>,
    capture_provenance: bool,
    decompose: bool,
    first_solution_only: bool,
    incremental: bool,
    certificates: bool,
    threads: Option<usize>,
}

impl RepairRequest {
    /// A request for `semantics` with the default budgets:
    /// [`RepairSession::DEFAULT_NODE_BUDGET`] decision nodes, no time
    /// budget, no provenance capture.
    pub fn new(semantics: Semantics) -> RepairRequest {
        RepairRequest {
            semantics,
            node_budget: RepairSession::DEFAULT_NODE_BUDGET,
            time_budget: None,
            capture_provenance: false,
            decompose: true,
            first_solution_only: false,
            incremental: true,
            certificates: true,
            threads: None,
        }
    }

    /// Change the requested semantics.
    pub fn semantics(mut self, semantics: Semantics) -> RepairRequest {
        self.semantics = semantics;
        self
    }

    /// Decision-node budget for the Min-Ones search (independent
    /// semantics). Must be positive; `u64::MAX` means "search to proven
    /// optimality".
    pub fn node_budget(mut self, nodes: u64) -> RepairRequest {
        self.node_budget = nodes;
        self
    }

    /// Wall-clock budget. Checked between the phases of Algorithm 1: when
    /// evaluation and provenance processing already exhausted it, the solve
    /// phase degrades to a fast first-solution descent (still stabilizing,
    /// marked [`OptimalityCertificate::TimeBudgetExhausted`]). The PTIME
    /// semantics ignore it. Must be non-zero.
    pub fn time_budget(mut self, budget: Duration) -> RepairRequest {
        self.time_budget = Some(budget);
        self
    }

    /// Also capture the end-semantics provenance (assignment stream +
    /// derivation layers) in the outcome, enabling
    /// [`RepairOutcome::provenance`]-based explanations without re-running
    /// evaluation.
    pub fn capture_provenance(mut self, capture: bool) -> RepairRequest {
        self.capture_provenance = capture;
        self
    }

    /// Disable connected-component decomposition in the Min-Ones search
    /// (ablation knob; on by default).
    pub fn decompose(mut self, decompose: bool) -> RepairRequest {
        self.decompose = decompose;
        self
    }

    /// Stop the Min-Ones search at its first solution — a fast stabilizing
    /// approximation instead of the exact minimum (ablation knob).
    pub fn first_solution_only(mut self, first_only: bool) -> RepairRequest {
        self.first_solution_only = first_only;
        self
    }

    /// Allow the session to serve this request from its incrementally
    /// maintained fixpoint checkpoint (on by default). The answer is
    /// bit-identical to a full recompute either way — this is the escape
    /// hatch for benchmarking the full path and for distrustful callers.
    /// See [`RepairSession::repair`] for when the engine silently falls
    /// back to a full recompute anyway.
    pub fn incremental(mut self, incremental: bool) -> RepairRequest {
        self.incremental = incremental;
        self
    }

    /// Allow the session to serve this request through its static
    /// semantics-equivalence certificate (on by default): when
    /// `datalog::lint::certify` proves the requested semantics produces the
    /// same delete-set as the end-semantics fixpoint for this program, the
    /// cheap fixpoint serves the request and the outcome is marked
    /// [`RepairOutcome::served_via_certificate`]. The delete-set is
    /// bit-identical either way — `certificates(false)` is the escape hatch
    /// for differential testing and distrustful callers.
    pub fn certificates(mut self, certificates: bool) -> RepairRequest {
        self.certificates = certificates;
        self
    }

    /// Is certificate-driven dispatch allowed?
    pub fn certificates_value(&self) -> bool {
        self.certificates
    }

    /// Worker threads for this request's evaluation rounds and Min-Ones
    /// component solving (morsel-driven parallelism, `parallel` feature).
    /// Overrides the process-wide `DELTA_REPAIRS_THREADS` default; `1`
    /// forces serial execution. Results are bit-identical at every thread
    /// count. Must be positive — `threads(0)` is rejected as
    /// [`RepairError::InvalidRequest`]. In serial builds the knob is
    /// accepted, validated and otherwise ignored.
    pub fn threads(mut self, threads: usize) -> RepairRequest {
        self.threads = Some(threads);
        self
    }

    /// The requested worker-thread override, if any.
    pub fn threads_value(&self) -> Option<usize> {
        self.threads
    }

    /// Is incremental serving allowed?
    pub fn incremental_value(&self) -> bool {
        self.incremental
    }

    /// The requested semantics.
    pub fn semantics_value(&self) -> Semantics {
        self.semantics
    }

    fn validate(&self) -> Result<(), RepairError> {
        if self.node_budget == 0 {
            return Err(RepairError::InvalidRequest(
                "node_budget must be positive (use u64::MAX for an exact search)".into(),
            ));
        }
        if self.time_budget == Some(Duration::ZERO) {
            return Err(RepairError::InvalidRequest(
                "time_budget must be non-zero (omit it to search without a deadline)".into(),
            ));
        }
        if self.threads == Some(0) {
            return Err(RepairError::InvalidRequest(
                "threads must be positive (omit it to use the process default)".into(),
            ));
        }
        Ok(())
    }

    /// The worker count this request resolves to: the explicit override, or
    /// the process default in parallel builds, or 1 in serial builds (where
    /// evaluation has no parallel path to hand work to).
    fn effective_threads(&self) -> usize {
        #[cfg(feature = "parallel")]
        {
            self.threads.unwrap_or_else(datalog::eval_threads)
        }
        #[cfg(not(feature = "parallel"))]
        {
            1
        }
    }

    fn minones(&self) -> MinOnesOptions {
        MinOnesOptions {
            decompose: self.decompose,
            node_budget: self.node_budget,
            first_solution_only: self.first_solution_only,
            threads: self.effective_threads(),
        }
    }
}

impl Default for RepairRequest {
    /// Defaults to independent semantics — the paper's headline repair.
    fn default() -> RepairRequest {
        RepairRequest::new(Semantics::Independent)
    }
}

/// Why (or why not) an outcome's delete-set is known to be minimum for its
/// semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptimalityCertificate {
    /// End/stage semantics: a deterministic fixpoint with a unique result.
    DeterministicFixpoint,
    /// The database was already stable; the empty repair is trivially
    /// minimum.
    AlreadyStable,
    /// Independent semantics: the Min-Ones search completed within budget.
    SearchComplete,
    /// Step semantics: the provenance graph is interaction-free (a forest
    /// of pure cascades), so every firing sequence deletes the same set.
    InteractionFree,
    /// A heuristic answer with no certificate — stabilizing, possibly
    /// minimum, not proven so.
    Heuristic,
    /// The decision-node budget ran out before the search completed; the
    /// incumbent was returned.
    NodeBudgetExhausted,
    /// The wall-clock budget ran out before the solve phase; the fast
    /// first-solution descent was returned.
    TimeBudgetExhausted,
    /// The request was served by the end-semantics fixpoint under a static
    /// semantics-equivalence certificate (`datalog::lint::certify`): the
    /// program's syntax proves the requested semantics' delete-set equals
    /// the end delete-set, which is unique — hence minimum.
    StaticEquivalence,
}

/// Optimality verdict plus the solver statistics behind it.
#[derive(Clone, Copy, Debug)]
pub struct Optimality {
    /// Is the delete-set provably minimum for its semantics?
    pub proven: bool,
    /// The reason for the verdict.
    pub certificate: OptimalityCertificate,
    /// Decision nodes spent by the Min-Ones search (independent only).
    pub sat_decisions: u64,
    /// Connected components solved (independent only).
    pub sat_components: usize,
    /// CNF clauses after deduplication (independent only).
    pub cnf_clauses: usize,
}

impl Optimality {
    fn exact(certificate: OptimalityCertificate) -> Optimality {
        Optimality {
            proven: true,
            certificate,
            sat_decisions: 0,
            sat_components: 0,
            cnf_clauses: 0,
        }
    }
}

/// End-semantics provenance captured into an outcome
/// ([`RepairRequest::capture_provenance`]).
#[derive(Clone, Debug)]
pub struct RepairProvenance {
    /// Every assignment enumerated during end-semantics evaluation, in
    /// derivation order.
    pub assignments: Vec<Assignment>,
    /// 1-based derivation round of each delta tuple.
    pub layers: HashMap<TupleId, u32>,
}

impl RepairProvenance {
    /// The derivation tree explaining why `tuple` is deleted under end
    /// semantics, or `None` if it never is.
    pub fn explain(&self, tuple: TupleId) -> Option<provenance::DerivationTree> {
        provenance::Explainer::new(&self.assignments, &self.layers).explain(tuple)
    }

    /// Graphviz DOT rendering of the provenance graph (the paper's
    /// Figure 5).
    pub fn to_dot(&self, db: &Instance) -> String {
        provenance::to_dot(db, &self.assignments, &self.layers)
    }
}

/// The answer to one [`RepairRequest`]: the delete-set with its phase
/// breakdown and optimality verdict, ready to be previewed against or
/// applied to the session that produced it.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    result: RepairResult,
    optimality: Optimality,
    provenance: Option<RepairProvenance>,
    epoch: u64,
    incremental: bool,
    via_certificate: bool,
}

impl RepairOutcome {
    /// Which semantics produced this outcome.
    pub fn semantics(&self) -> Semantics {
        self.result.semantics
    }

    /// The stabilizing set `S` (sorted, deduplicated tuple ids).
    pub fn deleted(&self) -> &[TupleId] {
        &self.result.deleted
    }

    /// |S| — the headline number of Figures 6 and 9.
    pub fn size(&self) -> usize {
        self.result.size()
    }

    /// Membership test (ids are sorted).
    pub fn contains(&self, t: TupleId) -> bool {
        self.result.contains(t)
    }

    /// Phase timings (Figure 8's Eval / Process Prov / Solve categories).
    pub fn breakdown(&self) -> &PhaseBreakdown {
        &self.result.breakdown
    }

    /// Is the delete-set provably minimum? Shorthand for
    /// `self.optimality().proven`.
    pub fn proven_optimal(&self) -> bool {
        self.optimality.proven
    }

    /// The optimality verdict with its certificate and solver statistics.
    pub fn optimality(&self) -> &Optimality {
        &self.optimality
    }

    /// Captured end-semantics provenance, when the request asked for it.
    pub fn provenance(&self) -> Option<&RepairProvenance> {
        self.provenance.as_ref()
    }

    /// View as the plain [`RepairResult`] consumed by
    /// [`crate::relationships`] and reports.
    pub fn as_result(&self) -> &RepairResult {
        &self.result
    }

    /// Extract the plain [`RepairResult`].
    pub fn into_result(self) -> RepairResult {
        self.result
    }

    /// Session revision this outcome was computed at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Was this outcome served by the incrementally maintained checkpoint
    /// (delta-driven advance or an up-to-date cache) rather than a full
    /// fixpoint recompute? Diagnostics only — the delete-set is identical
    /// either way.
    pub fn served_incrementally(&self) -> bool {
        self.incremental
    }

    /// Was this outcome served by the end-semantics evaluator under a
    /// static semantics-equivalence certificate
    /// ([`RepairRequest::certificates`])? Diagnostics only — the delete-set
    /// is identical to direct evaluation of the requested semantics.
    pub fn served_via_certificate(&self) -> bool {
        self.via_certificate
    }

    /// What applying this outcome would do, without doing it: per-relation
    /// deletion counts and rendered tuples, diffed against the session's
    /// current database. Only tuples still live in the session are counted
    /// — previewing against a mutated session shows the real remaining
    /// effect (though `apply` itself will still insist on a fresh outcome).
    pub fn preview(&self, session: &RepairSession) -> RepairPreview {
        let db = session.db();
        let mut per_relation: Vec<(String, usize)> = Vec::new();
        let mut tuples: Vec<String> = Vec::with_capacity(self.result.deleted.len());
        for &t in &self.result.deleted {
            if !db.is_live(t) {
                continue;
            }
            let name = db.schema().rel(t.rel).name.clone();
            match per_relation.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => per_relation.push((name, 1)),
            }
            tuples.push(db.display_tuple(t));
        }
        RepairPreview {
            semantics: self.result.semantics,
            deleted: tuples.len(),
            kept: db.total_rows().saturating_sub(tuples.len()),
            per_relation,
            tuples,
        }
    }

    /// Commit this repair: durably delete its tuples from `session`'s
    /// database (incremental index maintenance, ids stay stable) and push
    /// an undo record. Fails with [`RepairError::StaleOutcome`] when the
    /// session's database changed after this outcome was computed. Returns
    /// the number of tuples removed.
    pub fn apply(&self, session: &mut RepairSession) -> Result<usize, RepairError> {
        session.apply(self)
    }
}

/// The human-readable diff produced by [`RepairOutcome::preview`].
#[derive(Clone, Debug)]
pub struct RepairPreview {
    /// Which semantics produced the repair.
    pub semantics: Semantics,
    /// Tuples the repair would delete.
    pub deleted: usize,
    /// Live tuples that would remain.
    pub kept: usize,
    /// Deletions per relation, in first-deletion order.
    pub per_relation: Vec<(String, usize)>,
    /// Every deleted tuple rendered as `Rel(v, …)`, in id order.
    pub tuples: Vec<String>,
}

impl fmt::Display for RepairPreview {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} repair: -{} tuples, {} remain",
            self.semantics, self.deleted, self.kept
        )?;
        for (rel, n) in &self.per_relation {
            writeln!(f, "  {rel}: -{n}")?;
        }
        for t in &self.tuples {
            writeln!(f, "    - {t}")?;
        }
        Ok(())
    }
}

/// One committed repair, kept on the session's undo stack.
#[derive(Clone, Debug)]
pub struct AppliedRepair {
    /// Which semantics produced the repair.
    pub semantics: Semantics,
    /// The tuple ids that were durably removed.
    pub deleted: Vec<TupleId>,
}

/// A long-lived repair service over one database: owns the [`Instance`] and
/// the prepared [`Evaluator`], serves any number of repair requests,
/// absorbs batch mutations without re-planning, and can commit and roll
/// back repairs. See the [module docs](self) for a tour.
pub struct RepairSession {
    db: Instance,
    ev: Evaluator,
    epoch: u64,
    history: Vec<AppliedRepair>,
    /// Static semantics-equivalence certificate for the program, computed
    /// once at construction (`datalog::lint::certify`); drives
    /// [`RepairSession::repair`]'s cheaper-semantics dispatch.
    certificate: EquivalenceCertificate,
    /// Incrementally maintained end-fixpoint checkpoint, keyed by the
    /// journal cursor it is synchronized at. `Mutex` (not `RefCell`) so the
    /// session stays `Sync`; `repair` takes `&self`.
    end_cache: Mutex<Option<EndCache>>,
    /// The on-disk store backing this session, when opened durably.
    durable: Option<DurableState>,
    /// Times the session re-derived its cost-based plans after statistics
    /// drifted past [`RepairSession::REPLAN_DRIFT_THRESHOLD`].
    replans: u64,
}

/// The durable backing of a session: the disk store, the journal cursor up
/// to which mutations have been written to the WAL, and the report of what
/// the opening recovery did.
struct DurableState {
    store: DiskStore,
    wal_cursor: u64,
    report: RecoveryReport,
}

/// The batch-closing WAL mark each mutator persists.
enum BatchMark {
    Commit,
    Apply {
        semantics: Semantics,
        deleted: Vec<TupleId>,
    },
    Undo,
}

/// Stable on-disk code of a [`Semantics`] (WAL `Apply` marks and snapshot
/// history entries).
fn semantics_code(s: Semantics) -> u8 {
    match s {
        Semantics::Independent => 0,
        Semantics::Step => 1,
        Semantics::Stage => 2,
        Semantics::End => 3,
    }
}

fn semantics_from_code(code: u8) -> Option<Semantics> {
    Some(match code {
        0 => Semantics::Independent,
        1 => Semantics::Step,
        2 => Semantics::Stage,
        3 => Semantics::End,
        _ => return None,
    })
}

/// The session's cached end-semantics checkpoint plus the journal cursor it
/// is synchronized at.
struct EndCache {
    cursor: u64,
    engine: EngineState,
}

impl fmt::Debug for RepairSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RepairSession")
            .field("tuples", &self.db.total_rows())
            .field("rules", &self.ev.num_rules())
            .field("epoch", &self.epoch)
            .field("applied", &self.history.len())
            .field("durable", &self.durable.is_some())
            .finish_non_exhaustive()
    }
}

impl RepairSession {
    /// Default per-component decision budget for the Min-Ones search used
    /// by independent semantics. The paper's observation that exact solvers
    /// are "not polynomial \[but\] efficient in practice" holds here too:
    /// every workload of Tables 1 and 2 except the widest DC-style joins
    /// proves optimality well within this budget, and on the pathological
    /// instances the greedy-first incumbent (reached within the first few
    /// thousand nodes) is returned with
    /// [`OptimalityCertificate::NodeBudgetExhausted`] instead of searching
    /// forever. Request `node_budget(u64::MAX)` for a provably exact
    /// answer.
    pub const DEFAULT_NODE_BUDGET: u64 = 200_000;

    /// Default tombstone ratio above which [`RepairSession::compact_if_bloated`]
    /// rebuilds a relation's hash tables.
    pub const COMPACT_THRESHOLD: f64 = 0.5;

    /// Per-relation live-cardinality drift ratio (plan time vs. now,
    /// add-one smoothed) at which a mutating session considers its
    /// cost-based join orders stale and re-derives them from the current
    /// statistics. `2.0` = any relation halved or doubled.
    pub const REPLAN_DRIFT_THRESHOLD: f64 = 2.0;

    /// Validate `program` against `db`'s schema, plan its joins, build the
    /// probe indexes, and take ownership of the database.
    pub fn new(mut db: Instance, program: Program) -> Result<RepairSession, RepairError> {
        let planned = PlannedProgram::plan(db.schema(), program)
            .map_err(|e| RepairError::datalog("planning the delta program", e))?;
        let ev = planned.into_evaluator(&mut db);
        let certificate = datalog::lint::certify(ev.program());
        Ok(RepairSession {
            db,
            ev,
            epoch: 0,
            history: Vec::new(),
            certificate,
            end_cache: Mutex::new(None),
            durable: None,
            replans: 0,
        })
    }

    /// [`RepairSession::new`], plus a fresh durable store in `dir`: the
    /// database is snapshotted as generation 0 and every later mutation is
    /// written ahead to a checksummed log, so a crash at any point loses at
    /// most the unacknowledged tail. Refuses a directory that already holds
    /// a store — [`RepairSession::open_durable`] is for those.
    pub fn create_durable(
        db: Instance,
        program: Program,
        dir: impl AsRef<Path>,
    ) -> Result<RepairSession, RepairError> {
        Self::create_durable_with(db, program, dir, DiskOptions::default())
    }

    /// [`RepairSession::create_durable`] with explicit [`DiskOptions`]
    /// (fsync policy, auto-checkpoint interval, injectable IO).
    pub fn create_durable_with(
        db: Instance,
        program: Program,
        dir: impl AsRef<Path>,
        opts: DiskOptions,
    ) -> Result<RepairSession, RepairError> {
        let mut session = Self::new(db, program)?;
        let meta = session.durable_meta();
        let store = DiskStore::create(dir.as_ref(), opts, &session.db, &meta)
            .map_err(|e| RepairError::storage("create durable store", e))?;
        session.durable = Some(DurableState {
            store,
            wal_cursor: session.db.journal().head(),
            report: RecoveryReport::default(),
        });
        Ok(session)
    }

    /// Reopen a durable store: load the newest valid snapshot, replay the
    /// WAL chain up to the last acknowledged batch, truncate any torn
    /// tail, and serve `program` over the recovered database. The session
    /// resumes with the persisted epoch and undo history;
    /// [`RepairSession::recovery_report`] tells what recovery did.
    ///
    /// Corruption that the fallback ladder cannot route around surfaces as
    /// [`StorageError::Corrupt`] (inside [`RepairError::Storage`]) — never
    /// a panic.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        program: Program,
    ) -> Result<RepairSession, RepairError> {
        Self::open_durable_with(dir, program, DiskOptions::default())
    }

    /// [`RepairSession::open_durable`] with explicit [`DiskOptions`].
    pub fn open_durable_with(
        dir: impl AsRef<Path>,
        program: Program,
        opts: DiskOptions,
    ) -> Result<RepairSession, RepairError> {
        let dir = dir.as_ref();
        let (store, db, meta, report) = DiskStore::open(dir, opts)
            .map_err(|e| RepairError::storage("open durable store", e))?;
        let mut history = Vec::with_capacity(meta.history.len());
        for entry in &meta.history {
            let semantics = semantics_from_code(entry.semantics).ok_or_else(|| {
                RepairError::storage(
                    "open durable store",
                    StorageError::Corrupt {
                        path: dir.display().to_string(),
                        detail: format!("unknown semantics code {}", entry.semantics),
                    },
                )
            })?;
            history.push(AppliedRepair {
                semantics,
                deleted: entry.deleted.clone(),
            });
        }
        let mut session = Self::new(db, program)?;
        session.epoch = meta.epoch;
        session.history = history;
        session.durable = Some(DurableState {
            wal_cursor: session.db.journal().head(),
            store,
            report,
        });
        Ok(session)
    }

    /// Is this session backed by a durable store?
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// What recovery did when this session was opened with
    /// [`RepairSession::open_durable`]; `None` for in-memory sessions (and
    /// empty-by-construction for freshly created stores).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durable.as_ref().map(|d| &d.report)
    }

    /// Force a checkpoint: snapshot the full database (temp file + atomic
    /// rename), start a fresh WAL generation, and drop obsolete files.
    /// Returns the new generation. Also the recovery path after a WAL
    /// write failure wedged the store. Fails with
    /// [`RepairError::InvalidRequest`] on in-memory sessions.
    pub fn checkpoint(&mut self) -> Result<u64, RepairError> {
        let meta = self.durable_meta();
        let head = self.db.journal().head();
        let Some(durable) = self.durable.as_mut() else {
            return Err(RepairError::InvalidRequest(
                "checkpoint requires a durable session (open_durable / create_durable)".into(),
            ));
        };
        let gen = durable
            .store
            .checkpoint(&self.db, &meta)
            .map_err(|e| RepairError::storage("checkpoint", e))?;
        durable.wal_cursor = head;
        Ok(gen)
    }

    /// The session metadata a snapshot persists: epoch + undo history.
    fn durable_meta(&self) -> SessionMeta {
        SessionMeta {
            epoch: self.epoch,
            history: self
                .history
                .iter()
                .map(|h| HistoryEntry {
                    semantics: semantics_code(h.semantics),
                    deleted: h.deleted.clone(),
                })
                .collect(),
        }
    }

    /// Write everything the journal recorded since the WAL cursor, plus
    /// the batch's closing mark, to the durable store. No-op for in-memory
    /// sessions. Called by every mutator *before* [`Self::trim_journal`]
    /// (trimming drops exactly the entries this still needs). When the
    /// journal window no longer covers the cursor (capacity overflow), the
    /// WAL cannot express the delta and a full checkpoint is taken instead.
    ///
    /// On an append failure the store wedges (the in-memory instance is
    /// already past what the WAL holds): the mutation stays applied in
    /// memory, the error is returned, and every later persist fails until
    /// [`RepairSession::checkpoint`] re-establishes a full on-disk image.
    fn persist(&mut self, mark: BatchMark) -> Result<(), RepairError> {
        if self.durable.is_none() {
            return Ok(());
        }
        // Mutators persist after mutating, so the history already reflects
        // the batch this mark closes.
        let meta = self.durable_meta();
        let head = self.db.journal().head();
        let durable = self.durable.as_mut().expect("checked above");
        let mark = match mark {
            BatchMark::Commit => WalRecord::Commit { epoch: self.epoch },
            BatchMark::Apply { semantics, deleted } => WalRecord::Apply {
                epoch: self.epoch,
                semantics: semantics_code(semantics),
                deleted,
            },
            BatchMark::Undo => WalRecord::Undo { epoch: self.epoch },
        };
        match self.db.journal().entries_since(durable.wal_cursor) {
            Some(entries) => {
                let db = &self.db;
                let mut records: Vec<WalRecord> = entries
                    .map(|e| match e.kind {
                        MutationKind::Insert => WalRecord::Insert {
                            rel: e.tid.rel,
                            values: db.tuple(e.tid).values().to_vec(),
                        },
                        MutationKind::Delete => WalRecord::Delete { tid: e.tid },
                        MutationKind::Restore => WalRecord::Restore { tid: e.tid },
                    })
                    .collect();
                records.push(mark);
                durable
                    .store
                    .append(&records)
                    .map_err(|e| RepairError::storage("wal append", e))?;
                durable.wal_cursor = head;
                if durable.store.wants_auto_checkpoint() {
                    durable
                        .store
                        .checkpoint(&self.db, &meta)
                        .map_err(|e| RepairError::storage("auto checkpoint", e))?;
                }
            }
            None => {
                // The journal evicted entries past our cursor; only a full
                // image can re-synchronize the store.
                durable
                    .store
                    .checkpoint(&self.db, &meta)
                    .map_err(|e| RepairError::storage("checkpoint (journal overflow)", e))?;
                durable.wal_cursor = head;
            }
        }
        Ok(())
    }

    /// The owned database.
    pub fn db(&self) -> &Instance {
        &self.db
    }

    /// The prepared evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.ev
    }

    /// The delta program being served.
    pub fn program(&self) -> &Program {
        self.ev.program()
    }

    /// Revision counter: bumped by every durable mutation
    /// (`insert_batch`, `delete_batch`, `apply`, `undo`). Outcomes remember
    /// the revision they were computed at so stale applies are rejected.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Repairs committed and not yet undone, oldest first.
    pub fn history(&self) -> &[AppliedRepair] {
        &self.history
    }

    /// Give the database back, consuming the session.
    pub fn into_db(self) -> Instance {
        self.db
    }

    /// Insert a batch of tuples into `relation`. Indexes and statistics
    /// are maintained incrementally; plans are re-derived only when the
    /// batch drifts the cardinalities past
    /// [`RepairSession::REPLAN_DRIFT_THRESHOLD`]. Returns the id of every
    /// row (existing ids for duplicates — relations are sets).
    ///
    /// A mid-batch schema error stops the batch, but rows inserted before
    /// it stay inserted — the epoch is bumped either way, so outcomes
    /// computed before a failed batch are still recognized as stale.
    pub fn insert_batch<V: Into<Value>, T: IntoIterator<Item = V>>(
        &mut self,
        relation: &str,
        rows: impl IntoIterator<Item = T>,
    ) -> Result<Vec<TupleId>, RepairError> {
        let mut ids = Vec::new();
        for row in rows {
            match self.db.insert_values(relation, row) {
                Ok(tid) => ids.push(tid),
                Err(e) => {
                    if !ids.is_empty() {
                        self.epoch += 1;
                        // Best-effort: the rows before the failure stay
                        // inserted, so they must reach the WAL too. The
                        // schema error outranks a persist error here.
                        let _ = self.persist(BatchMark::Commit);
                    }
                    self.trim_journal();
                    return Err(RepairError::storage(format!("insert into {relation}"), e));
                }
            }
        }
        self.epoch += 1;
        self.persist(BatchMark::Commit)?;
        self.trim_journal();
        self.replan_if_drifted();
        debug_assert!(
            self.db.indexes_consistent(),
            "insert_batch left an index inconsistent with the live rows"
        );
        Ok(ids)
    }

    /// Durably delete a batch of tuples by id (tombstoning — ids stay
    /// stable, indexes update incrementally). Already-deleted ids are
    /// skipped. The batch is atomic: an unknown id rejects it whole and
    /// leaves the database (and epoch) untouched. Returns the number
    /// removed. Ad-hoc deletion does not touch the undo stack; use
    /// [`RepairOutcome::apply`] for undoable commits.
    pub fn delete_batch(&mut self, ids: &[TupleId]) -> Result<usize, RepairError> {
        let removed = self
            .db
            .delete_tuples(ids.iter().copied())
            .map_err(|e| RepairError::storage("delete batch", e))?;
        self.epoch += 1;
        self.persist(BatchMark::Commit)?;
        self.trim_journal();
        self.replan_if_drifted();
        Ok(removed)
    }

    /// Revive a batch of tombstoned tuples under their original ids (the
    /// mirror of [`RepairSession::delete_batch`] for callers managing their
    /// own churn — bulk loads, replays, benches). Ids that are live again
    /// or whose value was re-inserted elsewhere are skipped; unknown ids
    /// reject the batch atomically. Returns the number revived.
    pub fn restore_batch(&mut self, ids: &[TupleId]) -> Result<usize, RepairError> {
        let restored = self
            .db
            .restore_tuples(ids.iter().copied())
            .map_err(|e| RepairError::storage("restore batch", e))?;
        self.epoch += 1;
        self.persist(BatchMark::Commit)?;
        self.trim_journal();
        self.replan_if_drifted();
        Ok(restored)
    }

    /// Times this session re-derived its cost-based plans because the
    /// journaled mutations drifted the relation cardinalities past
    /// [`RepairSession::REPLAN_DRIFT_THRESHOLD`].
    pub fn replan_count(&self) -> u64 {
        self.replans
    }

    /// Re-derive the evaluator's cost-based join orders when the live
    /// cardinalities have drifted past the threshold since plan time.
    /// Called by every mutator; cheap when nothing drifted (one live-count
    /// comparison per relation). The incremental end-fixpoint checkpoint
    /// survives a replan: it records the *set* of valid assignments and
    /// delta tuples, and every plan order enumerates the same set — only
    /// enumeration order (which the checkpoint does not depend on)
    /// changes. Delete-sets are bit-identical under any plan order.
    fn replan_if_drifted(&mut self) {
        if self.ev.strategy() != datalog::PlanStrategy::CostBased
            || self.ev.plan_drift(&self.db) < Self::REPLAN_DRIFT_THRESHOLD
        {
            return;
        }
        let program = self.ev.program().clone();
        let planned = PlannedProgram::plan(self.db.schema(), program)
            .expect("program validated at session construction");
        self.ev = planned.into_evaluator(&mut self.db);
        self.replans += 1;
    }

    /// Drop journal history no consumer will ever drain again. The session
    /// is the sole owner of the instance, so its incremental checkpoint is
    /// the only journal consumer: everything before that checkpoint's
    /// cursor (or everything, when no checkpoint exists) is garbage.
    fn trim_journal(&mut self) {
        let keep_from = self
            .end_cache_guard()
            .as_ref()
            .map_or_else(|| self.db.journal().head(), |cache| cache.cursor);
        self.db.truncate_journal_before(keep_from);
    }

    /// Lock the end-semantics checkpoint, surviving poison: a panic while a
    /// previous holder was mid-update may have left a half-advanced engine
    /// state behind, so the cache is dropped and the next end repair falls
    /// back to a full recompute (which re-primes it). The session never
    /// propagates the poison.
    fn end_cache_guard(&self) -> MutexGuard<'_, Option<EndCache>> {
        self.end_cache.lock().unwrap_or_else(|poisoned| {
            self.end_cache.clear_poison();
            let mut guard = poisoned.into_inner();
            *guard = None;
            guard
        })
    }

    /// The fraction of ever-inserted rows that are tombstones, across the
    /// whole owned instance — the signal for [`RepairSession::compact`].
    pub fn dead_ratio(&self) -> f64 {
        self.db.dead_ratio()
    }

    /// Compact every relation whose tombstone ratio is at least
    /// `threshold`: dedup maps and composite-index hash tables are rebuilt
    /// from the live rows, releasing the bloat long mutation histories
    /// leave behind. Tuple ids, index ids, probe results, the undo stack,
    /// the epoch and the incremental checkpoint are all unaffected —
    /// compaction is invisible to everything but the allocator. Returns the
    /// number of relations compacted.
    pub fn compact(&mut self, threshold: f64) -> usize {
        self.db.compact(threshold)
    }

    /// [`RepairSession::compact`] at the default threshold
    /// ([`RepairSession::COMPACT_THRESHOLD`]); call it periodically from
    /// long-lived mutating sessions.
    pub fn compact_if_bloated(&mut self) -> usize {
        self.compact(Self::COMPACT_THRESHOLD)
    }

    /// Serve one repair request.
    ///
    /// End-semantics requests are served **incrementally** when possible:
    /// the session checkpoints the delta fixpoint (derived delta relations
    /// plus the full assignment hypergraph) after each end computation and,
    /// on the next request, drains the instance's mutation journal and
    /// replays only the affected cone — DRed-style over-delete/re-derive
    /// for deletions, change-seeded semi-naive rounds for insertions. The
    /// delete-set is bit-identical to a full recompute. The engine silently
    /// falls back to a full fixpoint run when: the request asks for another
    /// semantics, [`RepairRequest::capture_provenance`] is on (derivation
    /// *order* and layers are not maintained incrementally), the request
    /// disabled it via [`RepairRequest::incremental`], no checkpoint exists
    /// yet, or the journal window no longer covers the checkpoint's cursor.
    pub fn repair(&self, request: &RepairRequest) -> Result<RepairOutcome, RepairError> {
        request.validate()?;
        // Certificate-driven dispatch: when the program's syntax proves the
        // requested semantics' delete-set equals the end delete-set (see
        // `datalog::lint::certify`), the cheap end fixpoint — including its
        // incrementally maintained checkpoint — serves the request, and the
        // outcome is relabeled to the semantics the caller asked for.
        let via_certificate = request.certificates
            && request.semantics != Semantics::End
            && self.certificate_serves(request.semantics);
        let effective = if via_certificate {
            Semantics::End
        } else {
            request.semantics
        };
        if effective == Semantics::End && request.incremental && !request.capture_provenance {
            let mut outcome = self.serve_end(request);
            if via_certificate {
                relabel_certified(&mut outcome, request.semantics);
            }
            return Ok(outcome);
        }
        let deadline = request.time_budget.map(|b| Instant::now() + b);
        let minones = request.minones();
        let (result, optimality, provenance) = run_semantics(
            &self.db,
            &self.ev,
            &minones,
            deadline,
            effective,
            request.capture_provenance,
            request.threads,
        );
        // End and step semantics already materialized the end-run stream
        // inside the dispatch; only the other two pay for a dedicated
        // provenance evaluation.
        let provenance = provenance.or_else(|| {
            request.capture_provenance.then(|| {
                let out = end::run_threads(&self.db, &self.ev, request.threads);
                RepairProvenance {
                    assignments: out.assignments,
                    layers: out.layers,
                }
            })
        });
        let mut outcome = RepairOutcome {
            result,
            optimality,
            provenance,
            epoch: self.epoch,
            incremental: false,
            via_certificate: false,
        };
        if via_certificate {
            relabel_certified(&mut outcome, request.semantics);
        }
        Ok(outcome)
    }

    /// Does the session's static certificate prove `semantics` produces the
    /// end delete-set for this program?
    fn certificate_serves(&self, semantics: Semantics) -> bool {
        let c = &self.certificate;
        match semantics {
            Semantics::End => false,
            Semantics::Stage => c.single_stratum || c.interaction_free,
            Semantics::Step => c.interaction_free,
            Semantics::Independent => c.pure_cascade,
        }
    }

    /// The program's static semantics-equivalence certificate.
    pub fn certificate(&self) -> &EquivalenceCertificate {
        &self.certificate
    }

    /// Serve an end-semantics request through the incremental checkpoint,
    /// (re)priming it with a full run when cold or out of sync.
    fn serve_end(&self, request: &RepairRequest) -> RepairOutcome {
        let t0 = Instant::now();
        let driver = FixpointDriver::new(&self.ev, DeltaPolicy::AtEnd { naive: false })
            .threads(request.threads);
        let mut guard = self.end_cache_guard();
        // No checkpoint, or the journal window no longer reaches back to
        // its cursor: the batch is unknowable and we rebuild from scratch.
        let batch = guard
            .as_ref()
            .and_then(|cache| self.db.changes_since(cache.cursor));
        let (deleted, incremental) = match batch {
            Some(batch) => {
                let cache = guard.as_mut().expect("batch implies a checkpoint");
                if !batch.is_empty() {
                    driver.advance(&self.db, &mut cache.engine, &batch);
                }
                cache.cursor = self.db.journal().head();
                (cache.engine.deleted(), true)
            }
            None => {
                let out = driver.run(&self.db);
                let deleted = out.deleted.clone();
                *guard = Some(EndCache {
                    cursor: self.db.journal().head(),
                    engine: EngineState::from_outcome(out),
                });
                (deleted, false)
            }
        };
        drop(guard);
        let certificate = if deleted.is_empty() {
            OptimalityCertificate::AlreadyStable
        } else {
            OptimalityCertificate::DeterministicFixpoint
        };
        RepairOutcome {
            result: RepairResult {
                semantics: Semantics::End,
                deleted,
                breakdown: PhaseBreakdown {
                    eval: t0.elapsed(),
                    ..Default::default()
                },
                proven_optimal: true,
            },
            optimality: Optimality::exact(certificate),
            provenance: None,
            epoch: self.epoch,
            incremental,
            via_certificate: false,
        }
    }

    /// Run one semantics with the default request — the one-liner for
    /// callers that don't need budgets or provenance.
    pub fn run(&self, semantics: Semantics) -> RepairOutcome {
        self.repair(&RepairRequest::new(semantics))
            .expect("default request parameters are valid")
    }

    /// Run all four semantics in the paper's order
    /// (independent, step, stage, end).
    pub fn run_all(&self) -> [RepairOutcome; 4] {
        Semantics::ALL.map(|s| self.run(s))
    }

    /// Is the database currently stable?
    pub fn is_stable(&self) -> bool {
        stability::initially_stable(&self.db, &self.ev)
    }

    /// Does deleting `deleted` stabilize the database? Every
    /// [`RepairOutcome`] must pass this (Proposition 3.18).
    pub fn verify_stabilizing(&self, deleted: &[TupleId]) -> bool {
        stability::is_stabilizing(&self.db, &self.ev, deleted)
    }

    /// Why-provenance: the derivation tree explaining why `tuple` is
    /// deleted under end semantics, or `None` if it never is. For repeated
    /// queries, request an outcome with
    /// [`RepairRequest::capture_provenance`] and use
    /// [`RepairProvenance::explain`] instead of re-evaluating per call.
    pub fn explain(&self, tuple: TupleId) -> Option<provenance::DerivationTree> {
        let out = end::run(&self.db, &self.ev);
        provenance::Explainer::new(&out.assignments, &out.layers).explain(tuple)
    }

    /// Graphviz DOT rendering of the full end-semantics provenance graph
    /// (the paper's Figure 5).
    pub fn provenance_dot(&self) -> String {
        let out = end::run(&self.db, &self.ev);
        provenance::to_dot(&self.db, &out.assignments, &out.layers)
    }

    /// Commit `outcome` (see [`RepairOutcome::apply`]).
    pub fn apply(&mut self, outcome: &RepairOutcome) -> Result<usize, RepairError> {
        if outcome.epoch != self.epoch {
            return Err(RepairError::StaleOutcome {
                semantics: outcome.semantics(),
                outcome_epoch: outcome.epoch,
                session_epoch: self.epoch,
            });
        }
        let removed = self
            .db
            .delete_tuples(outcome.deleted().iter().copied())
            .map_err(|e| RepairError::storage("apply repair", e))?;
        self.history.push(AppliedRepair {
            semantics: outcome.semantics(),
            deleted: outcome.deleted().to_vec(),
        });
        self.epoch += 1;
        self.persist(BatchMark::Apply {
            semantics: outcome.semantics(),
            deleted: outcome.deleted().to_vec(),
        })?;
        self.trim_journal();
        self.replan_if_drifted();
        Ok(removed)
    }

    /// Roll back the most recently applied repair, restoring its tuples
    /// (ids, index postings and dedup entries) exactly. Returns the number
    /// of tuples revived.
    pub fn undo(&mut self) -> Result<usize, RepairError> {
        let entry = self.history.pop().ok_or(RepairError::NothingToUndo)?;
        let restored = self
            .db
            .restore_tuples(entry.deleted.iter().copied())
            .map_err(|e| RepairError::storage("undo repair", e))?;
        self.epoch += 1;
        self.persist(BatchMark::Undo)?;
        self.trim_journal();
        self.replan_if_drifted();
        Ok(restored)
    }
}

/// Relabel an end-semantics outcome as the semantics the caller requested,
/// under a static equivalence certificate. The delete-set is untouched —
/// the certificate proves it *is* the requested semantics' delete-set. An
/// empty repair keeps [`OptimalityCertificate::AlreadyStable`] (the more
/// precise verdict); everything else becomes
/// [`OptimalityCertificate::StaticEquivalence`].
fn relabel_certified(outcome: &mut RepairOutcome, requested: Semantics) {
    outcome.result.semantics = requested;
    outcome.result.proven_optimal = true;
    outcome.via_certificate = true;
    outcome.optimality.proven = true;
    if outcome.optimality.certificate != OptimalityCertificate::AlreadyStable {
        outcome.optimality.certificate = OptimalityCertificate::StaticEquivalence;
    }
}

/// Shared per-semantics dispatch: one code path serves [`RepairSession`]
/// and the deprecated [`crate::Repairer`] shim, so old and new API are
/// bit-identical by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_semantics(
    db: &Instance,
    ev: &Evaluator,
    minones: &MinOnesOptions,
    deadline: Option<Instant>,
    semantics: Semantics,
    capture: bool,
    threads: Option<usize>,
) -> (RepairResult, Optimality, Option<RepairProvenance>) {
    match semantics {
        Semantics::End => {
            let t0 = Instant::now();
            let out = end::run_threads(db, ev, threads);
            let certificate = if out.deleted.is_empty() {
                OptimalityCertificate::AlreadyStable
            } else {
                OptimalityCertificate::DeterministicFixpoint
            };
            let provenance = capture.then_some(RepairProvenance {
                assignments: out.assignments,
                layers: out.layers,
            });
            (
                RepairResult {
                    semantics,
                    deleted: out.deleted,
                    breakdown: PhaseBreakdown {
                        eval: t0.elapsed(),
                        ..Default::default()
                    },
                    proven_optimal: true,
                },
                Optimality::exact(certificate),
                provenance,
            )
        }
        Semantics::Stage => {
            let t0 = Instant::now();
            let out = stage::run_threads(db, ev, threads);
            let certificate = if out.deleted.is_empty() {
                OptimalityCertificate::AlreadyStable
            } else {
                OptimalityCertificate::DeterministicFixpoint
            };
            (
                RepairResult {
                    semantics,
                    deleted: out.deleted,
                    breakdown: PhaseBreakdown {
                        eval: t0.elapsed(),
                        ..Default::default()
                    },
                    proven_optimal: true,
                },
                Optimality::exact(certificate),
                None,
            )
        }
        Semantics::Step => {
            let out = step::run_greedy_threads(db, ev, threads);
            let certificate = if out.deleted.is_empty() {
                OptimalityCertificate::AlreadyStable
            } else if out.optimal {
                OptimalityCertificate::InteractionFree
            } else {
                OptimalityCertificate::Heuristic
            };
            // Algorithm 2 consumed the end-run stream to build its graph;
            // capture reuses it instead of evaluating again.
            let provenance = capture.then_some(RepairProvenance {
                assignments: out.assignments,
                layers: out.layers,
            });
            (
                RepairResult {
                    semantics,
                    deleted: out.deleted,
                    breakdown: out.breakdown,
                    proven_optimal: out.optimal,
                },
                Optimality {
                    proven: out.optimal,
                    certificate,
                    sat_decisions: 0,
                    sat_components: 0,
                    cnf_clauses: 0,
                },
                provenance,
            )
        }
        Semantics::Independent => {
            let out = independent::run_with_deadline(db, ev, minones, deadline);
            let certificate = if out.timed_out {
                OptimalityCertificate::TimeBudgetExhausted
            } else if !out.optimal {
                OptimalityCertificate::NodeBudgetExhausted
            } else if out.deleted.is_empty() {
                OptimalityCertificate::AlreadyStable
            } else {
                OptimalityCertificate::SearchComplete
            };
            (
                RepairResult {
                    semantics,
                    deleted: out.deleted,
                    breakdown: out.breakdown,
                    proven_optimal: out.optimal,
                },
                Optimality {
                    proven: out.optimal,
                    certificate,
                    sat_decisions: out.sat_stats.decisions,
                    sat_components: out.sat_stats.components,
                    cnf_clauses: out.cnf_clauses,
                },
                None,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationships;
    use crate::testkit::{figure1_instance, figure2_program, names_of, tid_of};

    fn session() -> RepairSession {
        RepairSession::new(figure1_instance(), figure2_program()).unwrap()
    }

    #[test]
    fn example_1_3_all_four_semantics() {
        let s = session();
        let end = s.run(Semantics::End);
        let stage = s.run(Semantics::Stage);
        let step = s.run(Semantics::Step);
        let ind = s.run(Semantics::Independent);
        assert_eq!(end.size(), 8);
        assert_eq!(stage.size(), 7);
        assert_eq!(step.size(), 5);
        assert_eq!(
            names_of(s.db(), ind.deleted()),
            vec!["AuthGrant(4, 2)", "AuthGrant(5, 2)", "Grant(2, ERC)"]
        );
        for res in [&end, &stage, &step, &ind] {
            assert!(
                s.verify_stabilizing(res.deleted()),
                "{} must stabilize",
                res.semantics()
            );
        }
        assert!(relationships::check_figure3_invariants(
            ind.as_result(),
            step.as_result(),
            stage.as_result(),
            end.as_result()
        )
        .is_none());
    }

    #[test]
    fn run_all_returns_paper_order() {
        let s = session();
        let all = s.run_all();
        assert_eq!(all[0].semantics(), Semantics::Independent);
        assert_eq!(all[3].semantics(), Semantics::End);
    }

    #[test]
    fn invalid_programs_surface_as_repair_errors() {
        let err = RepairSession::new(
            figure1_instance(),
            datalog::parse_program("delta Nope(x) :- Nope(x).").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, RepairError::Datalog { .. }));
        assert!(err.to_string().contains("planning the delta program"));
    }

    #[test]
    fn request_validation_rejects_misuse() {
        let s = session();
        let err = s
            .repair(&RepairRequest::new(Semantics::Independent).node_budget(0))
            .unwrap_err();
        assert!(matches!(err, RepairError::InvalidRequest(_)));
        let err = s
            .repair(&RepairRequest::new(Semantics::Independent).time_budget(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, RepairError::InvalidRequest(_)));
        let err = s
            .repair(&RepairRequest::new(Semantics::End).threads(0))
            .unwrap_err();
        assert!(matches!(err, RepairError::InvalidRequest(_)));
    }

    #[test]
    fn explicit_thread_counts_change_no_bits() {
        // The knob must be inert result-wise in every build: serial builds
        // ignore it, parallel builds must merge morsels deterministically.
        let s = session();
        for sem in Semantics::ALL {
            let reference = s
                .repair(&RepairRequest::new(sem).incremental(false).threads(1))
                .unwrap();
            for threads in [2usize, 4, 8] {
                let at = s
                    .repair(&RepairRequest::new(sem).incremental(false).threads(threads))
                    .unwrap();
                assert_eq!(reference.deleted(), at.deleted(), "{sem} at {threads}");
            }
            assert_eq!(
                RepairRequest::new(sem).threads(3).threads_value(),
                Some(3),
                "builder exposes the override"
            );
        }
    }

    #[test]
    fn apply_then_undo_round_trips_database() {
        let mut s = session();
        let before = s.db().clone();
        let outcome = s.run(Semantics::Independent);
        assert_eq!(outcome.apply(&mut s).unwrap(), 3);
        assert_eq!(s.db().total_rows(), 10);
        assert!(s.is_stable(), "committed repair stabilizes the database");
        assert_eq!(s.history().len(), 1);
        assert_eq!(s.undo().unwrap(), 3);
        assert_eq!(s.db(), &before, "undo restores the instance exactly");
        assert!(!s.is_stable());
        assert!(matches!(s.undo(), Err(RepairError::NothingToUndo)));
    }

    #[test]
    fn stale_outcomes_are_rejected() {
        let mut s = session();
        let outcome = s.run(Semantics::End);
        s.insert_batch("Grant", [[Value::Int(9), Value::str("DFG")]])
            .unwrap();
        let err = outcome.apply(&mut s).unwrap_err();
        assert!(matches!(err, RepairError::StaleOutcome { .. }));
        // A fresh outcome applies.
        let fresh = s.run(Semantics::End);
        assert!(fresh.apply(&mut s).is_ok());
    }

    #[test]
    fn mutations_feed_evaluation_without_replanning() {
        let mut s = session();
        assert_eq!(s.run(Semantics::End).size(), 8);
        // A second ERC grant cascades to nothing (no AuthGrant rows), but
        // the seed rule now fires twice: one more deletion.
        s.insert_batch("Grant", [[Value::Int(9), Value::str("ERC")]])
            .unwrap();
        assert_eq!(s.run(Semantics::End).size(), 9);
        // Deleting the ERC grants durably leaves a stable database.
        let g2 = tid_of(s.db(), "Grant(2, ERC)");
        let g9 = tid_of(s.db(), "Grant(9, ERC)");
        assert_eq!(s.delete_batch(&[g2, g9]).unwrap(), 2);
        assert!(s.is_stable());
        assert_eq!(s.run(Semantics::End).size(), 0);
    }

    #[test]
    fn preview_diffs_without_mutating() {
        let s = session();
        let outcome = s.run(Semantics::Step);
        let preview = outcome.preview(&s);
        assert_eq!(preview.deleted, 5);
        assert_eq!(preview.kept, 8);
        let text = preview.to_string();
        assert!(text.contains("step repair: -5 tuples, 8 remain"));
        assert!(text.contains("Writes: -2"));
        assert!(text.contains("- Grant(2, ERC)"));
        assert_eq!(s.db().total_rows(), 13, "preview is read-only");
    }

    #[test]
    fn optimality_certificates_match_semantics() {
        let s = session();
        assert_eq!(
            s.run(Semantics::End).optimality().certificate,
            OptimalityCertificate::DeterministicFixpoint
        );
        assert_eq!(
            s.run(Semantics::Step).optimality().certificate,
            OptimalityCertificate::Heuristic
        );
        let ind = s.run(Semantics::Independent);
        assert_eq!(
            ind.optimality().certificate,
            OptimalityCertificate::SearchComplete
        );
        assert!(ind.optimality().cnf_clauses > 0);
        // Starved node budget: incumbent returned, certificate says so.
        let starved = s
            .repair(&RepairRequest::new(Semantics::Independent).node_budget(1))
            .unwrap();
        assert!(!starved.proven_optimal());
        assert_eq!(
            starved.optimality().certificate,
            OptimalityCertificate::NodeBudgetExhausted
        );
        assert!(s.verify_stabilizing(starved.deleted()));
    }

    #[test]
    fn captured_provenance_explains_deletions() {
        let s = session();
        let outcome = s
            .repair(&RepairRequest::new(Semantics::End).capture_provenance(true))
            .unwrap();
        let prov = outcome.provenance().expect("capture requested");
        let cite = tid_of(s.db(), "Cite(7, 6)");
        let tree = prov.explain(cite).expect("derivable tuple");
        assert!(tree.depth() >= 2);
        assert!(prov.to_dot(s.db()).contains("digraph"));
        // Survivors have no derivation; default requests skip capture.
        let maggie = tid_of(s.db(), "Author(2, Maggie)");
        assert!(prov.explain(maggie).is_none());
        assert!(s.run(Semantics::End).provenance().is_none());
    }

    #[test]
    fn end_repairs_are_served_incrementally_after_priming() {
        let mut s = session();
        let cold = s.run(Semantics::End);
        assert!(!cold.served_incrementally(), "first run primes the cache");
        let warm = s.run(Semantics::End);
        assert!(warm.served_incrementally(), "no change: cache hit");
        assert_eq!(warm.deleted(), cold.deleted());

        // Mutations advance the checkpoint instead of invalidating it.
        s.insert_batch("Grant", [[Value::Int(9), Value::str("ERC")]])
            .unwrap();
        let after_insert = s.run(Semantics::End);
        assert!(after_insert.served_incrementally());
        assert_eq!(after_insert.size(), 9);
        let g9 = tid_of(s.db(), "Grant(9, ERC)");
        s.delete_batch(&[g9]).unwrap();
        let after_delete = s.run(Semantics::End);
        assert!(after_delete.served_incrementally());
        assert_eq!(after_delete.deleted(), cold.deleted());

        // Every incremental answer must equal a fresh session's full run.
        let fresh = RepairSession::new(s.db().clone(), s.program().clone())
            .unwrap()
            .run(Semantics::End);
        assert_eq!(after_delete.deleted(), fresh.deleted());
    }

    #[test]
    fn incremental_escape_hatch_and_fallbacks() {
        let mut s = session();
        s.run(Semantics::End);
        // The escape hatch forces a full recompute, same bits.
        let full = s
            .repair(&RepairRequest::new(Semantics::End).incremental(false))
            .unwrap();
        assert!(!full.served_incrementally());
        // Provenance capture needs derivation order: silent fallback.
        let prov = s
            .repair(&RepairRequest::new(Semantics::End).capture_provenance(true))
            .unwrap();
        assert!(!prov.served_incrementally());
        assert!(prov.provenance().is_some());
        // Other semantics never claim incremental serving.
        assert!(!s.run(Semantics::Stage).served_incrementally());
        // And mixing them around mutations keeps End exact.
        s.insert_batch("AuthGrant", [[Value::Int(2), Value::Int(2)]])
            .unwrap();
        let inc = s.run(Semantics::End);
        assert!(inc.served_incrementally());
        assert_eq!(
            inc.deleted(),
            s.repair(&RepairRequest::new(Semantics::End).incremental(false))
                .unwrap()
                .deleted()
        );
    }

    #[test]
    fn apply_undo_cycles_flow_through_the_checkpoint() {
        let mut s = session();
        let outcome = s.run(Semantics::End);
        outcome.apply(&mut s).unwrap();
        let stable = s.run(Semantics::End);
        assert!(stable.served_incrementally(), "apply journaled its deletes");
        assert_eq!(stable.size(), 0);
        s.undo().unwrap();
        let back = s.run(Semantics::End);
        assert!(back.served_incrementally(), "undo journaled its restores");
        assert_eq!(back.deleted(), outcome.deleted());
    }

    #[test]
    fn compaction_is_invisible_to_repairs_and_checkpoint() {
        let mut s = session();
        let before = s.run(Semantics::End);
        // Delete enough to cross the threshold, compact, and re-repair.
        let doomed: Vec<TupleId> = before.deleted().to_vec();
        s.delete_batch(&doomed).unwrap();
        assert!(s.dead_ratio() > 0.0);
        s.compact(0.1);
        assert!(s.db().indexes_consistent());
        let after = s.run(Semantics::End);
        assert!(after.served_incrementally(), "compaction preserved cache");
        assert_eq!(after.size(), 0, "deleting the end set stabilizes");
        // Round-trip through undo-less restore: reinsert equal tuples.
        assert_eq!(s.compact(0.0), 6, "every relation compacts at 0.0");
    }

    #[test]
    fn journal_is_trimmed_to_the_checkpoint() {
        let mut s = session();
        s.insert_batch("Grant", [[Value::Int(7), Value::str("NIH")]])
            .unwrap();
        // No checkpoint yet: mutators trim everything.
        assert_eq!(s.db().journal().len(), 0);
        s.run(Semantics::End);
        s.insert_batch("Grant", [[Value::Int(8), Value::str("NIH")]])
            .unwrap();
        assert_eq!(s.db().journal().len(), 1, "retained for the checkpoint");
        s.run(Semantics::End);
        s.insert_batch("Grant", [[Value::Int(9), Value::str("NIH")]])
            .unwrap();
        assert_eq!(s.db().journal().len(), 1, "old window trimmed");
    }

    mod durability {
        use super::*;
        use std::path::Path;
        use std::sync::Arc;
        use storage::{FsyncPolicy, MemIo, StorageIo};

        fn mem() -> (Arc<MemIo>, DiskOptions) {
            let io = Arc::new(MemIo::new());
            let opts = DiskOptions::with_io(io.clone() as Arc<dyn StorageIo>);
            (io, opts)
        }

        fn durable_session(opts: DiskOptions) -> RepairSession {
            RepairSession::create_durable_with(
                figure1_instance(),
                figure2_program(),
                Path::new("/store"),
                opts,
            )
            .unwrap()
        }

        fn reopen(opts: DiskOptions) -> RepairSession {
            RepairSession::open_durable_with(Path::new("/store"), figure2_program(), opts).unwrap()
        }

        #[test]
        fn mutations_survive_reopen_bit_identically() {
            let (_io, opts) = mem();
            let mut s = durable_session(opts.clone());
            s.insert_batch("Grant", [[Value::Int(9), Value::str("ERC")]])
                .unwrap();
            let g2 = tid_of(s.db(), "Grant(2, ERC)");
            s.delete_batch(&[g2]).unwrap();
            s.restore_batch(&[g2]).unwrap();

            let r = reopen(opts);
            assert!(r.is_durable());
            assert_eq!(r.db(), s.db(), "tuple ids and liveness round-trip");
            assert_eq!(r.epoch(), s.epoch());
            assert!(r.db().indexes_consistent());
            assert!(!r.recovery_report().unwrap().degraded());
            assert_eq!(
                r.run(Semantics::End).deleted(),
                s.run(Semantics::End).deleted()
            );
        }

        #[test]
        fn apply_and_undo_history_survives_reopen() {
            let (_io, opts) = mem();
            let mut s = durable_session(opts.clone());
            let outcome = s.run(Semantics::Independent);
            outcome.apply(&mut s).unwrap();

            let mut r = reopen(opts.clone());
            assert_eq!(r.history().len(), 1);
            assert_eq!(r.history()[0].semantics, Semantics::Independent);
            assert_eq!(r.history()[0].deleted, outcome.deleted());
            assert_eq!(r.db(), s.db());
            // The persisted undo stack is live: roll the repair back, and
            // the undo itself is durable too.
            assert_eq!(r.undo().unwrap(), 3);
            let mut r2 = reopen(opts);
            assert!(r2.history().is_empty());
            assert_eq!(r2.db(), r.db());
            assert!(matches!(r2.undo(), Err(RepairError::NothingToUndo)));
        }

        #[test]
        fn explicit_and_auto_checkpoints_roll_generations() {
            let (_io, mut opts) = mem();
            opts.checkpoint_every = 2;
            let mut s = durable_session(opts.clone());
            assert_eq!(s.checkpoint().unwrap(), 1);
            // Each insert batch persists two records (insert + commit), so
            // every batch crosses the threshold and auto-checkpoints.
            s.insert_batch("Grant", [[Value::Int(9), Value::str("X")]])
                .unwrap();
            s.insert_batch("Grant", [[Value::Int(10), Value::str("Y")]])
                .unwrap();
            assert_eq!(s.durable.as_ref().unwrap().store.generation(), 3);
            let r = reopen(opts);
            assert_eq!(r.db(), s.db());
            assert_eq!(r.recovery_report().unwrap().snapshot_gen, Some(3));
        }

        #[test]
        fn journal_overflow_falls_back_to_a_full_checkpoint() {
            let (_io, opts) = mem();
            let mut s = durable_session(opts.clone());
            // Shrink the journal so it cannot hold a batch: the delta
            // between the WAL cursor and the head becomes unknowable and
            // persist must degrade to a full checkpoint, not lose writes.
            s.db.set_journal_capacity(0);
            let gen_before = s.durable.as_ref().unwrap().store.generation();
            s.insert_batch(
                "Grant",
                [
                    [Value::Int(9), Value::str("X")],
                    [Value::Int(10), Value::str("Y")],
                ],
            )
            .unwrap();
            assert!(s.durable.as_ref().unwrap().store.generation() > gen_before);
            let r = reopen(opts);
            assert_eq!(r.db(), s.db());
            assert_eq!(r.epoch(), s.epoch());
        }

        #[test]
        fn fsync_policies_accept_the_same_traffic() {
            for fsync in [
                FsyncPolicy::Always,
                FsyncPolicy::EveryN(3),
                FsyncPolicy::OnCheckpoint,
            ] {
                let (_io, mut opts) = mem();
                opts.fsync = fsync;
                let mut s = durable_session(opts.clone());
                for i in 0..5 {
                    s.insert_batch("Grant", [[Value::Int(100 + i), Value::str("Z")]])
                        .unwrap();
                }
                s.checkpoint().unwrap();
                let r = reopen(opts);
                assert_eq!(r.db(), s.db(), "{fsync:?}");
            }
        }

        #[test]
        fn in_memory_sessions_reject_checkpoint() {
            let mut s = session();
            assert!(matches!(
                s.checkpoint(),
                Err(RepairError::InvalidRequest(_))
            ));
            assert!(!s.is_durable());
            assert!(s.recovery_report().is_none());
        }

        #[test]
        fn create_refuses_an_existing_store() {
            let (_io, opts) = mem();
            durable_session(opts.clone());
            let err = RepairSession::create_durable_with(
                figure1_instance(),
                figure2_program(),
                Path::new("/store"),
                opts,
            )
            .unwrap_err();
            assert!(err.to_string().contains("open it instead"), "{err}");
        }

        #[test]
        fn corrupt_store_surfaces_as_typed_error_not_panic() {
            let (io, opts) = mem();
            let mut s = durable_session(opts.clone());
            s.insert_batch("Grant", [[Value::Int(9), Value::str("ERC")]])
                .unwrap();
            drop(s);
            // Flip a byte in the only snapshot AND cut the WAL header so
            // no rung of the ladder can serve the open.
            let mut snap = io.contents(Path::new("/store/snap-0.drs")).unwrap();
            snap[12] ^= 0xff;
            io.corrupt(Path::new("/store/snap-0.drs"), snap);
            let wal = io.contents(Path::new("/store/wal-0.drw")).unwrap();
            io.corrupt(Path::new("/store/wal-0.drw"), wal[..4].to_vec());
            let err =
                RepairSession::open_durable_with(Path::new("/store"), figure2_program(), opts)
                    .unwrap_err();
            assert!(
                matches!(
                    err,
                    RepairError::Storage {
                        source: StorageError::Corrupt { .. },
                        ..
                    }
                ),
                "{err}"
            );
        }
    }

    #[test]
    fn poisoned_end_cache_recovers_by_full_recompute() {
        let s = session();
        let cold = s.run(Semantics::End);
        assert!(s.run(Semantics::End).served_incrementally());
        // Poison the checkpoint lock: a holder panicked mid-update.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = s.end_cache.lock().unwrap();
            panic!("simulated panic while holding the end-cache lock");
        }));
        assert!(s.end_cache.is_poisoned());
        // The next repair must neither panic nor trust the torn cache: it
        // clears the poison, recomputes from scratch, and re-primes.
        let after = s.run(Semantics::End);
        assert!(!after.served_incrementally(), "torn cache was dropped");
        assert_eq!(after.deleted(), cold.deleted());
        assert!(!s.end_cache.is_poisoned());
        assert!(s.run(Semantics::End).served_incrementally(), "re-primed");
        // Mutators (which lock the cache to trim the journal) survive a
        // poisoned lock too.
        let mut s = s;
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = s.end_cache.lock().unwrap();
            panic!("poison again");
        }));
        s.insert_batch("Grant", [[Value::Int(9), Value::str("ERC")]])
            .unwrap();
        assert_eq!(s.run(Semantics::End).size(), cold.size() + 1);
    }

    #[test]
    fn undo_stack_is_lifo_across_semantics() {
        let mut s = session();
        let ind = s.run(Semantics::Independent);
        ind.apply(&mut s).unwrap();
        // Database now stable: an end repair on top deletes nothing.
        let end = s.run(Semantics::End);
        assert_eq!(end.size(), 0);
        end.apply(&mut s).unwrap();
        assert_eq!(s.history().len(), 2);
        assert_eq!(s.undo().unwrap(), 0, "empty repair undoes to nothing");
        assert_eq!(s.undo().unwrap(), 3);
        assert_eq!(s.db().total_rows(), 13);
    }
}

//! Stable databases and stabilizing sets (Definitions 3.12 and 3.14).
//!
//! Stability is the degenerate fixpoint: one [`crate::engine::DeltaPolicy::Never`]
//! round over the live view, stopping at the first satisfying assignment
//! (the instability witness).

use crate::engine::{DeltaPolicy, FixpointDriver};
use datalog::{Assignment, Evaluator};
use storage::{Instance, State, TupleId};

/// Build the state `(D \ S) ∪ Δ(S)` from a deletion set.
pub fn state_from_deleted(db: &Instance, deleted: &[TupleId]) -> State {
    let mut state = db.initial_state();
    for &t in deleted {
        state.delete(t);
    }
    state
}

/// Is `state` stable w.r.t. the program (Def. 3.12)? Returns the witness
/// assignment when it is not.
pub fn violation_in(db: &Instance, ev: &Evaluator, state: State) -> Option<Assignment> {
    FixpointDriver::new(ev, DeltaPolicy::Never)
        .run_from(db, state)
        .violation
}

/// Is `deleted` a stabilizing set for `db` under `ev`'s program
/// (Def. 3.14)?
pub fn is_stabilizing(db: &Instance, ev: &Evaluator, deleted: &[TupleId]) -> bool {
    violation_in(db, ev, state_from_deleted(db, deleted)).is_none()
}

/// Is the original database already stable (Def. 3.12)?
pub fn initially_stable(db: &Instance, ev: &Evaluator) -> bool {
    violation_in(db, ev, db.initial_state()).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure1_instance, figure2_program, tid_of};
    use datalog::Evaluator;

    #[test]
    fn whole_database_is_always_stabilizing() {
        // Proposition 3.18: D itself is a stabilizing set.
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let all: Vec<_> = db.all_tuple_ids().collect();
        assert!(is_stabilizing(&db, &ev, &all));
    }

    #[test]
    fn example_1_2_stabilizing_sets() {
        // {a2, a3, w1, w2, p1, p2, c}, {a2, a3, w1, w2, p1, p2},
        // {a2, a3, w1, w2} and {ag2, ag3} are all stabilizing once g2 is
        // included (rule (0) forces g2 into every stabilizing set).
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let t = |n: &str| tid_of(&db, n);
        let with_g2 = |mut v: Vec<TupleId>| {
            v.push(t("Grant(2, ERC)"));
            v
        };
        let sets: Vec<Vec<TupleId>> = vec![
            with_g2(vec![
                t("Author(4, Marge)"),
                t("Author(5, Homer)"),
                t("Writes(4, 6)"),
                t("Writes(5, 7)"),
                t("Pub(6, x)"),
                t("Pub(7, y)"),
                t("Cite(7, 6)"),
            ]),
            with_g2(vec![
                t("Author(4, Marge)"),
                t("Author(5, Homer)"),
                t("Writes(4, 6)"),
                t("Writes(5, 7)"),
                t("Pub(6, x)"),
                t("Pub(7, y)"),
            ]),
            with_g2(vec![
                t("Author(4, Marge)"),
                t("Author(5, Homer)"),
                t("Writes(4, 6)"),
                t("Writes(5, 7)"),
            ]),
            with_g2(vec![t("AuthGrant(4, 2)"), t("AuthGrant(5, 2)")]),
        ];
        for s in &sets {
            assert!(is_stabilizing(&db, &ev, s), "{s:?} should stabilize");
        }
    }

    #[test]
    fn partial_sets_are_not_stabilizing() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let t = |n: &str| tid_of(&db, n);
        assert!(!is_stabilizing(&db, &ev, &[]));
        assert!(!is_stabilizing(&db, &ev, &[t("Grant(2, ERC)")]));
        assert!(!is_stabilizing(
            &db,
            &ev,
            &[t("Grant(2, ERC)"), t("AuthGrant(4, 2)")]
        ));
    }

    #[test]
    fn figure1_is_initially_unstable() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        assert!(!initially_stable(&db, &ev));
    }
}

//! Stage semantics (Definition 3.7).
//!
//! At each stage, *all* satisfying assignments against the previous stage's
//! database are used to derive delta tuples, and only then are the
//! corresponding base tuples removed — like the semi-naive algorithm, but
//! with deletions applied between rounds. Rule order does not matter, the
//! fixpoint is unique (Proposition 3.9).

use crate::engine::{DeltaPolicy, FixpointDriver};
use datalog::Evaluator;
use storage::{Instance, State, TupleId};

/// Outcome of stage semantics.
#[derive(Debug)]
pub struct StageOutcome {
    /// Final stable state.
    pub state: State,
    /// `Stage(P, D)`, sorted.
    pub deleted: Vec<TupleId>,
    /// Number of stages until the fixpoint (a stage that derives nothing
    /// terminates and is not counted).
    pub stages: u32,
}

/// Run stage semantics: the engine's [`DeltaPolicy::PerStage`] fixpoint —
/// derive a whole round against `D^{t-1}`, then delete in one batch.
pub fn run(db: &Instance, ev: &Evaluator) -> StageOutcome {
    run_threads(db, ev, None)
}

/// [`run`] with an explicit worker-thread override for the parallel build
/// (`None` = process default; results are bit-identical at every count).
pub fn run_threads(db: &Instance, ev: &Evaluator, threads: Option<usize>) -> StageOutcome {
    let out = FixpointDriver::new(ev, DeltaPolicy::PerStage)
        .threads(threads)
        .run(db);
    StageOutcome {
        state: out.state,
        deleted: out.deleted,
        stages: out.productive_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure1_instance, figure2_program, names_of, tiny_instance};
    use datalog::{parse_program, Evaluator};

    #[test]
    fn example_3_8_stage_result() {
        // Stage(P, D) = {g2, a2, a3, w1, w2, p1, p2} — no Cite tuple: by the
        // time Δ(Pub) exists, the Writes tuples are already deleted, so rule
        // (4) never fires.
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let out = run(&db, &ev);
        assert_eq!(
            names_of(&db, &out.deleted),
            vec![
                "Author(4, Marge)",
                "Author(5, Homer)",
                "Grant(2, ERC)",
                "Pub(6, x)",
                "Pub(7, y)",
                "Writes(4, 6)",
                "Writes(5, 7)",
            ]
        );
        assert_eq!(out.stages, 3, "Example 3.8 runs in three stages");
        assert!(ev.is_stable(&db, &out.state));
    }

    #[test]
    fn prop_3_20_item_2_stage_strictly_smaller_than_end() {
        // D = {R1(a), R2(a), R3(b1..bn)} with the chain program from the
        // proof of Proposition 3.20(2): stage stops before rule (3) fires.
        let mut db = tiny_instance(&[7], &[7], &[1, 2, 3, 4]);
        let program = parse_program(
            "delta R1(x) :- R1(x).
             delta R2(x) :- R2(x), delta R1(x).
             delta R3(y) :- R3(y), R1(x), delta R2(x).",
        )
        .unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let stage_out = run(&db, &ev);
        assert_eq!(stage_out.deleted.len(), 2, "only R1(7), R2(7)");
        let end_out = crate::end::run(&db, &ev);
        assert_eq!(end_out.deleted.len(), 6, "end also deletes all of R3");
        assert!(stage_out
            .deleted
            .iter()
            .all(|t| end_out.deleted.contains(t)));
    }

    #[test]
    fn stage_deletes_both_heads_of_shared_bodies() {
        // Two rules with the same body fire in the same stage (proof of
        // Prop. 3.20(4) part 1): everything is deleted.
        let mut db = tiny_instance(&[1], &[10, 20, 30], &[]);
        let program = parse_program(
            "delta R1(x) :- R1(x), R2(y).
             delta R2(y) :- R1(x), R2(y).",
        )
        .unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let out = run(&db, &ev);
        assert_eq!(out.deleted.len(), 4, "stage = the whole database");
        assert_eq!(out.stages, 1);
    }

    #[test]
    fn stable_database_needs_no_stages() {
        let mut db = tiny_instance(&[1], &[], &[]);
        let program = parse_program("delta R1(x) :- R1(x), R2(y).").unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let out = run(&db, &ev);
        assert!(out.deleted.is_empty());
        assert_eq!(out.stages, 0);
    }
}

//! Step semantics (Definition 3.5) — Algorithm 2 plus an exact reference.
//!
//! Step semantics fires one rule assignment at a time and updates the
//! database immediately; its result is the minimum deleted set over all
//! firing sequences, which is NP-hard to compute (Proposition 4.2). The
//! paper's **Algorithm 2** is a greedy heuristic over the end-semantics
//! provenance graph: walk the layers in order and repeatedly select the
//! tuple with the largest *benefit* whose delta node is still derivable,
//! pruning everything whose derivations the selection voided.
//!
//! [`optimal`] is an exponential exact search over firing sequences used by
//! tests and the greedy-vs-exact ablation bench to measure how close the
//! heuristic gets.

use crate::end;
use crate::result::PhaseBreakdown;
use datalog::{Evaluator, Mode};
use provenance::ProvGraph;
use std::collections::HashSet;
use std::time::Instant;
use storage::{Instance, State, TupleId};

/// Outcome of the greedy Algorithm 2.
#[derive(Debug)]
pub struct StepOutcome {
    /// Final state after deleting the selected set.
    pub state: State,
    /// `Step(P, D)` as computed by the greedy heuristic, sorted.
    pub deleted: Vec<TupleId>,
    /// Eval (end semantics + provenance), Process Prov (graph build),
    /// Traverse (greedy loop) — Figure 8's categories for Algorithm 2.
    pub breakdown: PhaseBreakdown,
    /// Did the traversal *prove* its answer minimum? `true` when the
    /// database was already stable, or when the provenance graph is
    /// interaction-free ([`ProvGraph::is_interaction_free`]: a forest of
    /// pure cascades, where every firing sequence deletes the same set).
    /// `false` means heuristic — not necessarily suboptimal, just
    /// uncertified.
    pub optimal: bool,
    /// The end-semantics assignment stream Algorithm 2 consumed (moved
    /// out rather than recomputed, for callers that also want provenance).
    pub assignments: Vec<datalog::Assignment>,
    /// 1-based derivation round of each delta tuple.
    pub layers: std::collections::HashMap<TupleId, u32>,
}

/// Run Algorithm 2.
pub fn run_greedy(db: &Instance, ev: &Evaluator) -> StepOutcome {
    run_greedy_threads(db, ev, None)
}

/// [`run_greedy`] with an explicit worker-thread override for the parallel
/// build, applied to the end-semantics evaluation that produces the
/// provenance graph (`None` = process default; results are bit-identical
/// at every count).
pub fn run_greedy_threads(db: &Instance, ev: &Evaluator, threads: Option<usize>) -> StepOutcome {
    let t0 = Instant::now();
    let end_out = end::run_threads(db, ev, threads);
    let eval = t0.elapsed();

    let t1 = Instant::now();
    let mut graph = ProvGraph::build(&end_out.assignments, &end_out.layers);
    // The certificate reads the static edge lists; decide it before the
    // traversal mutates liveness. The program-level certificate
    // (`datalog::lint::certify`) implies the runtime one on every database
    // — OR it in so the verdict never depends on which databases happen to
    // materialize interactions.
    let interaction_free =
        graph.is_interaction_free() || datalog::lint::certify(ev.program()).interaction_free;
    let process = t1.elapsed();

    let t2 = Instant::now();
    let mut selected: Vec<TupleId> = Vec::new();
    for layer in 1..=graph.num_layers() {
        // Benefits never change during selection (they read the static
        // edge lists), so "repeatedly take the max-benefit live candidate"
        // equals one descending sort of the layer followed by a single
        // sweep that skips nodes pruned by earlier selections — identical
        // selection order at a fraction of the rescans.
        let mut candidates = graph.alive_unselected_in_layer(layer);
        candidates.sort_by_cached_key(|&t| (std::cmp::Reverse(graph.benefit(t)), t));
        for t in candidates {
            if graph.is_alive(t) {
                selected.push(t);
                graph.select(t);
            }
        }
    }
    let solve = t2.elapsed();

    selected.sort_unstable();
    let mut state = db.initial_state();
    for &t in &selected {
        state.delete(t);
    }
    let optimal = selected.is_empty() || interaction_free;
    StepOutcome {
        state,
        deleted: selected,
        breakdown: PhaseBreakdown {
            eval,
            process,
            solve,
        },
        optimal,
        assignments: end_out.assignments,
        layers: end_out.layers,
    }
}

/// Exact step semantics by exhaustive search over firing sequences.
///
/// Explores the space of reachable deletion sets (a state is fully
/// determined by its deleted set); prunes branches already at least as large
/// as the incumbent. Returns `None` when more than `max_states` distinct
/// states would be explored — use only on small instances.
pub fn optimal(db: &Instance, ev: &Evaluator, max_states: usize) -> Option<Vec<TupleId>> {
    let mut best: Option<Vec<TupleId>> = None;
    let mut visited: HashSet<Vec<TupleId>> = HashSet::new();
    let mut state = db.initial_state();
    let mut deleted: Vec<TupleId> = Vec::new();
    let exhausted = dfs(
        db,
        ev,
        &mut state,
        &mut deleted,
        &mut visited,
        &mut best,
        max_states,
    );
    if exhausted {
        best
    } else {
        None
    }
}

fn dfs(
    db: &Instance,
    ev: &Evaluator,
    state: &mut State,
    deleted: &mut Vec<TupleId>,
    visited: &mut HashSet<Vec<TupleId>>,
    best: &mut Option<Vec<TupleId>>,
    max_states: usize,
) -> bool {
    if visited.len() > max_states {
        return false;
    }
    if let Some(b) = best {
        if deleted.len() >= b.len() {
            return true; // can only get worse
        }
    }
    let mut key = deleted.clone();
    key.sort_unstable();
    if !visited.insert(key) {
        return true;
    }
    // All currently fireable heads.
    let mut heads: Vec<TupleId> = Vec::new();
    ev.for_each_assignment(db, state, Mode::Current, &mut |a| {
        if !heads.contains(&a.head) {
            heads.push(a.head);
        }
        true
    });
    if heads.is_empty() {
        let mut result = deleted.clone();
        result.sort_unstable();
        match best {
            Some(b) if b.len() <= result.len() => {}
            _ => *best = Some(result),
        }
        return true;
    }
    for h in heads {
        state.delete(h);
        deleted.push(h);
        let ok = dfs(db, ev, state, deleted, visited, best, max_states);
        deleted.pop();
        // Rebuild the state from the deletion list (State has no un-delete;
        // cloning up front would also work but this keeps allocation low).
        *state = db.initial_state();
        for &t in deleted.iter() {
            state.delete(t);
        }
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure1_instance, figure2_program, names_of, tiny_instance};
    use datalog::{parse_program, Evaluator};

    #[test]
    fn example_5_2_greedy_selection() {
        // Algorithm 2 on the running example returns
        // {g2, a2, a3, w1, w2}: the Writes tuples win the benefit
        // tie-break against the Pub tuples, and Δ(p1), Δ(p2), Δ(c) are
        // pruned.
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let out = run_greedy(&db, &ev);
        assert_eq!(
            names_of(&db, &out.deleted),
            vec![
                "Author(4, Marge)",
                "Author(5, Homer)",
                "Grant(2, ERC)",
                "Writes(4, 6)",
                "Writes(5, 7)",
            ]
        );
        assert!(ev.is_stable(&db, &out.state));
    }

    #[test]
    fn greedy_matches_exact_on_running_example() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let greedy = run_greedy(&db, &ev);
        let exact = optimal(&db, &ev, 200_000).expect("search completes");
        assert_eq!(greedy.deleted.len(), exact.len());
        // Figure 2's rules interact (Writes tuples void Pub derivations),
        // so the answer is right here but carries no certificate.
        assert!(!greedy.optimal);
    }

    #[test]
    fn pure_cascade_is_certified_optimal() {
        // R1 seeds, R2 cascades: interaction-free, every sequence deletes
        // the same two tuples, and the certificate reflects that.
        let mut db = tiny_instance(&[1], &[1], &[]);
        let program = parse_program(
            "delta R1(x) :- R1(x), x = 1.
             delta R2(x) :- R2(x), delta R1(x).",
        )
        .unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let out = run_greedy(&db, &ev);
        assert_eq!(out.deleted.len(), 2);
        assert!(out.optimal, "cascade forest must be certified");
        assert_eq!(optimal(&db, &ev, 10_000).unwrap().len(), 2);
    }

    #[test]
    fn step_deletes_one_tuple_when_heads_share_a_body() {
        // Prop. 3.20(4) part 1: firing ΔR1(a) first voids the other rule.
        let mut db = tiny_instance(&[1], &[10, 20, 30], &[]);
        let program = parse_program(
            "delta R1(x) :- R1(x), R2(y).
             delta R2(y) :- R1(x), R2(y).",
        )
        .unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let out = run_greedy(&db, &ev);
        assert_eq!(out.deleted.len(), 1, "greedy fires the hub tuple");
        let exact = optimal(&db, &ev, 100_000).unwrap();
        assert_eq!(exact.len(), 1);
    }

    #[test]
    fn prop_3_20_item_4_part_2_stage_can_beat_step() {
        // D = {R1(a), R2(b), R3(c1..c4)}, the four-rule program from the
        // proof: stage deletes {R1(a), R2(b)}; any step sequence is forced
        // into the R3 tuples.
        let mut db = tiny_instance(&[1], &[2], &[31, 32, 33, 34]);
        let program = parse_program(
            "delta R1(x) :- R1(x), R2(y).
             delta R2(y) :- R1(x), R2(y).
             delta R3(z) :- R3(z), delta R1(x), R2(y).
             delta R3(z) :- R3(z), R1(x), delta R2(y).",
        )
        .unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let stage_out = crate::stage::run(&db, &ev);
        assert_eq!(stage_out.deleted.len(), 2);
        let exact = optimal(&db, &ev, 500_000).unwrap();
        assert_eq!(exact.len(), 5, "one of R1/R2 plus all four R3 tuples");
        let greedy = run_greedy(&db, &ev);
        assert!(ev.is_stable(&db, &greedy.state));
        assert_eq!(greedy.deleted.len(), 5);
    }

    #[test]
    fn proposition_3_19_two_equivalent_results() {
        // Both {R1(a)} and {R2(b)} are valid step results of size 1.
        let mut db = tiny_instance(&[1], &[2], &[]);
        let program = parse_program(
            "delta R1(x) :- R1(x), R2(y).
             delta R2(y) :- R1(x), R2(y).",
        )
        .unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let exact = optimal(&db, &ev, 10_000).unwrap();
        assert_eq!(exact.len(), 1);
    }

    #[test]
    fn optimal_respects_budget() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        assert!(optimal(&db, &ev, 1).is_none());
    }

    #[test]
    fn stable_database_yields_empty_step() {
        let mut db = tiny_instance(&[1], &[], &[]);
        let program = parse_program("delta R1(x) :- R1(x), R2(y).").unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let out = run_greedy(&db, &ev);
        assert!(out.deleted.is_empty());
        assert!(out.optimal, "the empty repair is trivially minimum");
        assert_eq!(optimal(&db, &ev, 100).unwrap(), vec![]);
    }
}

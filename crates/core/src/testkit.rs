//! Shared fixtures: the paper's running example (Figures 1 and 2) and small
//! helpers used by tests, examples and downstream crates.

use datalog::{parse_program, Program};
use storage::{AttrType, Instance, Schema, TupleId, Value};

/// The academic database instance of **Figure 1**.
///
/// Tuple identifiers from the paper map to row order: `g1, g2` in `Grant`,
/// `ag1..ag3` in `AuthGrant`, `a1..a3` in `Author`, `c` in `Cite`,
/// `w1, w2` in `Writes`, `p1, p2` in `Pub`.
pub fn figure1_instance() -> Instance {
    let mut s = Schema::new();
    s.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
    s.relation(
        "AuthGrant",
        &[("aid", AttrType::Int), ("gid", AttrType::Int)],
    );
    s.relation("Author", &[("aid", AttrType::Int), ("name", AttrType::Str)]);
    s.relation(
        "Cite",
        &[("citing", AttrType::Int), ("cited", AttrType::Int)],
    );
    s.relation("Writes", &[("aid", AttrType::Int), ("pid", AttrType::Int)]);
    s.relation("Pub", &[("pid", AttrType::Int), ("title", AttrType::Str)]);
    let mut db = Instance::new(s);
    db.insert_values("Grant", [Value::Int(1), Value::str("NSF")])
        .unwrap();
    db.insert_values("Grant", [Value::Int(2), Value::str("ERC")])
        .unwrap();
    db.insert_values("AuthGrant", [Value::Int(2), Value::Int(1)])
        .unwrap();
    db.insert_values("AuthGrant", [Value::Int(4), Value::Int(2)])
        .unwrap();
    db.insert_values("AuthGrant", [Value::Int(5), Value::Int(2)])
        .unwrap();
    db.insert_values("Author", [Value::Int(2), Value::str("Maggie")])
        .unwrap();
    db.insert_values("Author", [Value::Int(4), Value::str("Marge")])
        .unwrap();
    db.insert_values("Author", [Value::Int(5), Value::str("Homer")])
        .unwrap();
    db.insert_values("Cite", [Value::Int(7), Value::Int(6)])
        .unwrap();
    db.insert_values("Writes", [Value::Int(4), Value::Int(6)])
        .unwrap();
    db.insert_values("Writes", [Value::Int(5), Value::Int(7)])
        .unwrap();
    db.insert_values("Pub", [Value::Int(6), Value::str("x")])
        .unwrap();
    db.insert_values("Pub", [Value::Int(7), Value::str("y")])
        .unwrap();
    db
}

/// The delta program of **Figure 2** (rules 0–4).
pub fn figure2_program() -> Program {
    parse_program(
        r#"
        # (0) seed: the ERC grant was added to the U.S. database by mistake
        delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
        # (1) delete winners of a deleted grant's foundation
        delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
        # (2) delete publications of deleted authors
        delta Pub(p, t) :- Pub(p, t), Writes(a, p), delta Author(a, n).
        # (3) delete authorship records of deleted authors
        delta Writes(a, p) :- Pub(p, t), Writes(a, p), delta Author(a, n).
        # (4) delete citations of deleted publications while authors remain
        delta Cite(c, p) :- Cite(c, p), delta Pub(p, t), Writes(a1, c), Writes(a2, p).
        "#,
    )
    .expect("figure 2 program parses")
}

/// Render tuple ids as `Rel(v, …)` strings, sorted — convenient for
/// assertions that read like the paper.
pub fn names_of(db: &Instance, tids: &[TupleId]) -> Vec<String> {
    let mut v: Vec<String> = tids.iter().map(|&t| db.display_tuple(t)).collect();
    v.sort();
    v
}

/// Find the tuple id whose rendering equals `name` (panics when missing) —
/// the inverse of [`names_of`] for single tuples.
pub fn tid_of(db: &Instance, name: &str) -> TupleId {
    db.all_tuple_ids()
        .find(|&t| db.display_tuple(t) == name)
        .unwrap_or_else(|| panic!("no tuple named {name}"))
}

/// Build a tiny instance with unary/binary integer relations for constructed
/// counter-example tests (`R1`, `R2`, `R3` with arities 1, 1, 1 by default).
pub fn tiny_instance(r1: &[i64], r2: &[i64], r3: &[i64]) -> Instance {
    let mut s = Schema::new();
    s.relation("R1", &[("x", AttrType::Int)]);
    s.relation("R2", &[("x", AttrType::Int)]);
    s.relation("R3", &[("x", AttrType::Int)]);
    let mut db = Instance::new(s);
    for &v in r1 {
        db.insert_values("R1", [Value::Int(v)]).unwrap();
    }
    for &v in r2 {
        db.insert_values("R2", [Value::Int(v)]).unwrap();
    }
    for &v in r3 {
        db.insert_values("R3", [Value::Int(v)]).unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_13_tuples() {
        let db = figure1_instance();
        assert_eq!(db.total_rows(), 13);
    }

    #[test]
    fn figure2_has_5_rules() {
        assert_eq!(figure2_program().len(), 5);
    }

    #[test]
    fn tid_of_round_trips() {
        let db = figure1_instance();
        let t = tid_of(&db, "Grant(2, ERC)");
        assert_eq!(db.display_tuple(t), "Grant(2, ERC)");
    }

    #[test]
    fn tiny_instance_shapes() {
        let db = tiny_instance(&[1], &[2, 3], &[]);
        assert_eq!(db.total_rows(), 3);
    }
}

//! The HoloClean-comparison table and seeded error injection.
//!
//! The paper's Tables 4/5 and Figure 10 use an `Author(aid, name, oid,
//! organization)` table of 5000 rows with an increasing number of injected
//! cell errors, checked against DC1–DC4 (aid determines oid/name/org, oid
//! determines org). For those DCs to have teeth, author records must be
//! duplicated — this generator emits ~2 rows per author, with the
//! organization name functionally determined by `oid`.

use cellrepair::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use storage::Value;

/// A duplicated-authors table: columns `aid, name, oid, org`.
pub fn author_table(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(&["aid", "name", "oid", "org"]);
    let n_authors = (rows / 2).max(1);
    let n_orgs = (n_authors / 8).max(1);
    let mut r = 0;
    let mut aid = 0i64;
    while r < rows {
        let oid = rng.random_range(0..n_orgs as i64);
        let name = format!("Author-{aid}");
        let org = format!("Org-{oid}");
        // 1–3 duplicate records per author, on average 2.
        let copies = (1 + rng.random_range(0..3usize)).min(rows - r);
        for _ in 0..copies {
            t.push_row(vec![
                Value::Int(aid),
                Value::str(&name),
                Value::Int(oid),
                Value::str(&org),
            ]);
            r += 1;
        }
        aid += 1;
    }
    t
}

/// One injected error with its ground truth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedError {
    /// Row of the perturbed cell.
    pub row: usize,
    /// Column of the perturbed cell.
    pub col: usize,
    /// The original (correct) value.
    pub correct: Value,
    /// The injected (wrong) value.
    pub wrong: Value,
}

/// Perturb `n` distinct cells among the repairable columns
/// (`name`, `oid`, `org`), drawing replacement values from the same
/// column's domain. Only rows whose `aid` appears more than once are
/// perturbed, so every injected error creates at least one DC violation.
pub fn inject_errors(table: &mut Table, n: usize, seed: u64) -> Vec<InjectedError> {
    use std::collections::{HashMap, HashSet};
    let mut rng = StdRng::seed_from_u64(seed);
    // Rows with a duplicate aid.
    let mut by_aid: HashMap<Value, Vec<usize>> = HashMap::new();
    for (i, row) in table.rows.iter().enumerate() {
        by_aid.entry(row[0]).or_default().push(i);
    }
    let mut eligible: Vec<usize> = by_aid
        .values()
        .filter(|v| v.len() > 1)
        .flatten()
        .copied()
        .collect();
    // HashMap order is nondeterministic.
    eligible.sort_unstable();
    // Cap at the number of eligible cells so small tables with large error
    // budgets degrade gracefully (the Figure 10b sweep requests 700 errors
    // even for its smallest table).
    let n = n.min(eligible.len() * 2);
    // Column domains for replacements.
    let cols = [1usize, 2, 3];
    let domains: Vec<Vec<Value>> = cols
        .iter()
        .map(|&c| {
            let mut vals: Vec<Value> = table.rows.iter().map(|r| r[c]).collect();
            vals.sort_by_key(|v| format!("{v}"));
            vals.dedup();
            vals
        })
        .collect();
    let mut used: HashSet<(usize, usize)> = HashSet::new();
    let mut errors = Vec::with_capacity(n);
    while errors.len() < n {
        let row = eligible[rng.random_range(0..eligible.len())];
        let ci = rng.random_range(0..cols.len());
        let col = cols[ci];
        if !used.insert((row, col)) {
            continue;
        }
        let correct = table.rows[row][col];
        let domain = &domains[ci];
        if domain.len() < 2 {
            continue;
        }
        let wrong = loop {
            let v = domain[rng.random_range(0..domain.len())];
            if v != correct {
                break v;
            }
        };
        table.set(row, col, wrong);
        errors.push(InjectedError {
            row,
            col,
            correct,
            wrong,
        });
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellrepair::{count_violating_tuples, DenialConstraint};

    /// DC1–DC4 of the paper over the `aid, name, oid, org` columns.
    pub fn paper_dcs() -> Vec<DenialConstraint> {
        vec![
            DenialConstraint::key_determines("DC1", 0, 2),
            DenialConstraint::key_determines("DC2", 0, 1),
            DenialConstraint::key_determines("DC3", 0, 3),
            DenialConstraint::key_determines("DC4", 2, 3),
        ]
    }

    #[test]
    fn clean_table_has_no_violations() {
        let t = author_table(500, 3);
        for dc in paper_dcs() {
            assert_eq!(count_violating_tuples(&t, &dc), 0, "{}", dc.name);
        }
    }

    #[test]
    fn errors_create_violations() {
        let mut t = author_table(500, 3);
        let errs = inject_errors(&mut t, 40, 9);
        assert_eq!(errs.len(), 40);
        let total: usize = paper_dcs()
            .iter()
            .map(|dc| count_violating_tuples(&t, dc))
            .sum();
        assert!(total >= 40, "each error should violate something: {total}");
    }

    #[test]
    fn ground_truth_restores_cleanliness() {
        let mut t = author_table(400, 11);
        let errs = inject_errors(&mut t, 25, 13);
        for e in &errs {
            t.set(e.row, e.col, e.correct);
        }
        let total: usize = paper_dcs()
            .iter()
            .map(|dc| count_violating_tuples(&t, dc))
            .sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn injection_is_deterministic() {
        let mut t1 = author_table(300, 1);
        let mut t2 = author_table(300, 1);
        let e1 = inject_errors(&mut t1, 10, 2);
        let e2 = inject_errors(&mut t2, 10, 2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn row_count_is_exact() {
        assert_eq!(author_table(5000, 1).len(), 5000);
        assert_eq!(author_table(1, 1).len(), 1);
    }
}

//! # datagen — deterministic synthetic datasets
//!
//! The paper evaluates on a fragment of the Microsoft Academic Search
//! database (~124K tuples) and a fragment of TPC-H (~376K tuples); neither
//! is available offline, so this crate generates seeded synthetic
//! equivalents that preserve the properties the experiments exercise:
//!
//! * [`mas`] — `Organization`, `Author`, `Writes`, `Publication`, `Cite`
//!   with Zipf-skewed joins (some organizations/authors/publications are
//!   much better connected than others, which is what makes the cascade and
//!   DC workloads interesting);
//! * [`tpch`] — the eight TPC-H tables with realistic key relationships,
//!   trimmed to the columns the Table 2 programs touch;
//! * [`errors`] — the duplicated `Author(aid, name, oid, organization)`
//!   table of the HoloClean comparison, plus seeded cell-error injection
//!   with ground truth;
//! * [`scale`] — the zipf scaling universe (`Hub`/`Link`/`Mid`/`Leaf` with
//!   Zipf-skewed foreign keys), built for the 10×–50× parallel-evaluation
//!   benches where one wide rule dominates.
//!
//! Everything is reproducible from a `u64` seed.

pub mod errors;
pub mod mas;
pub mod scale;
pub mod tpch;
pub mod zipf;

pub use errors::{author_table, inject_errors, InjectedError};
pub use mas::{MasConfig, MasData};
pub use scale::{ScaleConfig, ScaleData};
pub use tpch::{TpchConfig, TpchData};

//! Synthetic Microsoft-Academic-Search-style database.
//!
//! Schema (matching Section 6 of the paper):
//! `Organization(oid, name)`, `Author(aid, name, oid)`, `Writes(aid, pid)`,
//! `Publication(pid, title, year)`, `Cite(citing, cited)`.
//!
//! The default configuration produces ~124K tuples like the paper's MAS
//! fragment. Authors are assigned to organizations with Zipf skew, papers
//! to authors with Zipf skew, and citations prefer popular papers — so the
//! workload constants (the busiest organization, a heavily-shared author
//! name, …) select cascades of interesting size.

use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use storage::{AttrType, Instance, Schema, Value};

const FIRST_NAMES: [&str; 40] = [
    "Ada",
    "Alan",
    "Barbara",
    "Claude",
    "Donald",
    "Edgar",
    "Edsger",
    "Frances",
    "Grace",
    "Hedy",
    "John",
    "Kathleen",
    "Ken",
    "Leslie",
    "Margaret",
    "Niklaus",
    "Radia",
    "Tim",
    "Tony",
    "Vint",
    "Anita",
    "Butler",
    "Charles",
    "Dana",
    "Erna",
    "Fernando",
    "Gerald",
    "Ivan",
    "Juris",
    "Kristen",
    "Manuel",
    "Ole",
    "Peter",
    "Richard",
    "Robin",
    "Stephen",
    "Shafi",
    "Silvio",
    "Whitfield",
    "Martin",
];

const LAST_NAMES: [&str; 30] = [
    "Lovelace",
    "Turing",
    "Liskov",
    "Shannon",
    "Knuth",
    "Codd",
    "Dijkstra",
    "Allen",
    "Hopper",
    "Lamarr",
    "Backus",
    "Booth",
    "Thompson",
    "Lamport",
    "Hamilton",
    "Wirth",
    "Perlman",
    "Lee",
    "Hoare",
    "Cerf",
    "Borg",
    "Lampson",
    "Bachman",
    "Scott",
    "Hoover",
    "Corbato",
    "Sussman",
    "Sutherland",
    "Hartmanis",
    "Nygaard",
];

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct MasConfig {
    /// Number of organizations.
    pub organizations: usize,
    /// Number of authors.
    pub authors: usize,
    /// Number of publications.
    pub publications: usize,
    /// Target number of `Writes` edges (each publication gets ≥1).
    pub writes: usize,
    /// Number of citation edges.
    pub cites: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MasConfig {
    /// ~124K tuples, like the paper's fragment.
    fn default() -> MasConfig {
        MasConfig {
            organizations: 2_000,
            authors: 20_000,
            publications: 30_000,
            writes: 52_000,
            cites: 20_000,
            seed: 42,
        }
    }
}

impl MasConfig {
    /// Scale every table by `f` (used by scaling benches).
    pub fn scaled(f: f64) -> MasConfig {
        let d = MasConfig::default();
        let s = |n: usize| ((n as f64 * f) as usize).max(10);
        MasConfig {
            organizations: s(d.organizations),
            authors: s(d.authors),
            publications: s(d.publications),
            writes: s(d.writes),
            cites: s(d.cites),
            seed: d.seed,
        }
    }
}

/// The generated instance plus the metadata workload constants are chosen
/// from.
#[derive(Debug)]
pub struct MasData {
    /// The database.
    pub db: Instance,
    /// `oid` of the organization with the most authors.
    pub busiest_org: i64,
    /// `aid` of the author with the most publications.
    pub busiest_author: i64,
    /// An author name shared by many authors.
    pub common_name: String,
    /// `pid` of the most-cited publication.
    pub top_pub: i64,
}

/// The MAS schema.
pub fn mas_schema() -> Schema {
    let mut s = Schema::new();
    s.relation(
        "Organization",
        &[("oid", AttrType::Int), ("name", AttrType::Str)],
    );
    s.relation(
        "Author",
        &[
            ("aid", AttrType::Int),
            ("name", AttrType::Str),
            ("oid", AttrType::Int),
        ],
    );
    s.relation("Writes", &[("aid", AttrType::Int), ("pid", AttrType::Int)]);
    s.relation(
        "Publication",
        &[
            ("pid", AttrType::Int),
            ("title", AttrType::Str),
            ("year", AttrType::Int),
        ],
    );
    s.relation(
        "Cite",
        &[("citing", AttrType::Int), ("cited", AttrType::Int)],
    );
    s
}

/// Generate a database.
pub fn generate(cfg: &MasConfig) -> MasData {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Instance::new(mas_schema());

    for oid in 0..cfg.organizations as i64 {
        db.insert_values(
            "Organization",
            [Value::Int(oid), Value::str(&format!("Org{oid}"))],
        )
        .expect("schema ok");
    }

    // Authors: Zipf-skewed organization assignment; names from a small pool
    // so the same full name is shared by many authors.
    let org_sampler = ZipfSampler::new(cfg.organizations, 1.0);
    let mut org_sizes = vec![0usize; cfg.organizations];
    for aid in 0..cfg.authors as i64 {
        let oid = org_sampler.sample(&mut rng);
        org_sizes[oid] += 1;
        let name = format!(
            "{} {}",
            FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())],
            LAST_NAMES[rng.random_range(0..LAST_NAMES.len())]
        );
        db.insert_values(
            "Author",
            [Value::Int(aid), Value::str(&name), Value::Int(oid as i64)],
        )
        .expect("schema ok");
    }

    for pid in 0..cfg.publications as i64 {
        let year = 1990 + rng.random_range(0..35i64);
        db.insert_values(
            "Publication",
            [
                Value::Int(pid),
                Value::str(&format!("Title-{pid}")),
                Value::Int(year),
            ],
        )
        .expect("schema ok");
    }

    // Writes: every publication gets one Zipf-chosen author; the remaining
    // budget adds co-authors.
    let author_sampler = ZipfSampler::new(cfg.authors, 0.8);
    let mut author_pubs = vec![0usize; cfg.authors];
    let add_edge = |db: &mut Instance, rng: &mut StdRng, author_pubs: &mut Vec<usize>, pid: i64| {
        let aid = author_sampler.sample(rng);
        author_pubs[aid] += 1;
        db.insert_values("Writes", [Value::Int(aid as i64), Value::Int(pid)])
            .expect("schema ok");
    };
    for pid in 0..cfg.publications as i64 {
        add_edge(&mut db, &mut rng, &mut author_pubs, pid);
    }
    for _ in cfg.publications..cfg.writes {
        let pid = rng.random_range(0..cfg.publications as i64);
        add_edge(&mut db, &mut rng, &mut author_pubs, pid);
    }

    // Citations prefer popular (low-pid) papers; no self-citations.
    let cited_sampler = ZipfSampler::new(cfg.publications, 0.9);
    let mut cite_counts = vec![0usize; cfg.publications];
    let mut inserted = 0;
    while inserted < cfg.cites {
        let citing = rng.random_range(0..cfg.publications);
        let cited = cited_sampler.sample(&mut rng);
        if citing == cited {
            continue;
        }
        cite_counts[cited] += 1;
        db.insert_values(
            "Cite",
            [Value::Int(citing as i64), Value::Int(cited as i64)],
        )
        .expect("schema ok");
        inserted += 1;
    }

    let busiest_org = org_sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, n)| n)
        .map(|(i, _)| i as i64)
        .unwrap_or(0);
    let busiest_author = author_pubs
        .iter()
        .enumerate()
        .max_by_key(|&(_, n)| n)
        .map(|(i, _)| i as i64)
        .unwrap_or(0);
    let top_pub = cite_counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, n)| n)
        .map(|(i, _)| i as i64)
        .unwrap_or(0);
    // The most common full name.
    use std::collections::HashMap;
    let mut name_counts: HashMap<&str, usize> = HashMap::new();
    let author_rel = db.schema().rel_id("Author").expect("schema");
    for (_, t) in db.relation(author_rel).iter() {
        *name_counts
            .entry(t.get(1).as_str().expect("string"))
            .or_insert(0) += 1;
    }
    // Ties on count are broken lexicographically so the constant wired into
    // the workloads is identical across runs (HashMap iteration order is
    // not deterministic).
    let common_name = name_counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
        .map(|(n, _)| n.to_owned())
        .unwrap_or_default();

    MasData {
        db,
        busiest_org,
        busiest_author,
        common_name,
        top_pub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MasData {
        generate(&MasConfig {
            organizations: 30,
            authors: 300,
            publications: 400,
            writes: 700,
            cites: 300,
            seed: 1,
        })
    }

    #[test]
    fn tuple_counts_match_config() {
        let d = small();
        let s = d.db.schema();
        assert_eq!(d.db.rows(s.rel_id("Organization").unwrap()), 30);
        assert_eq!(d.db.rows(s.rel_id("Author").unwrap()), 300);
        assert_eq!(d.db.rows(s.rel_id("Publication").unwrap()), 400);
        // Writes/Cite deduplicate, so counts are ≤ the budget but close.
        assert!(d.db.rows(s.rel_id("Writes").unwrap()) > 600);
        assert!(d.db.rows(s.rel_id("Cite").unwrap()) > 250);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(storage::tsv::to_tsv(&a.db), storage::tsv::to_tsv(&b.db));
        assert_eq!(a.busiest_org, b.busiest_org);
        let c = generate(&MasConfig {
            seed: 2,
            ..MasConfig {
                organizations: 30,
                authors: 300,
                publications: 400,
                writes: 700,
                cites: 300,
                seed: 2,
            }
        });
        assert_ne!(storage::tsv::to_tsv(&a.db), storage::tsv::to_tsv(&c.db));
    }

    #[test]
    fn metadata_points_at_real_heavy_hitters() {
        let d = small();
        let s = d.db.schema();
        // The busiest org really has the most authors.
        let author = s.rel_id("Author").unwrap();
        let mut counts = std::collections::HashMap::new();
        for (_, t) in d.db.relation(author).iter() {
            *counts.entry(t.get(2).as_int().unwrap()).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert_eq!(counts[&d.busiest_org], max);
        assert!(!d.common_name.is_empty());
    }

    #[test]
    fn referential_integrity() {
        let d = small();
        let s = d.db.schema();
        let writes = s.rel_id("Writes").unwrap();
        for (_, t) in d.db.relation(writes).iter() {
            let aid = t.get(0).as_int().unwrap();
            let pid = t.get(1).as_int().unwrap();
            assert!(aid >= 0 && (aid as usize) < 300);
            assert!(pid >= 0 && (pid as usize) < 400);
        }
        let cite = s.rel_id("Cite").unwrap();
        for (_, t) in d.db.relation(cite).iter() {
            assert_ne!(t.get(0), t.get(1), "no self citations");
        }
    }

    #[test]
    fn default_config_is_paper_scale() {
        let cfg = MasConfig::default();
        let total = cfg.organizations + cfg.authors + cfg.publications + cfg.writes + cfg.cites;
        assert_eq!(total, 124_000);
    }
}

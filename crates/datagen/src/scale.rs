//! The zipf scaling dataset: a synthetic cascade universe built for
//! measuring intra-rule parallelism at 10×–50× the paper's workload sizes.
//!
//! The MAS and TPC-H generators reproduce the paper's experiments; this one
//! is deliberately *adversarial to per-rule fan-out*: a handful of rules
//! where one wide join dominates, over Zipf-skewed foreign keys so a few
//! "heavy" hub tuples own a large share of the join cone. Speedups here
//! must come from splitting work **inside** a rule (the morsel scheduler),
//! not from running rules side by side.
//!
//! Schema:
//!
//! * `Hub(hid, kind)` — seed relation; a deterministic ~2.4% slice carries
//!   `kind = 'bad'` (every 41st id, which includes the heaviest hub 0);
//! * `Link(hid, mid)` — hub side Zipf-skewed: heavy hubs fan out widely;
//! * `Mid(mid, w)` — the middle tier;
//! * `Leaf(mid, lid)` — mid side Zipf-skewed: heavy mids own many leaves.
//!
//! Defaults produce ~122K tuples (the MAS fragment's order of magnitude) at
//! scale 1.0; [`ScaleConfig::scaled`] takes the multiplier — `scaled(10.0)`
//! ≈ 1.2M tuples, `scaled(50.0)` ≈ 6.1M — with per-table costs linear in
//! the factor (the Zipf samplers precompute one cumulative table per
//! relation and sample by binary search).

use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use storage::{AttrType, Instance, Schema, Value};

/// Every 41st hub id is `'bad'` — includes hub 0, the Zipf-heaviest, so
/// the bad slice always reaches into the dense part of the join cone.
const BAD_STRIDE: i64 = 41;

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Number of hub tuples.
    pub hubs: usize,
    /// Number of middle-tier tuples.
    pub mids: usize,
    /// Target number of `Link` edges (deduplicated, so slightly fewer land).
    pub links: usize,
    /// Target number of `Leaf` edges.
    pub leaves: usize,
    /// Zipf skew of the hub side of `Link` (1.0 ≈ classic Zipf).
    pub hub_skew: f64,
    /// Zipf skew of the mid side of `Leaf`.
    pub leaf_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScaleConfig {
    /// ~122K tuples at scale 1.0.
    fn default() -> ScaleConfig {
        ScaleConfig {
            hubs: 2_000,
            mids: 20_000,
            links: 40_000,
            leaves: 60_000,
            hub_skew: 1.0,
            leaf_skew: 0.8,
            seed: 42,
        }
    }
}

impl ScaleConfig {
    /// Scale every table by `f`; the scaling benches run `f` in 10..=50.
    pub fn scaled(f: f64) -> ScaleConfig {
        let d = ScaleConfig::default();
        let s = |n: usize| ((n as f64 * f) as usize).max(10);
        ScaleConfig {
            hubs: s(d.hubs),
            mids: s(d.mids),
            links: s(d.links),
            leaves: s(d.leaves),
            ..d
        }
    }
}

/// The generated instance plus the metadata tests assert against.
#[derive(Debug)]
pub struct ScaleData {
    /// The database.
    pub db: Instance,
    /// Number of `'bad'` hub tuples (the cascade seeds).
    pub bad_hubs: usize,
}

/// The zipf-universe schema.
pub fn scale_schema() -> Schema {
    let mut s = Schema::new();
    s.relation("Hub", &[("hid", AttrType::Int), ("kind", AttrType::Str)]);
    s.relation("Link", &[("hid", AttrType::Int), ("mid", AttrType::Int)]);
    s.relation("Mid", &[("mid", AttrType::Int), ("w", AttrType::Int)]);
    s.relation("Leaf", &[("mid", AttrType::Int), ("lid", AttrType::Int)]);
    s
}

/// Generate a database.
pub fn generate(cfg: &ScaleConfig) -> ScaleData {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Instance::new(scale_schema());

    let mut bad_hubs = 0usize;
    for hid in 0..cfg.hubs as i64 {
        let bad = hid % BAD_STRIDE == 0;
        bad_hubs += usize::from(bad);
        db.insert_values(
            "Hub",
            [Value::Int(hid), Value::str(if bad { "bad" } else { "ok" })],
        )
        .expect("schema ok");
    }

    for mid in 0..cfg.mids as i64 {
        let w = rng.random_range(0..100i64);
        db.insert_values("Mid", [Value::Int(mid), Value::Int(w)])
            .expect("schema ok");
    }

    // Links: hub side Zipf-skewed, mid side uniform. Relations are sets, so
    // duplicate draws collapse; the budget is a target, not an exact count.
    let hub_sampler = ZipfSampler::new(cfg.hubs, cfg.hub_skew);
    for _ in 0..cfg.links {
        let hid = hub_sampler.sample(&mut rng) as i64;
        let mid = rng.random_range(0..cfg.mids as i64);
        db.insert_values("Link", [Value::Int(hid), Value::Int(mid)])
            .expect("schema ok");
    }

    // Leaves: mid side Zipf-skewed, leaf ids sequential (never collide).
    let mid_sampler = ZipfSampler::new(cfg.mids, cfg.leaf_skew);
    for lid in 0..cfg.leaves as i64 {
        let mid = mid_sampler.sample(&mut rng) as i64;
        db.insert_values("Leaf", [Value::Int(mid), Value::Int(lid)])
            .expect("schema ok");
    }

    ScaleData { db, bad_hubs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleData {
        generate(&ScaleConfig {
            hubs: 100,
            mids: 300,
            links: 600,
            leaves: 900,
            ..ScaleConfig::default()
        })
    }

    #[test]
    fn tuple_counts_match_config() {
        let d = small();
        let s = d.db.schema();
        assert_eq!(d.db.rows(s.rel_id("Hub").unwrap()), 100);
        assert_eq!(d.db.rows(s.rel_id("Mid").unwrap()), 300);
        assert_eq!(d.db.rows(s.rel_id("Leaf").unwrap()), 900);
        // Links deduplicate: ≤ budget but close.
        let links = d.db.rows(s.rel_id("Link").unwrap());
        assert!(links > 400 && links <= 600, "links = {links}");
        assert_eq!(d.bad_hubs, 100usize.div_ceil(BAD_STRIDE as usize));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(storage::tsv::to_tsv(&a.db), storage::tsv::to_tsv(&b.db));
        let c = generate(&ScaleConfig {
            hubs: 100,
            mids: 300,
            links: 600,
            leaves: 900,
            seed: 7,
            ..ScaleConfig::default()
        });
        assert_ne!(storage::tsv::to_tsv(&a.db), storage::tsv::to_tsv(&c.db));
    }

    #[test]
    fn heavy_hub_is_bad_and_dominates_links() {
        // Hub 0 is 'bad' by the stride and Zipf-heaviest by construction:
        // the cascade seeds always reach a dense join cone.
        let d = small();
        let s = d.db.schema();
        let hub = s.rel_id("Hub").unwrap();
        let (_, t) = d.db.relation(hub).iter().next().unwrap();
        assert_eq!(t.get(1).as_str(), Some("bad"));
        let link = s.rel_id("Link").unwrap();
        let mut per_hub = std::collections::HashMap::new();
        for (_, t) in d.db.relation(link).iter() {
            *per_hub.entry(t.get(0).as_int().unwrap()).or_insert(0usize) += 1;
        }
        let max = per_hub.values().copied().max().unwrap();
        assert_eq!(per_hub[&0], max, "hub 0 owns the most links");
    }

    #[test]
    fn scaled_grows_linearly() {
        let ten = ScaleConfig::scaled(10.0);
        assert_eq!(ten.hubs, 20_000);
        assert_eq!(ten.leaves, 600_000);
        let fifty = ScaleConfig::scaled(50.0);
        assert_eq!(fifty.mids, 1_000_000);
    }
}

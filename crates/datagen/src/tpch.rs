//! TPC-H-lite: the eight tables with the columns the Table 2 programs use.
//!
//! Schema (decimals scaled to integer cents):
//!
//! * `Region(rk, name)` — 5 rows
//! * `Nation(nk, rk, name)` — 25 rows
//! * `Supplier(sk, nk, name, bal)`
//! * `Customer(ck, nk, name, bal)`
//! * `Part(pk, name, price)`
//! * `PartSupp(sk, pk, qty, cost)` — supplier key first, matching the
//!   paper's `PS(sk, X)` / `PS(sk, pk, X)` patterns
//! * `Orders(ok, ck, status, total)`
//! * `Lineitem(ok, sk, pk, qty, price)`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use storage::{AttrType, Instance, Schema, Value};

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct TpchConfig {
    /// Suppliers.
    pub suppliers: usize,
    /// Customers.
    pub customers: usize,
    /// Parts.
    pub parts: usize,
    /// Suppliers per part (partsupp = parts × this).
    pub suppliers_per_part: usize,
    /// Orders.
    pub orders: usize,
    /// Average lineitems per order.
    pub lineitems_per_order: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    /// ~370K tuples, matching the paper's 376,175-tuple fragment.
    fn default() -> TpchConfig {
        TpchConfig {
            suppliers: 600,
            customers: 9_000,
            parts: 12_000,
            suppliers_per_part: 4,
            orders: 60_000,
            lineitems_per_order: 4,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// Scale the big tables by `f`.
    pub fn scaled(f: f64) -> TpchConfig {
        let d = TpchConfig::default();
        let s = |n: usize| ((n as f64 * f) as usize).max(5);
        TpchConfig {
            suppliers: s(d.suppliers),
            customers: s(d.customers),
            parts: s(d.parts),
            suppliers_per_part: d.suppliers_per_part,
            orders: s(d.orders),
            lineitems_per_order: d.lineitems_per_order,
            seed: d.seed,
        }
    }
}

/// Generated database.
#[derive(Debug)]
pub struct TpchData {
    /// The database.
    pub db: Instance,
}

/// The TPC-H-lite schema.
pub fn tpch_schema() -> Schema {
    let mut s = Schema::new();
    s.relation("Region", &[("rk", AttrType::Int), ("name", AttrType::Str)]);
    s.relation(
        "Nation",
        &[
            ("nk", AttrType::Int),
            ("rk", AttrType::Int),
            ("name", AttrType::Str),
        ],
    );
    s.relation(
        "Supplier",
        &[
            ("sk", AttrType::Int),
            ("nk", AttrType::Int),
            ("name", AttrType::Str),
            ("bal", AttrType::Int),
        ],
    );
    s.relation(
        "Customer",
        &[
            ("ck", AttrType::Int),
            ("nk", AttrType::Int),
            ("name", AttrType::Str),
            ("bal", AttrType::Int),
        ],
    );
    s.relation(
        "Part",
        &[
            ("pk", AttrType::Int),
            ("name", AttrType::Str),
            ("price", AttrType::Int),
        ],
    );
    s.relation(
        "PartSupp",
        &[
            ("sk", AttrType::Int),
            ("pk", AttrType::Int),
            ("qty", AttrType::Int),
            ("cost", AttrType::Int),
        ],
    );
    s.relation(
        "Orders",
        &[
            ("ok", AttrType::Int),
            ("ck", AttrType::Int),
            ("status", AttrType::Str),
            ("total", AttrType::Int),
        ],
    );
    s.relation(
        "Lineitem",
        &[
            ("ok", AttrType::Int),
            ("sk", AttrType::Int),
            ("pk", AttrType::Int),
            ("qty", AttrType::Int),
            ("price", AttrType::Int),
        ],
    );
    s
}

/// Generate a database.
pub fn generate(cfg: &TpchConfig) -> TpchData {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Instance::new(tpch_schema());

    for (rk, name) in REGIONS.iter().enumerate() {
        db.insert_values("Region", [Value::Int(rk as i64), Value::str(name)])
            .expect("schema ok");
    }
    for (nk, name) in NATIONS.iter().enumerate() {
        let rk = nk % REGIONS.len();
        db.insert_values(
            "Nation",
            [
                Value::Int(nk as i64),
                Value::Int(rk as i64),
                Value::str(name),
            ],
        )
        .expect("schema ok");
    }
    for sk in 0..cfg.suppliers as i64 {
        let nk = rng.random_range(0..NATIONS.len() as i64);
        let bal = rng.random_range(-99_999..999_999);
        db.insert_values(
            "Supplier",
            [
                Value::Int(sk),
                Value::Int(nk),
                Value::str(&format!("Supplier#{sk:06}")),
                Value::Int(bal),
            ],
        )
        .expect("schema ok");
    }
    for ck in 0..cfg.customers as i64 {
        let nk = rng.random_range(0..NATIONS.len() as i64);
        let bal = rng.random_range(-99_999..999_999);
        db.insert_values(
            "Customer",
            [
                Value::Int(ck),
                Value::Int(nk),
                Value::str(&format!("Customer#{ck:06}")),
                Value::Int(bal),
            ],
        )
        .expect("schema ok");
    }
    for pk in 0..cfg.parts as i64 {
        let price = 90_000 + (pk % 200_000);
        db.insert_values(
            "Part",
            [
                Value::Int(pk),
                Value::str(&format!("Part#{pk:06}")),
                Value::Int(price),
            ],
        )
        .expect("schema ok");
    }
    for pk in 0..cfg.parts as i64 {
        for i in 0..cfg.suppliers_per_part as i64 {
            let sk = (pk + i * (cfg.suppliers as i64 / 4 + 1)) % cfg.suppliers as i64;
            let qty = rng.random_range(1..10_000);
            let cost = rng.random_range(100..100_000);
            db.insert_values(
                "PartSupp",
                [
                    Value::Int(sk),
                    Value::Int(pk),
                    Value::Int(qty),
                    Value::Int(cost),
                ],
            )
            .expect("schema ok");
        }
    }
    let mut order_keys = Vec::with_capacity(cfg.orders);
    for ok in 0..cfg.orders as i64 {
        let ck = rng.random_range(0..cfg.customers as i64);
        let status = ["O", "F", "P"][rng.random_range(0..3usize)];
        let total = rng.random_range(1_000..500_000);
        db.insert_values(
            "Orders",
            [
                Value::Int(ok),
                Value::Int(ck),
                Value::str(status),
                Value::Int(total),
            ],
        )
        .expect("schema ok");
        order_keys.push(ok);
    }
    for &ok in &order_keys {
        let n = 1 + rng.random_range(0..cfg.lineitems_per_order * 2 - 1);
        for _ in 0..n {
            let sk = rng.random_range(0..cfg.suppliers as i64);
            let pk = rng.random_range(0..cfg.parts as i64);
            let qty = rng.random_range(1..50);
            let price = rng.random_range(100..100_000);
            db.insert_values(
                "Lineitem",
                [
                    Value::Int(ok),
                    Value::Int(sk),
                    Value::Int(pk),
                    Value::Int(qty),
                    Value::Int(price),
                ],
            )
            .expect("schema ok");
        }
    }
    TpchData { db }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpchData {
        generate(&TpchConfig {
            suppliers: 20,
            customers: 50,
            parts: 60,
            suppliers_per_part: 2,
            orders: 100,
            lineitems_per_order: 3,
            seed: 5,
        })
    }

    #[test]
    fn fixed_tables_have_fixed_sizes() {
        let d = small();
        let s = d.db.schema();
        assert_eq!(d.db.rows(s.rel_id("Region").unwrap()), 5);
        assert_eq!(d.db.rows(s.rel_id("Nation").unwrap()), 25);
        assert_eq!(d.db.rows(s.rel_id("PartSupp").unwrap()), 120);
    }

    #[test]
    fn lineitems_reference_valid_keys() {
        let d = small();
        let s = d.db.schema();
        let li = s.rel_id("Lineitem").unwrap();
        for (_, t) in d.db.relation(li).iter() {
            assert!(t.get(0).as_int().unwrap() < 100);
            assert!(t.get(1).as_int().unwrap() < 20);
            assert!(t.get(2).as_int().unwrap() < 60);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(storage::tsv::to_tsv(&a.db), storage::tsv::to_tsv(&b.db));
    }

    #[test]
    fn default_config_is_paper_scale() {
        let cfg = TpchConfig::default();
        let approx_total = 5
            + 25
            + cfg.suppliers
            + cfg.customers
            + cfg.parts
            + cfg.parts * cfg.suppliers_per_part
            + cfg.orders
            + cfg.orders * cfg.lineitems_per_order;
        assert!(approx_total > 350_000 && approx_total < 400_000);
    }
}

//! A small Zipf-like sampler over `0..n`.

use rand::Rng;

/// Samples index `i ∈ 0..n` with probability proportional to
/// `1 / (i + 1)^s`, via a precomputed cumulative table and binary search.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `0..n` with skew `s` (0 = uniform, 1 ≈ classic
    /// Zipf).
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "empty domain");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Draw one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.random_range(0.0..total);
        self.cumulative.partition_point(|&c| c < x)
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Never empty (constructor asserts), provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skewed_sampling_prefers_small_indexes() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50] * 4);
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.2, "roughly uniform: {counts:?}");
    }

    #[test]
    fn all_indexes_in_range() {
        let z = ZipfSampler::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
        assert_eq!(z.len(), 5);
    }
}

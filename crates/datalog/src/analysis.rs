//! Static analysis of delta programs: the delta-dependency graph,
//! recursion detection, and per-program statistics.
//!
//! The paper restricts its algorithms to programs "equivalent to a
//! non-recursive program" (*bounded*, Section 2) and notes that all four
//! semantics still apply to recursive programs while Algorithms 1 and 2
//! "rely on the size of the provenance", which "may be super-polynomial"
//! under inherent recursion (Section 8). This module gives callers the
//! facts to act on that:
//!
//! * the **delta-dependency graph** has an edge `Δi → Δj` when some rule
//!   derives `Δj` from a body mentioning `Δi`;
//! * a **cycle** in it makes the program syntactically recursive — every
//!   semantics still terminates (delta relations grow monotonically inside
//!   a finite universe), but derivation depth is then data-dependent
//!   rather than bounded by the program;
//! * [`Analysis::max_cascade_depth`] bounds the number of evaluation
//!   rounds for acyclic programs.

use crate::ast::Program;
use std::collections::HashMap;

/// What the analysis found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Analysis {
    /// Relation names with a delta derived somewhere in the program.
    pub delta_relations: Vec<String>,
    /// Edges `Δfrom → Δto` of the delta-dependency graph (deduplicated,
    /// sorted).
    pub edges: Vec<(String, String)>,
    /// Relations on a delta-dependency cycle (empty iff the program is
    /// non-recursive).
    pub recursive_relations: Vec<String>,
    /// Rules with no delta body atom (the starting points of evaluation:
    /// seeds and DC-style constraints).
    pub seed_rules: Vec<usize>,
    /// Longest path (in edges) through the acyclic part of the dependency
    /// graph; `None` when the program is recursive. Evaluation reaches its
    /// fixpoint after at most `max_cascade_depth + 2` rounds on any
    /// database.
    pub max_cascade_depth: Option<usize>,
}

impl Analysis {
    /// Is the program free of delta-dependency cycles (the paper's
    /// "not inherently recursive" precondition for Algorithms 1 and 2)?
    pub fn is_nonrecursive(&self) -> bool {
        self.recursive_relations.is_empty()
    }
}

/// Analyze a parsed program (no schema needed — this is purely syntactic).
pub fn analyze(program: &Program) -> Analysis {
    // Collect delta relations and edges.
    fn intern(n: &str, names: &mut Vec<String>, index: &mut HashMap<String, usize>) -> usize {
        if let Some(&i) = index.get(n) {
            return i;
        }
        names.push(n.to_owned());
        index.insert(n.to_owned(), names.len() - 1);
        names.len() - 1
    }
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();

    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut seed_rules = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        let head = intern(&rule.head.relation, &mut names, &mut index);
        let mut has_delta_body = false;
        for atom in &rule.body {
            if atom.is_delta {
                has_delta_body = true;
                let from = intern(&atom.relation, &mut names, &mut index);
                edges.push((from, head));
            }
        }
        if !has_delta_body {
            seed_rules.push(ri);
        }
    }
    edges.sort_unstable();
    edges.dedup();

    // Cycle detection + longest path by iterative DFS colouring.
    let n = names.len();
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &edges {
        adj[a].push(b);
    }
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut colour = vec![WHITE; n];
    let mut on_cycle = vec![false; n];
    // Depth[v] = longest path starting at v (valid only when acyclic).
    let mut depth = vec![0usize; n];
    let mut cyclic = false;
    for start in 0..n {
        if colour[start] != WHITE {
            continue;
        }
        // (node, next child index) stack.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = GRAY;
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                match colour[w] {
                    WHITE => {
                        colour[w] = GRAY;
                        stack.push((w, 0));
                    }
                    GRAY => {
                        cyclic = true;
                        on_cycle[w] = true;
                        on_cycle[v] = true;
                        // Mark the whole gray segment of the stack from w.
                        for &(u, _) in stack.iter().rev() {
                            on_cycle[u] = true;
                            if u == w {
                                break;
                            }
                        }
                    }
                    _ => {
                        depth[v] = depth[v].max(1 + depth[w]);
                    }
                }
            } else {
                colour[v] = BLACK;
                stack.pop();
                if let Some(&mut (p, _)) = stack.last_mut() {
                    depth[p] = depth[p].max(1 + depth[v]);
                }
            }
        }
    }

    let recursive_relations: Vec<String> = (0..n)
        .filter(|&i| on_cycle[i])
        .map(|i| names[i].clone())
        .collect();
    let max_cascade_depth = if cyclic {
        None
    } else {
        Some(depth.iter().copied().max().unwrap_or(0))
    };

    let mut delta_relations: Vec<String> = program
        .rules
        .iter()
        .map(|r| r.head.relation.clone())
        .collect();
    delta_relations.sort_unstable();
    delta_relations.dedup();
    let mut named_edges: Vec<(String, String)> = edges
        .into_iter()
        .map(|(a, b)| (names[a].clone(), names[b].clone()))
        .collect();
    named_edges.sort_unstable();

    Analysis {
        delta_relations,
        edges: named_edges,
        recursive_relations,
        seed_rules,
        max_cascade_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn figure2_is_nonrecursive_with_depth_3() {
        let p = parse_program(
            "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
             delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
             delta Pub(p, t) :- Pub(p, t), Writes(a, p), delta Author(a, n).
             delta Writes(a, p) :- Pub(p, t), Writes(a, p), delta Author(a, n).
             delta Cite(c, p) :- Cite(c, p), delta Pub(p, t), Writes(a1, c), Writes(a2, p).",
        )
        .unwrap();
        let a = analyze(&p);
        assert!(a.is_nonrecursive());
        assert_eq!(a.seed_rules, vec![0]);
        // Grant → Author → Pub → Cite is the longest chain: 3 edges.
        assert_eq!(a.max_cascade_depth, Some(3));
        assert_eq!(a.delta_relations.len(), 5);
        assert!(a.edges.contains(&("Grant".into(), "Author".into())));
        assert!(a.edges.contains(&("Pub".into(), "Cite".into())));
    }

    #[test]
    fn self_loop_is_recursive() {
        let p = parse_program("delta R(x) :- R(x), delta R(y), x != y.").unwrap();
        let a = analyze(&p);
        assert!(!a.is_nonrecursive());
        assert_eq!(a.recursive_relations, vec!["R".to_string()]);
        assert_eq!(a.max_cascade_depth, None);
        assert!(a.seed_rules.is_empty());
    }

    #[test]
    fn two_relation_cycle_is_recursive() {
        let p = parse_program(
            "delta R(x) :- R(x), delta S(x, y).
             delta S(x, y) :- S(x, y), delta R(x).",
        )
        .unwrap();
        let a = analyze(&p);
        assert!(!a.is_nonrecursive());
        let mut rec = a.recursive_relations.clone();
        rec.sort();
        assert_eq!(rec, vec!["R".to_string(), "S".to_string()]);
    }

    #[test]
    fn dc_style_program_has_depth_zero() {
        let p = parse_program(
            "delta A(x, y) :- A(x, y), A(x, z), y != z.
             delta B(x) :- B(x), A(x, y).",
        )
        .unwrap();
        let a = analyze(&p);
        assert!(a.is_nonrecursive());
        assert_eq!(a.max_cascade_depth, Some(0), "no delta body atoms at all");
        assert_eq!(a.seed_rules, vec![0, 1]);
    }

    #[test]
    fn diamond_counts_longest_path() {
        // A → B → D and A → C → D plus D → E: longest 3.
        let p = parse_program(
            "delta A(x) :- A(x).
             delta B(x) :- B(x), delta A(x).
             delta C(x) :- C(x), delta A(x).
             delta D(x) :- D(x), delta B(x).
             delta D(x) :- D(x), delta C(x).
             delta E(x) :- E(x), delta D(x).",
        )
        .unwrap();
        let a = analyze(&p);
        assert!(a.is_nonrecursive());
        assert_eq!(a.max_cascade_depth, Some(3));
    }

    #[test]
    fn empty_program() {
        let a = analyze(&Program::default());
        assert!(a.is_nonrecursive());
        assert_eq!(a.max_cascade_depth, Some(0));
        assert!(a.delta_relations.is_empty());
    }
}

//! Abstract syntax for delta programs.

use std::fmt;
use storage::{Sym, Value};

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// Variable, identified by its (interned) name; scope is one rule.
    Var(Sym),
    /// Constant value.
    Const(Value),
}

impl Term {
    /// Variable term from a name.
    pub fn var(name: &str) -> Term {
        Term::Var(Sym::new(name))
    }

    /// Integer constant term.
    pub fn int(v: i64) -> Term {
        Term::Const(Value::Int(v))
    }

    /// String constant term.
    pub fn str(v: &str) -> Term {
        Term::Const(Value::str(v))
    }

    /// Is this a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Int(i)) => write!(f, "{i}"),
            Term::Const(Value::Str(s)) => write!(f, "'{s}'"),
        }
    }
}

/// A 1-based source position (line, column) recorded by the parser.
///
/// Spans are *metadata*: two atoms or rules that differ only in spans
/// compare equal, so programs parsed from different renderings of the same
/// text (e.g. `p == parse(p.to_string())`) stay equal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An atom `R(t1, …, tn)` or `ΔR(t1, …, tn)`.
#[derive(Clone, Debug)]
pub struct Atom {
    /// Relation name (resolved against the schema during validation).
    pub relation: String,
    /// Is this a delta atom?
    pub is_delta: bool,
    /// Argument terms.
    pub terms: Vec<Term>,
    /// Source position of the atom's first token, when parsed from text.
    /// Ignored by equality (see [`Span`]).
    pub span: Option<Span>,
}

impl PartialEq for Atom {
    fn eq(&self, other: &Atom) -> bool {
        self.relation == other.relation
            && self.is_delta == other.is_delta
            && self.terms == other.terms
    }
}

impl Eq for Atom {}

impl Atom {
    /// Positive (base-relation) atom.
    pub fn base(relation: &str, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.to_owned(),
            is_delta: false,
            terms,
            span: None,
        }
    }

    /// Delta atom `ΔR(terms)`.
    pub fn delta(relation: &str, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.to_owned(),
            is_delta: true,
            terms,
            span: None,
        }
    }

    /// The same atom carrying a source span.
    pub fn with_span(mut self, span: Span) -> Atom {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_delta {
            write!(f, "delta ")?;
        }
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators allowed in rule bodies (the paper's
/// `◦ ∈ {<, >, =, ≠, ≤, ≥}`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to two values (using the engine's total order).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A comparison `lhs ◦ rhs` between terms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Comparison {
    /// Left term.
    pub lhs: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right term.
    pub rhs: Term,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op.symbol(), self.rhs)
    }
}

/// A delta rule (Definition 3.1).
#[derive(Clone, Debug)]
pub struct Rule {
    /// Head delta atom `Δi(X)`.
    pub head: Atom,
    /// Body atoms (base and delta).
    pub body: Vec<Atom>,
    /// Body comparisons.
    pub comparisons: Vec<Comparison>,
    /// Source position of the rule's first token, when parsed from text.
    /// Ignored by equality (see [`Span`]).
    pub span: Option<Span>,
}

impl PartialEq for Rule {
    fn eq(&self, other: &Rule) -> bool {
        self.head == other.head && self.body == other.body && self.comparisons == other.comparisons
    }
}

impl Eq for Rule {}

impl Rule {
    /// Build a rule; well-formedness is checked later by
    /// [`crate::validate::validate_program`].
    pub fn new(head: Atom, body: Vec<Atom>, comparisons: Vec<Comparison>) -> Rule {
        Rule {
            head,
            body,
            comparisons,
            span: None,
        }
    }

    /// The rule's source span: its own, or its head atom's.
    pub fn span(&self) -> Option<Span> {
        self.span.or(self.head.span)
    }

    /// Indexes of delta atoms within the body.
    pub fn delta_positions(&self) -> Vec<usize> {
        self.body
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_delta)
            .map(|(i, _)| i)
            .collect()
    }

    /// Does the body contain any delta atom? (Rules without delta atoms are
    /// "initial" rules — DC-style constraints or rule (0)-style seeds.)
    pub fn has_delta_body(&self) -> bool {
        self.body.iter().any(|a| a.is_delta)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        let mut first = true;
        for a in &self.body {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for c in &self.comparisons {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        write!(f, ".")
    }
}

/// A delta program: an ordered set of delta rules.
///
/// Order matters only for reporting (MySQL-style trigger creation order is
/// derived from it); the semantics themselves are defined on the rule *set*.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Program from rules.
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Is the program recursive through delta relations?
    ///
    /// Builds the dependency graph `Δj → Δi` for every rule `Δi :- …, Δj, …`
    /// and reports whether it has a cycle. The paper restricts attention to
    /// bounded (non-inherently-recursive) programs; all workloads in this
    /// repository are acyclic, but evaluation terminates either way because
    /// delta relations are bounded by their base relations.
    pub fn is_recursive(&self) -> bool {
        use std::collections::{HashMap, HashSet};
        let mut edges: HashMap<&str, HashSet<&str>> = HashMap::new();
        for r in &self.rules {
            for a in &r.body {
                if a.is_delta {
                    edges
                        .entry(a.relation.as_str())
                        .or_default()
                        .insert(r.head.relation.as_str());
                }
            }
        }
        // DFS cycle detection over the delta-relation graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let nodes: HashSet<&str> = edges
            .keys()
            .copied()
            .chain(edges.values().flatten().copied())
            .collect();
        let mut mark: HashMap<&str, Mark> = nodes.iter().map(|&n| (n, Mark::White)).collect();
        fn dfs<'a>(
            n: &'a str,
            edges: &HashMap<&'a str, HashSet<&'a str>>,
            mark: &mut HashMap<&'a str, Mark>,
        ) -> bool {
            mark.insert(n, Mark::Gray);
            if let Some(next) = edges.get(n) {
                for &m in next {
                    match mark.get(m).copied().unwrap_or(Mark::White) {
                        Mark::Gray => return true,
                        Mark::White => {
                            if dfs(m, edges, mark) {
                                return true;
                            }
                        }
                        Mark::Black => {}
                    }
                }
            }
            mark.insert(n, Mark::Black);
            false
        }
        let node_list: Vec<&str> = nodes.into_iter().collect();
        for n in node_list {
            if mark[&n] == Mark::White && dfs(n, &edges, &mut mark) {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(head_rel: &str, body: Vec<Atom>) -> Rule {
        Rule::new(Atom::delta(head_rel, vec![Term::var("x")]), body, vec![])
    }

    #[test]
    fn display_round_trip_shape() {
        let r = Rule::new(
            Atom::delta("Grant", vec![Term::var("g"), Term::var("n")]),
            vec![Atom::base("Grant", vec![Term::var("g"), Term::var("n")])],
            vec![Comparison {
                lhs: Term::var("n"),
                op: CmpOp::Eq,
                rhs: Term::str("ERC"),
            }],
        );
        assert_eq!(
            r.to_string(),
            "delta Grant(g, n) :- Grant(g, n), n = 'ERC'."
        );
    }

    #[test]
    fn cmp_ops() {
        use storage::Value;
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Ne.eval(&Value::str("a"), &Value::str("b")));
        assert!(CmpOp::Ge.eval(&Value::Int(2), &Value::Int(2)));
        assert!(!CmpOp::Gt.eval(&Value::Int(2), &Value::Int(2)));
    }

    #[test]
    fn delta_positions() {
        let r = Rule::new(
            Atom::delta("A", vec![Term::var("x")]),
            vec![
                Atom::base("A", vec![Term::var("x")]),
                Atom::delta("B", vec![Term::var("y")]),
                Atom::base("C", vec![Term::var("z")]),
                Atom::delta("D", vec![Term::var("w")]),
            ],
            vec![],
        );
        assert_eq!(r.delta_positions(), vec![1, 3]);
        assert!(r.has_delta_body());
    }

    #[test]
    fn recursion_detection() {
        // ΔA :- A, ΔB and ΔB :- B, ΔA  → recursive.
        let p = Program::new(vec![
            rule(
                "A",
                vec![
                    Atom::base("A", vec![Term::var("x")]),
                    Atom::delta("B", vec![Term::var("x")]),
                ],
            ),
            rule(
                "B",
                vec![
                    Atom::base("B", vec![Term::var("x")]),
                    Atom::delta("A", vec![Term::var("x")]),
                ],
            ),
        ]);
        assert!(p.is_recursive());

        // Linear chain is not recursive.
        let p2 = Program::new(vec![
            rule(
                "B",
                vec![
                    Atom::base("B", vec![Term::var("x")]),
                    Atom::delta("A", vec![Term::var("x")]),
                ],
            ),
            rule(
                "C",
                vec![
                    Atom::base("C", vec![Term::var("x")]),
                    Atom::delta("B", vec![Term::var("x")]),
                ],
            ),
        ]);
        assert!(!p2.is_recursive());

        // Self-loop ΔA :- A, ΔA.
        let p3 = Program::new(vec![rule(
            "A",
            vec![
                Atom::base("A", vec![Term::var("x")]),
                Atom::delta("A", vec![Term::var("y")]),
            ],
        )]);
        assert!(p3.is_recursive());
    }
}

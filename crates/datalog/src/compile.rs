//! Compilation of validated rules into positional evaluation plans.
//!
//! Variables are renumbered to dense indexes, atoms become
//! [`CompiledAtom`]s over [`Slot`]s, and for every possible *focus* (the
//! delta atom forced to range over the semi-naive frontier) a greedy join
//! order is precomputed along with the earliest step at which each
//! comparison can be checked.

use crate::ast::{CmpOp, Rule, Term};
use crate::validate::head_witness;
use std::collections::HashMap;
use storage::{RelId, Schema, Sym, Value};

/// A positional term: variable index or constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Slot {
    /// Rule-local variable index.
    Var(u32),
    /// Constant value.
    Const(Value),
}

/// A compiled atom.
#[derive(Clone, Debug)]
pub struct CompiledAtom {
    /// Resolved relation.
    pub rel: RelId,
    /// Delta atom?
    pub is_delta: bool,
    /// One slot per column.
    pub slots: Vec<Slot>,
}

/// A compiled comparison.
#[derive(Clone, Copy, Debug)]
pub struct CompiledCmp {
    /// Left slot.
    pub lhs: Slot,
    /// Operator.
    pub op: CmpOp,
    /// Right slot.
    pub rhs: Slot,
}

/// A join order for one rule, possibly specialized to a frontier focus.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Permutation of body-atom indexes, in evaluation order.
    pub order: Vec<usize>,
    /// `cmps_after[k]` lists comparison indexes checkable right after the
    /// `k`-th atom of `order` binds.
    pub cmps_after: Vec<Vec<usize>>,
}

/// A fully compiled rule.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// Number of distinct variables.
    pub n_vars: usize,
    /// Body atoms in source order.
    pub atoms: Vec<CompiledAtom>,
    /// Comparisons in source order.
    pub cmps: Vec<CompiledCmp>,
    /// Body index of the head witness atom (Def. 3.1).
    pub head_witness: usize,
    /// Source-order indexes of delta atoms.
    pub delta_positions: Vec<usize>,
    /// General plan (no frontier focus).
    pub general: Plan,
    /// `focused[i]` is the plan whose first atom is `delta_positions[i]`.
    pub focused: Vec<Plan>,
    /// True when a constant-only comparison is false: the rule can never
    /// fire.
    pub never_fires: bool,
}

struct VarMap {
    map: HashMap<Sym, u32>,
}

impl VarMap {
    fn slot(&mut self, t: &Term) -> Slot {
        match t {
            Term::Const(v) => Slot::Const(*v),
            Term::Var(s) => {
                let next = self.map.len() as u32;
                Slot::Var(*self.map.entry(*s).or_insert(next))
            }
        }
    }
}

fn atom_score(atom: &CompiledAtom, bound: &[bool]) -> i32 {
    let mut score = 0;
    for s in &atom.slots {
        match s {
            Slot::Const(_) => score += 4,
            Slot::Var(v) => {
                if bound[*v as usize] {
                    score += 4;
                }
            }
        }
    }
    // Delta relations are usually small; prefer them as generators.
    if atom.is_delta {
        score += 1;
    }
    score
}

fn bind_atom(atom: &CompiledAtom, bound: &mut [bool]) {
    for s in &atom.slots {
        if let Slot::Var(v) = s {
            bound[*v as usize] = true;
        }
    }
}

fn cmp_ready(c: &CompiledCmp, bound: &[bool]) -> bool {
    let ok = |s: &Slot| match s {
        Slot::Const(_) => true,
        Slot::Var(v) => bound[*v as usize],
    };
    ok(&c.lhs) && ok(&c.rhs)
}

fn make_plan(
    atoms: &[CompiledAtom],
    cmps: &[CompiledCmp],
    n_vars: usize,
    first: Option<usize>,
) -> Plan {
    let n = atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound = vec![false; n_vars];
    if let Some(f) = first {
        order.push(f);
        used[f] = true;
        bind_atom(&atoms[f], &mut bound);
    }
    while order.len() < n {
        let best = (0..n)
            .filter(|&i| !used[i])
            .max_by_key(|&i| (atom_score(&atoms[i], &bound), std::cmp::Reverse(i)))
            .expect("atom available");
        order.push(best);
        used[best] = true;
        bind_atom(&atoms[best], &mut bound);
    }
    // Schedule comparisons at the earliest step where both sides are bound.
    let mut cmps_after = vec![Vec::new(); n.max(1)];
    let mut assigned = vec![false; cmps.len()];
    let mut bound = vec![false; n_vars];
    for (k, &ai) in order.iter().enumerate() {
        bind_atom(&atoms[ai], &mut bound);
        for (ci, c) in cmps.iter().enumerate() {
            if !assigned[ci] && cmp_ready(c, &bound) {
                assigned[ci] = true;
                cmps_after[k].push(ci);
            }
        }
    }
    Plan { order, cmps_after }
}

/// Compile a validated rule against `schema`.
pub fn compile_rule(schema: &Schema, rule: &Rule) -> CompiledRule {
    let mut vm = VarMap {
        map: HashMap::new(),
    };
    let atoms: Vec<CompiledAtom> = rule
        .body
        .iter()
        .map(|a| CompiledAtom {
            rel: schema.rel_id(&a.relation).expect("validated"),
            is_delta: a.is_delta,
            slots: a.terms.iter().map(|t| vm.slot(t)).collect(),
        })
        .collect();
    let cmps: Vec<CompiledCmp> = rule
        .comparisons
        .iter()
        .map(|c| CompiledCmp {
            lhs: vm.slot(&c.lhs),
            op: c.op,
            rhs: vm.slot(&c.rhs),
        })
        .collect();
    let n_vars = vm.map.len();
    let never_fires = cmps.iter().any(|c| match (&c.lhs, &c.rhs) {
        (Slot::Const(a), Slot::Const(b)) => !c.op.eval(a, b),
        _ => false,
    });
    let delta_positions: Vec<usize> = atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.is_delta)
        .map(|(i, _)| i)
        .collect();
    let general = make_plan(&atoms, &cmps, n_vars, None);
    let focused = delta_positions
        .iter()
        .map(|&j| make_plan(&atoms, &cmps, n_vars, Some(j)))
        .collect();
    CompiledRule {
        n_vars,
        head_witness: head_witness(rule).expect("validated"),
        atoms,
        cmps,
        delta_positions,
        general,
        focused,
        never_fires,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use storage::AttrType;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.relation("A", &[("x", AttrType::Int)]);
        s.relation("B", &[("x", AttrType::Int), ("y", AttrType::Int)]);
        s.relation("C", &[("y", AttrType::Int)]);
        s
    }

    fn compile(src: &str) -> CompiledRule {
        let p = parse_program(src).unwrap();
        compile_rule(&schema(), &p.rules[0])
    }

    #[test]
    fn variables_are_shared_across_atoms() {
        let r = compile("delta A(x) :- A(x), B(x, y), C(y).");
        assert_eq!(r.n_vars, 2);
        assert_eq!(r.atoms[0].slots, vec![Slot::Var(0)]);
        assert_eq!(r.atoms[1].slots, vec![Slot::Var(0), Slot::Var(1)]);
        assert_eq!(r.head_witness, 0);
    }

    #[test]
    fn focused_plan_starts_with_focus() {
        let r = compile("delta A(x) :- A(x), delta B(x, y), C(y).");
        assert_eq!(r.delta_positions, vec![1]);
        assert_eq!(r.focused[0].order[0], 1);
    }

    #[test]
    fn plan_covers_all_atoms_once() {
        let r = compile("delta A(x) :- A(x), B(x, y), C(y), delta C(z).");
        let mut o = r.general.order.clone();
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3]);
    }

    #[test]
    fn comparisons_scheduled_when_bound() {
        let r = compile("delta A(x) :- A(x), B(x, y), x < 5, y > 1.");
        let scheduled: usize = r.general.cmps_after.iter().map(Vec::len).sum();
        assert_eq!(scheduled, 2);
        // x < 5 must be checkable as soon as an atom binding x is placed.
        let first_with_cmp = r
            .general
            .cmps_after
            .iter()
            .position(|v| !v.is_empty())
            .unwrap();
        assert_eq!(first_with_cmp, 0);
    }

    #[test]
    fn constant_contradiction_detected() {
        let r = compile("delta A(x) :- A(x), 1 = 2.");
        assert!(r.never_fires);
        let r2 = compile("delta A(x) :- A(x), 1 < 2.");
        assert!(!r2.never_fires);
    }

    #[test]
    fn constants_in_atoms_become_const_slots() {
        let r = compile("delta A(x) :- A(x), B(3, y).");
        assert_eq!(r.atoms[1].slots[0], Slot::Const(Value::Int(3)));
    }
}

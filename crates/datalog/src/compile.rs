//! Compilation of validated rules into positional evaluation plans.
//!
//! Variables are renumbered to dense indexes, atoms become
//! [`CompiledAtom`]s over [`Slot`]s, and for every possible *focus* (the
//! delta atom forced to range over the semi-naive frontier) a greedy join
//! order is precomputed along with the earliest step at which each
//! comparison can be checked.
//!
//! Beyond the join *order*, each plan step carries a [`ProbeSpec`]: the
//! complete static analysis of what is bound when the step runs. Which
//! columns hold already-known values (and therefore form a composite index
//! key), which columns bind fresh variables, and which columns repeat a
//! variable first seen earlier *in the same atom*. The evaluator executes
//! these precompiled probes directly — it never rediscovers bound columns,
//! never consults a runtime binding trail, and filters candidate rows by a
//! multi-column index instead of one column plus tuple-by-tuple checks.

use crate::ast::{CmpOp, Rule, Term};
use crate::validate::head_witness;
use storage::{FxHashMap, IndexId, RelId, Schema, Sym, Value};

/// A positional term: variable index or constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Slot {
    /// Rule-local variable index.
    Var(u32),
    /// Constant value.
    Const(Value),
}

/// A compiled atom.
#[derive(Clone, Debug)]
pub struct CompiledAtom {
    /// Resolved relation.
    pub rel: RelId,
    /// Delta atom?
    pub is_delta: bool,
    /// One slot per column.
    pub slots: Vec<Slot>,
}

/// A compiled comparison.
#[derive(Clone, Copy, Debug)]
pub struct CompiledCmp {
    /// Left slot.
    pub lhs: Slot,
    /// Operator.
    pub op: CmpOp,
    /// Right slot.
    pub rhs: Slot,
}

/// Restriction applied to one atom relative to a distinguished tuple set.
///
/// Two enumerations use this partition: **semi-naive frontier rounds**
/// (delta atoms split over the previous round's newly derived deltas) and
/// **change-seeded rounds** (*every* atom split over the tuples a mutation
/// batch touched). Both rely on the same argument: partitioning assignments
/// by the first body position that binds a distinguished tuple produces
/// each assignment exactly once.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeltaClass {
    /// Tuples outside the distinguished set (Δ \ frontier, or unchanged).
    Old,
    /// Tuples inside the distinguished set (the frontier / the seed).
    New,
    /// Unrestricted.
    All,
}

/// The static probe analysis of one plan step: given everything bound by
/// the preceding steps, how the step's atom is matched against storage.
#[derive(Clone, Debug)]
pub struct ProbeSpec {
    /// Columns whose value is known when the step runs (constants or
    /// variables bound earlier), strictly ascending. Together they are the
    /// composite-index key; empty means the step is a full generator.
    pub key_cols: Vec<usize>,
    /// How to produce each key column's value, parallel to `key_cols`.
    /// `Slot::Var` here always refers to an already-bound variable.
    pub key_slots: Vec<Slot>,
    /// `(column, variable)` pairs bound fresh by this step — the first
    /// occurrence of each new variable, in column order. Because boundness
    /// is static, the evaluator needs no undo trail: the next candidate row
    /// simply overwrites these slots.
    pub bind_cols: Vec<(usize, u32)>,
    /// `(column, earlier column)` pairs where a variable first bound at
    /// this step's `earlier column` repeats: the two tuple positions must
    /// be equal.
    pub same_cols: Vec<(usize, usize)>,
    /// Composite index over `key_cols` in the atom's relation; resolved by
    /// [`crate::eval::Evaluator::new`] (compilation sees only the schema).
    /// Unused when `key_cols` is empty.
    pub index: IndexId,
}

impl ProbeSpec {
    /// Does the spec probe an index (vs. scan)?
    pub fn is_probe(&self) -> bool {
        !self.key_cols.is_empty()
    }
}

/// A join order for one rule, possibly specialized to a frontier focus.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Permutation of body-atom indexes, in evaluation order.
    pub order: Vec<usize>,
    /// `cmps_after[k]` lists comparison indexes checkable right after the
    /// `k`-th atom of `order` binds.
    pub cmps_after: Vec<Vec<usize>>,
    /// `probes[k]` is the static probe analysis of the `k`-th step.
    pub probes: Vec<ProbeSpec>,
}

/// A fully compiled rule.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// Number of distinct variables.
    pub n_vars: usize,
    /// Body atoms in source order.
    pub atoms: Vec<CompiledAtom>,
    /// Comparisons in source order.
    pub cmps: Vec<CompiledCmp>,
    /// Body index of the head witness atom (Def. 3.1).
    pub head_witness: usize,
    /// Source-order indexes of delta atoms.
    pub delta_positions: Vec<usize>,
    /// General plan (no frontier focus), run under [`Mode::Current`] /
    /// [`Mode::FrozenBase`] — stage semantics and the naive ablation, where
    /// delta atoms range over the actual (small) delta view.
    ///
    /// [`Mode::Current`]: crate::eval::Mode::Current
    /// [`Mode::FrozenBase`]: crate::eval::Mode::FrozenBase
    pub general: Plan,
    /// The general plan's sibling for [`Mode::Hypothetical`] — Algorithm
    /// 1's enumeration, where delta atoms range over the *full* relation.
    /// Same admission semantics (everything [`DeltaClass::All`], shares
    /// [`CompiledRule::general_classes`]); only the join order may differ,
    /// because the cost planner sizes delta atoms at full cardinality here
    /// and at [`crate::cost::DELTA_FRACTION`] in `general`. The textual
    /// planner emits the identical order for both.
    ///
    /// [`Mode::Hypothetical`]: crate::eval::Mode::Hypothetical
    pub hypothetical: Plan,
    /// `focused[i]` is the plan whose first atom is `delta_positions[i]`.
    pub focused: Vec<Plan>,
    /// Per-atom delta classes of the general plan: everything `All`.
    pub general_classes: Vec<DeltaClass>,
    /// `focused_classes[i]` are the per-atom delta classes when
    /// `delta_positions[i]` is the frontier focus (earlier delta atoms
    /// range over old deltas, the focus over the frontier, later ones over
    /// all — the partition that makes each assignment appear exactly once).
    pub focused_classes: Vec<Vec<DeltaClass>>,
    /// `seeded[p]` is the plan whose first atom is body position `p`, for
    /// *every* position — the driver of change-seeded enumeration, where
    /// the pivot ranges over a small set of changed tuples (a mutation
    /// batch) instead of the whole relation, regardless of whether the
    /// atom is a delta atom.
    pub seeded: Vec<Plan>,
    /// `seeded_classes[p]` is the per-atom partition against the **seed**
    /// set when position `p` is the pivot: earlier positions exclude seed
    /// tuples, the pivot ranges over them, later positions are
    /// unrestricted. Applies to base and delta atoms alike (on top of the
    /// ordinary view admission), so an assignment touching `k` changed
    /// tuples is produced exactly once, at its first changed position.
    pub seeded_classes: Vec<Vec<DeltaClass>>,
    /// True when a constant-only comparison is false: the rule can never
    /// fire.
    pub never_fires: bool,
}

struct VarMap {
    map: FxHashMap<Sym, u32>,
}

impl VarMap {
    fn slot(&mut self, t: &Term) -> Slot {
        match t {
            Term::Const(v) => Slot::Const(*v),
            Term::Var(s) => {
                let next = self.map.len() as u32;
                Slot::Var(*self.map.entry(*s).or_insert(next))
            }
        }
    }
}

fn atom_score(atom: &CompiledAtom, bound: &[bool]) -> i32 {
    let mut score = 0;
    for s in &atom.slots {
        match s {
            Slot::Const(_) => score += 4,
            Slot::Var(v) => {
                if bound[*v as usize] {
                    score += 4;
                }
            }
        }
    }
    // Delta relations are usually small; prefer them as generators.
    if atom.is_delta {
        score += 1;
    }
    score
}

fn bind_atom(atom: &CompiledAtom, bound: &mut [bool]) {
    for s in &atom.slots {
        if let Slot::Var(v) = s {
            bound[*v as usize] = true;
        }
    }
}

fn cmp_ready(c: &CompiledCmp, bound: &[bool]) -> bool {
    let ok = |s: &Slot| match s {
        Slot::Const(_) => true,
        Slot::Var(v) => bound[*v as usize],
    };
    ok(&c.lhs) && ok(&c.rhs)
}

/// Static probe analysis for `atom`, given the variables bound before the
/// step (`bound`). Classifies every column exactly once: known value →
/// index key; fresh variable → binding column; repeat of a variable first
/// bound at an earlier column of *this* atom → intra-atom equality.
fn probe_spec(atom: &CompiledAtom, bound: &[bool]) -> ProbeSpec {
    let mut spec = ProbeSpec {
        key_cols: Vec::new(),
        key_slots: Vec::new(),
        bind_cols: Vec::new(),
        same_cols: Vec::new(),
        index: 0,
    };
    // Variable → column of its first occurrence within this atom.
    let mut first_col: FxHashMap<u32, usize> = FxHashMap::default();
    for (col, slot) in atom.slots.iter().enumerate() {
        match slot {
            Slot::Const(_) => {
                spec.key_cols.push(col);
                spec.key_slots.push(*slot);
            }
            Slot::Var(x) => {
                if bound[*x as usize] {
                    spec.key_cols.push(col);
                    spec.key_slots.push(*slot);
                } else if let Some(&earlier) = first_col.get(x) {
                    spec.same_cols.push((col, earlier));
                } else {
                    first_col.insert(*x, col);
                    spec.bind_cols.push((col, *x));
                }
            }
        }
    }
    spec
}

fn make_plan(
    atoms: &[CompiledAtom],
    cmps: &[CompiledCmp],
    n_vars: usize,
    first: Option<usize>,
) -> Plan {
    let n = atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound = vec![false; n_vars];
    if let Some(f) = first {
        order.push(f);
        used[f] = true;
        bind_atom(&atoms[f], &mut bound);
    }
    while order.len() < n {
        let best = (0..n)
            .filter(|&i| !used[i])
            .max_by_key(|&i| (atom_score(&atoms[i], &bound), std::cmp::Reverse(i)))
            .expect("atom available");
        order.push(best);
        used[best] = true;
        bind_atom(&atoms[best], &mut bound);
    }
    plan_for_order(atoms, cmps, n_vars, order)
}

/// Finish a [`Plan`] for an explicit atom `order`: schedule comparisons at
/// the earliest step where both sides are bound and compute each step's
/// probe spec from the variables bound before it. Shared by the static
/// greedy order above and the statistics-driven order of [`crate::cost`].
pub(crate) fn plan_for_order(
    atoms: &[CompiledAtom],
    cmps: &[CompiledCmp],
    n_vars: usize,
    order: Vec<usize>,
) -> Plan {
    let n = atoms.len();
    debug_assert_eq!(order.len(), n, "order must permute the body atoms");
    let mut cmps_after = vec![Vec::new(); n.max(1)];
    let mut probes = Vec::with_capacity(n);
    let mut assigned = vec![false; cmps.len()];
    let mut bound = vec![false; n_vars];
    for (k, &ai) in order.iter().enumerate() {
        probes.push(probe_spec(&atoms[ai], &bound));
        bind_atom(&atoms[ai], &mut bound);
        for (ci, c) in cmps.iter().enumerate() {
            if !assigned[ci] && cmp_ready(c, &bound) {
                assigned[ci] = true;
                cmps_after[k].push(ci);
            }
        }
    }
    Plan {
        order,
        cmps_after,
        probes,
    }
}

/// Compile a validated rule against `schema`.
pub fn compile_rule(schema: &Schema, rule: &Rule) -> CompiledRule {
    let mut vm = VarMap {
        map: FxHashMap::default(),
    };
    let atoms: Vec<CompiledAtom> = rule
        .body
        .iter()
        .map(|a| CompiledAtom {
            rel: schema.rel_id(&a.relation).expect("validated"),
            is_delta: a.is_delta,
            slots: a.terms.iter().map(|t| vm.slot(t)).collect(),
        })
        .collect();
    let cmps: Vec<CompiledCmp> = rule
        .comparisons
        .iter()
        .map(|c| CompiledCmp {
            lhs: vm.slot(&c.lhs),
            op: c.op,
            rhs: vm.slot(&c.rhs),
        })
        .collect();
    let n_vars = vm.map.len();
    let never_fires = cmps.iter().any(|c| match (&c.lhs, &c.rhs) {
        (Slot::Const(a), Slot::Const(b)) => !c.op.eval(a, b),
        _ => false,
    });
    let delta_positions: Vec<usize> = atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.is_delta)
        .map(|(i, _)| i)
        .collect();
    let general = make_plan(&atoms, &cmps, n_vars, None);
    let focused: Vec<Plan> = delta_positions
        .iter()
        .map(|&j| make_plan(&atoms, &cmps, n_vars, Some(j)))
        .collect();
    let general_classes = vec![DeltaClass::All; atoms.len()];
    let focused_classes: Vec<Vec<DeltaClass>> = delta_positions
        .iter()
        .map(|&focus| {
            atoms
                .iter()
                .enumerate()
                .map(|(ai, a)| {
                    if !a.is_delta {
                        DeltaClass::All
                    } else if ai < focus {
                        DeltaClass::Old
                    } else if ai == focus {
                        DeltaClass::New
                    } else {
                        DeltaClass::All
                    }
                })
                .collect()
        })
        .collect();
    let seeded: Vec<Plan> = (0..atoms.len())
        .map(|p| make_plan(&atoms, &cmps, n_vars, Some(p)))
        .collect();
    let seeded_classes: Vec<Vec<DeltaClass>> = (0..atoms.len())
        .map(|pivot| {
            (0..atoms.len())
                .map(|ai| match ai.cmp(&pivot) {
                    std::cmp::Ordering::Less => DeltaClass::Old,
                    std::cmp::Ordering::Equal => DeltaClass::New,
                    std::cmp::Ordering::Greater => DeltaClass::All,
                })
                .collect()
        })
        .collect();
    CompiledRule {
        n_vars,
        head_witness: head_witness(rule).expect("validated"),
        atoms,
        cmps,
        delta_positions,
        hypothetical: general.clone(),
        general,
        focused,
        general_classes,
        focused_classes,
        seeded,
        seeded_classes,
        never_fires,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use storage::AttrType;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.relation("A", &[("x", AttrType::Int)]);
        s.relation("B", &[("x", AttrType::Int), ("y", AttrType::Int)]);
        s.relation("C", &[("y", AttrType::Int)]);
        s
    }

    fn compile(src: &str) -> CompiledRule {
        let p = parse_program(src).unwrap();
        compile_rule(&schema(), &p.rules[0])
    }

    #[test]
    fn variables_are_shared_across_atoms() {
        let r = compile("delta A(x) :- A(x), B(x, y), C(y).");
        assert_eq!(r.n_vars, 2);
        assert_eq!(r.atoms[0].slots, vec![Slot::Var(0)]);
        assert_eq!(r.atoms[1].slots, vec![Slot::Var(0), Slot::Var(1)]);
        assert_eq!(r.head_witness, 0);
    }

    #[test]
    fn focused_plan_starts_with_focus() {
        let r = compile("delta A(x) :- A(x), delta B(x, y), C(y).");
        assert_eq!(r.delta_positions, vec![1]);
        assert_eq!(r.focused[0].order[0], 1);
        assert_eq!(r.focused_classes[0][1], DeltaClass::New);
    }

    #[test]
    fn plan_covers_all_atoms_once() {
        let r = compile("delta A(x) :- A(x), B(x, y), C(y), delta C(z).");
        let mut o = r.general.order.clone();
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3]);
    }

    #[test]
    fn comparisons_scheduled_when_bound() {
        let r = compile("delta A(x) :- A(x), B(x, y), x < 5, y > 1.");
        let scheduled: usize = r.general.cmps_after.iter().map(Vec::len).sum();
        assert_eq!(scheduled, 2);
        // x < 5 must be checkable as soon as an atom binding x is placed.
        let first_with_cmp = r
            .general
            .cmps_after
            .iter()
            .position(|v| !v.is_empty())
            .unwrap();
        assert_eq!(first_with_cmp, 0);
    }

    #[test]
    fn constant_contradiction_detected() {
        let r = compile("delta A(x) :- A(x), 1 = 2.");
        assert!(r.never_fires);
        let r2 = compile("delta A(x) :- A(x), 1 < 2.");
        assert!(!r2.never_fires);
    }

    #[test]
    fn constants_in_atoms_become_const_slots() {
        let r = compile("delta A(x) :- A(x), B(3, y).");
        assert_eq!(r.atoms[1].slots[0], Slot::Const(Value::Int(3)));
    }

    #[test]
    fn probe_specs_track_boundness_along_the_plan() {
        let r = compile("delta A(x) :- A(x), B(x, y), C(y).");
        // Every atom appears once; whatever the greedy order, the first
        // step binds fresh variables only (no key), and every later step
        // over an atom sharing a variable must probe on it.
        let p = &r.general;
        assert!(!p.probes[0].is_probe());
        assert!(!p.probes[0].bind_cols.is_empty());
        for k in 1..p.order.len() {
            let ai = p.order[k];
            let spec = &p.probes[k];
            // In this rule every later atom shares ≥1 variable with the
            // prefix, so the step must be an index probe.
            assert!(spec.is_probe(), "step {k} (atom {ai}) should probe");
            assert!(spec.key_cols.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(spec.key_cols.len(), spec.key_slots.len());
        }
        // Across key/bind/same, each column of the atom appears exactly once.
        for (k, &ai) in p.order.iter().enumerate() {
            let spec = &p.probes[k];
            let mut cols: Vec<usize> = spec
                .key_cols
                .iter()
                .copied()
                .chain(spec.bind_cols.iter().map(|&(c, _)| c))
                .chain(spec.same_cols.iter().map(|&(c, _)| c))
                .collect();
            cols.sort_unstable();
            assert_eq!(cols, (0..r.atoms[ai].slots.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn constants_join_the_probe_key() {
        let r = compile("delta A(x) :- A(x), B(3, y).");
        // The B atom (wherever it lands in the order) has col 0 = const 3
        // in its key.
        let p = &r.general;
        let k = p.order.iter().position(|&ai| ai == 1).unwrap();
        let spec = &p.probes[k];
        assert!(spec.key_cols.contains(&0));
        let pos = spec.key_cols.iter().position(|&c| c == 0).unwrap();
        assert_eq!(spec.key_slots[pos], Slot::Const(Value::Int(3)));
    }

    #[test]
    fn repeated_fresh_variable_becomes_intra_atom_equality() {
        let r = compile("delta B(x, x) :- B(x, x).");
        let spec = &r.general.probes[0];
        assert_eq!(spec.bind_cols, vec![(0, 0)]);
        assert_eq!(spec.same_cols, vec![(1, 0)]);
        assert!(spec.key_cols.is_empty());
    }

    #[test]
    fn repeated_bound_variable_uses_both_key_columns() {
        // After A(x) binds x, B(x, x) probes on both columns.
        let r = compile("delta A(x) :- A(x), B(x, x).");
        let p = &r.general;
        let k = p.order.iter().position(|&ai| ai == 1).unwrap();
        if k > 0 {
            let spec = &p.probes[k];
            assert_eq!(spec.key_cols, vec![0, 1]);
            assert!(spec.same_cols.is_empty());
        }
    }

    #[test]
    fn seeded_plans_cover_every_pivot_position() {
        let r = compile("delta A(x) :- A(x), delta B(x, y), C(y).");
        assert_eq!(r.seeded.len(), 3);
        for (p, plan) in r.seeded.iter().enumerate() {
            assert_eq!(plan.order[0], p, "pivot leads its seeded plan");
            let mut o = plan.order.clone();
            o.sort_unstable();
            assert_eq!(o, vec![0, 1, 2]);
        }
        assert_eq!(
            r.seeded_classes[1],
            vec![DeltaClass::Old, DeltaClass::New, DeltaClass::All]
        );
    }

    #[test]
    fn general_classes_are_all() {
        let r = compile("delta A(x) :- A(x), delta B(x, y), delta C(y).");
        assert!(r.general_classes.iter().all(|&c| c == DeltaClass::All));
        // Second focus: first delta atom is Old, focus is New.
        assert_eq!(
            r.focused_classes[1],
            vec![DeltaClass::All, DeltaClass::Old, DeltaClass::New]
        );
    }
}

//! Statistics-driven join-order selection.
//!
//! The static planner in [`crate::compile`] scores atoms purely textually
//! (constants and already-bound variables are worth the same no matter how
//! selective they are), which goes badly wrong on skewed data: a constant
//! that matches half the relation is treated like one that matches three
//! rows. This module re-derives every plan's atom order from the exact
//! per-column statistics maintained by the storage layer
//! ([`storage::ColumnStats`]): live cardinalities, distinct-value counts
//! and exact constant frequencies.
//!
//! The model is the textbook one. A step's **fan-out** is the expected
//! number of matching rows per incoming binding:
//!
//! ```text
//! fanout(atom) = live(R) · Π selectivity(col)
//! selectivity  = count_of(col, c)/live(R)   constant column (exact)
//!              = 1/distinct(col)            column probed on a bound var
//! ```
//!
//! Comparisons that become checkable right after the step apply a further
//! factor: exact for `v = const`, `1/distinct` for variable equalities,
//! [`RANGE_SELECTIVITY`] for inequalities. Orders are chosen greedily to
//! minimise the estimated intermediate-result size, ties broken by fan-out
//! and then by the smallest body index — every input is a pure function of
//! the live instance, so the chosen order (and therefore the evaluator's
//! entire behaviour) stays deterministic.
//!
//! The chosen order only ever permutes atoms *within* a plan; the focus /
//! pivot pinning of frontier and seeded plans is preserved, and the
//! atom-indexed [`crate::compile::DeltaClass`] arrays are untouched, so
//! the exactly-once admission argument of semi-naive and change-seeded
//! enumeration is unaffected.

use crate::ast::CmpOp;
use crate::compile::{plan_for_order, CompiledAtom, CompiledCmp, CompiledRule, Slot};
use storage::{FxHashMap, Instance, RelId};

/// Prior fraction of a relation's live rows assumed to populate a delta
/// view when a plan ranges a delta atom under [`crate::eval::Mode::Current`]
/// or `FrozenBase` — the general, frontier and seeded plans. Mirrors (and
/// quantifies) the static planner's "delta relations are usually small"
/// bonus. The **hypothetical** sibling plan
/// ([`crate::compile::CompiledRule::hypothetical`]) is estimated at
/// fraction `1.0` instead: Algorithm 1's enumeration
/// ([`crate::eval::Mode::Hypothetical`]) ranges delta atoms over the
/// *full* relation, and discounting them there buries a huge atom early in
/// the order — the independent semantics then pays for it on every
/// provenance build. One join can genuinely want two orders, which is why
/// the rule carries both plans.
pub const DELTA_FRACTION: f64 = 0.25;

/// Selectivity prior for inequality comparisons (`<`, `<=`, `>`, `>=`),
/// the classic System R third.
pub const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Estimated behaviour of one step of a chosen order.
#[derive(Clone, Debug)]
pub struct StepEstimate {
    /// Body index of the atom placed at this step.
    pub atom: usize,
    /// The atom's relation.
    pub rel: RelId,
    /// Expected matching rows per incoming binding.
    pub fanout: f64,
    /// Expected cumulative bindings after the step.
    pub rows: f64,
}

/// A fully estimated atom order.
#[derive(Clone, Debug)]
pub struct OrderEstimate {
    /// Permutation of body-atom indexes, in evaluation order.
    pub order: Vec<usize>,
    /// Per-step estimates, parallel to `order`.
    pub steps: Vec<StepEstimate>,
    /// Estimated total row visits of the whole plan.
    pub cost: f64,
}

/// Incremental estimation state while growing an order.
struct Search<'a> {
    db: &'a Instance,
    atoms: &'a [CompiledAtom],
    cmps: &'a [CompiledCmp],
    /// Assumed delta-view fraction for delta atoms: [`DELTA_FRACTION`]
    /// for frontier/seeded plans, `1.0` for general plans (hypothetical
    /// regime).
    delta_fraction: f64,
    bound: Vec<bool>,
    cmp_used: Vec<bool>,
}

impl Search<'_> {
    fn new<'a>(
        db: &'a Instance,
        atoms: &'a [CompiledAtom],
        cmps: &'a [CompiledCmp],
        n_vars: usize,
        delta_fraction: f64,
    ) -> Search<'a> {
        Search {
            db,
            atoms,
            cmps,
            delta_fraction,
            bound: vec![false; n_vars],
            cmp_used: vec![false; cmps.len()],
        }
    }

    /// Estimated matching rows of `atom` per incoming binding, given the
    /// variables currently bound, including the selectivity of every
    /// comparison that first becomes checkable once this atom binds.
    fn fanout(&self, ai: usize) -> f64 {
        let atom = &self.atoms[ai];
        let rel = self.db.relation(atom.rel);
        let live = self.db.live_rows(atom.rel) as f64;
        if live == 0.0 {
            return 0.0;
        }
        let mut est = live;
        if atom.is_delta {
            est *= self.delta_fraction;
        }
        // Column of each variable's first occurrence within this atom —
        // used both for intra-atom repeats and to resolve comparison
        // selectivities against the column that binds the variable.
        let mut first_col: FxHashMap<u32, usize> = FxHashMap::default();
        for (col, slot) in atom.slots.iter().enumerate() {
            match slot {
                Slot::Const(v) => est *= rel.value_count(col, v) as f64 / live,
                Slot::Var(x) => {
                    if self.bound[*x as usize] || first_col.contains_key(x) {
                        est /= rel.distinct_count(col).max(1) as f64;
                    } else {
                        first_col.insert(*x, col);
                    }
                }
            }
        }
        // Comparisons checkable right after this atom binds. At least one
        // side involves a variable first bound here (earlier-ready ones
        // were consumed by a previous step).
        let ready = |s: &Slot| match s {
            Slot::Const(_) => true,
            Slot::Var(v) => self.bound[*v as usize] || first_col.contains_key(v),
        };
        for (ci, c) in self.cmps.iter().enumerate() {
            if self.cmp_used[ci] || !ready(&c.lhs) || !ready(&c.rhs) {
                continue;
            }
            est *= self.cmp_selectivity(c, rel, live, &first_col);
        }
        est
    }

    fn cmp_selectivity(
        &self,
        c: &CompiledCmp,
        rel: &storage::Relation,
        live: f64,
        first_col: &FxHashMap<u32, usize>,
    ) -> f64 {
        // The column (in this atom) binding a comparison side, if any.
        let col_of = |s: &Slot| match s {
            Slot::Var(v) => first_col.get(v).copied(),
            Slot::Const(_) => None,
        };
        let const_of = |s: &Slot| match s {
            Slot::Const(v) => Some(*v),
            Slot::Var(_) => None,
        };
        match c.op {
            CmpOp::Eq => {
                // `v = const` with v bound here: exact frequency.
                for (a, b) in [(&c.lhs, &c.rhs), (&c.rhs, &c.lhs)] {
                    if let (Some(col), Some(v)) = (col_of(a), const_of(b)) {
                        return rel.value_count(col, &v) as f64 / live;
                    }
                }
                // Variable equality: uniform over the distinct values of
                // whichever side this atom binds.
                col_of(&c.lhs)
                    .or_else(|| col_of(&c.rhs))
                    .map_or(1.0, |col| 1.0 / rel.distinct_count(col).max(1) as f64)
            }
            CmpOp::Ne => 1.0,
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => RANGE_SELECTIVITY,
        }
    }

    /// Commit `atom` as the next step: bind its variables and retire the
    /// comparisons that became checkable.
    fn place(&mut self, ai: usize) {
        for s in &self.atoms[ai].slots {
            if let Slot::Var(v) = s {
                self.bound[*v as usize] = true;
            }
        }
        let ready = |s: &Slot, bound: &[bool]| match s {
            Slot::Const(_) => true,
            Slot::Var(v) => bound[*v as usize],
        };
        for (ci, c) in self.cmps.iter().enumerate() {
            if !self.cmp_used[ci] && ready(&c.lhs, &self.bound) && ready(&c.rhs, &self.bound) {
                self.cmp_used[ci] = true;
            }
        }
    }
}

/// Estimate a *given* order without changing it — the data behind
/// `delta-repair explain` and the W103 blow-up estimate.
/// `delta_fraction` must match the regime the order was chosen for
/// (`1.0` for general plans, [`DELTA_FRACTION`] for frontier/seeded).
pub fn estimate_order(
    db: &Instance,
    atoms: &[CompiledAtom],
    cmps: &[CompiledCmp],
    n_vars: usize,
    order: &[usize],
    delta_fraction: f64,
) -> OrderEstimate {
    let mut s = Search::new(db, atoms, cmps, n_vars, delta_fraction);
    let mut rows = 1.0_f64;
    let mut cost = 0.0_f64;
    let mut steps = Vec::with_capacity(order.len());
    for &ai in order {
        let fanout = s.fanout(ai);
        cost += rows * (1.0 + fanout);
        rows *= fanout;
        steps.push(StepEstimate {
            atom: ai,
            rel: atoms[ai].rel,
            fanout,
            rows,
        });
        s.place(ai);
    }
    OrderEstimate {
        order: order.to_vec(),
        steps,
        cost,
    }
}

/// Pick an atom order greedily by minimum estimated intermediate-result
/// size (ties: smaller fan-out, then smaller body index). `first` pins the
/// leading atom — the frontier focus or change-seed pivot — whose position
/// the exactly-once admission partition depends on.
pub fn choose_order(
    db: &Instance,
    atoms: &[CompiledAtom],
    cmps: &[CompiledCmp],
    n_vars: usize,
    first: Option<usize>,
    delta_fraction: f64,
) -> OrderEstimate {
    let n = atoms.len();
    let mut s = Search::new(db, atoms, cmps, n_vars, delta_fraction);
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut rows = 1.0_f64;
    let mut cost = 0.0_f64;
    let mut steps = Vec::with_capacity(n);
    if let Some(f) = first {
        let fanout = s.fanout(f);
        cost += 1.0 + fanout;
        rows = fanout;
        steps.push(StepEstimate {
            atom: f,
            rel: atoms[f].rel,
            fanout,
            rows,
        });
        order.push(f);
        used[f] = true;
        s.place(f);
    }
    while order.len() < n {
        let mut best: Option<(f64, f64, usize)> = None;
        for (ai, &taken) in used.iter().enumerate() {
            if taken {
                continue;
            }
            let fanout = s.fanout(ai);
            let key = (rows * fanout, fanout, ai);
            let better = match &best {
                None => true,
                Some(b) => key.0.total_cmp(&b.0).then(key.1.total_cmp(&b.1)).is_lt(),
            };
            if better {
                best = Some(key);
            }
        }
        let (new_rows, fanout, ai) = best.expect("atom available");
        cost += rows * (1.0 + fanout);
        rows = new_rows;
        steps.push(StepEstimate {
            atom: ai,
            rel: atoms[ai].rel,
            fanout,
            rows,
        });
        order.push(ai);
        used[ai] = true;
        s.place(ai);
    }
    OrderEstimate { order, steps, cost }
}

/// Re-derive every plan of `cr` — general, per-focus frontier, per-pivot
/// seeded — from the instance's live statistics. Pin positions and the
/// atom-indexed delta-class arrays are preserved, so only the join order
/// (and the probe specs it implies) changes.
pub fn reorder_rule(db: &Instance, cr: &mut CompiledRule) {
    // General plan: current/frozen-base regime, delta views small.
    let est = choose_order(db, &cr.atoms, &cr.cmps, cr.n_vars, None, DELTA_FRACTION);
    cr.general = plan_for_order(&cr.atoms, &cr.cmps, cr.n_vars, est.order);
    // Hypothetical sibling: Algorithm 1 ranges delta atoms over the full
    // relation, so size them at fraction 1.0. Identical to the general
    // plan for delta-free bodies (the fraction never applies).
    cr.hypothetical = if cr.delta_positions.is_empty() {
        cr.general.clone()
    } else {
        let est = choose_order(db, &cr.atoms, &cr.cmps, cr.n_vars, None, 1.0);
        plan_for_order(&cr.atoms, &cr.cmps, cr.n_vars, est.order)
    };
    for (i, &focus) in cr.delta_positions.iter().enumerate() {
        let est = choose_order(
            db,
            &cr.atoms,
            &cr.cmps,
            cr.n_vars,
            Some(focus),
            DELTA_FRACTION,
        );
        cr.focused[i] = plan_for_order(&cr.atoms, &cr.cmps, cr.n_vars, est.order);
    }
    for p in 0..cr.atoms.len() {
        let est = choose_order(db, &cr.atoms, &cr.cmps, cr.n_vars, Some(p), DELTA_FRACTION);
        cr.seeded[p] = plan_for_order(&cr.atoms, &cr.cmps, cr.n_vars, est.order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_rule;
    use crate::parser::parse_program;
    use storage::{AttrType, Schema, Value};

    fn setup() -> (Schema, Instance) {
        let mut s = Schema::new();
        s.relation("Big", &[("x", AttrType::Int), ("k", AttrType::Int)]);
        s.relation("Small", &[("x", AttrType::Int)]);
        let mut db = Instance::new(s.clone());
        for i in 0..1000 {
            // k is 0 for almost every row, 7 for just two rows.
            let k = if i % 500 == 0 { 7 } else { 0 };
            db.insert_values("Big", [Value::Int(i), Value::Int(k)])
                .unwrap();
        }
        for i in 0..10 {
            db.insert_values("Small", [Value::Int(i)]).unwrap();
        }
        (s, db)
    }

    fn rule(s: &Schema, src: &str) -> CompiledRule {
        let p = parse_program(src).unwrap();
        compile_rule(s, &p.rules[0])
    }

    #[test]
    fn selective_constant_beats_textual_order() {
        let (s, db) = setup();
        // Textually `Big` comes first and the static planner keeps it
        // (all scores tie at zero); the stats know Big(x, 7) has 2 rows.
        let cr = rule(&s, "delta Small(x) :- Small(x), Big(x, 7).");
        let est = choose_order(&db, &cr.atoms, &cr.cmps, cr.n_vars, None, 1.0);
        assert_eq!(est.order[0], 1, "drive from the 2-row constant probe");
        assert!(est.steps[0].fanout <= 2.5, "fanout {}", est.steps[0].fanout);
    }

    #[test]
    fn eq_comparison_uses_exact_frequency() {
        let (s, db) = setup();
        let cr = rule(&s, "delta Small(x) :- Small(x), Big(x, k), k = 7.");
        let est = choose_order(&db, &cr.atoms, &cr.cmps, cr.n_vars, None, 1.0);
        // Big with k = 7 applied estimates 2 rows — cheaper than the
        // 10-row Small scan times a per-x probe.
        assert_eq!(est.order[0], 1);
    }

    #[test]
    fn pinned_focus_stays_first() {
        let (s, db) = setup();
        let cr = rule(&s, "delta Small(x) :- Small(x), delta Big(x, k).");
        for (i, &focus) in cr.delta_positions.iter().enumerate() {
            let est = choose_order(
                &db,
                &cr.atoms,
                &cr.cmps,
                cr.n_vars,
                Some(focus),
                DELTA_FRACTION,
            );
            assert_eq!(est.order[0], focus, "focus {i} pinned");
        }
    }

    #[test]
    fn reorder_preserves_pins_and_classes() {
        let (s, db) = setup();
        let mut cr = rule(
            &s,
            "delta Small(x) :- Small(x), delta Big(x, k), Big(y, k).",
        );
        let classes_before = cr.seeded_classes.clone();
        reorder_rule(&db, &mut cr);
        for (i, &focus) in cr.delta_positions.iter().enumerate() {
            assert_eq!(cr.focused[i].order[0], focus);
        }
        for (p, plan) in cr.seeded.iter().enumerate() {
            assert_eq!(plan.order[0], p);
            let mut o = plan.order.clone();
            o.sort_unstable();
            assert_eq!(o, (0..cr.atoms.len()).collect::<Vec<_>>());
        }
        assert_eq!(
            cr.seeded_classes, classes_before,
            "classes are atom-indexed"
        );
    }

    #[test]
    fn estimates_are_deterministic() {
        let (s, db) = setup();
        let cr = rule(&s, "delta Small(x) :- Small(x), Big(x, k), k = 7.");
        let a = choose_order(&db, &cr.atoms, &cr.cmps, cr.n_vars, None, 1.0);
        let b = choose_order(&db, &cr.atoms, &cr.cmps, cr.n_vars, None, 1.0);
        assert_eq!(a.order, b.order);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }

    #[test]
    fn empty_relation_estimates_zero() {
        let mut s = Schema::new();
        s.relation("E", &[("x", AttrType::Int)]);
        let db = Instance::new(s.clone());
        let cr = rule(&s, "delta E(x) :- E(x).");
        let est = choose_order(&db, &cr.atoms, &cr.cmps, cr.n_vars, None, 1.0);
        assert_eq!(est.steps[0].fanout, 0.0);
    }
}

//! Denial constraints and their translation to delta rules — the
//! expressiveness argument of Section 3.6.
//!
//! A denial constraint (DC) is a first-order statement
//!
//! ```text
//! ∀x̄ ¬( R1(x̄1) ∧ … ∧ Rm(x̄m) ∧ φ(x̄) )
//! ```
//!
//! where `φ` is a conjunction of comparisons. The paper shows delta rules
//! capture DCs: pick any atom `Ri(x̄i)` as the head and write
//!
//! ```text
//! ΔRi(x̄i) :- R1(x̄1), …, Rm(x̄m), φ
//! ```
//!
//! * under **independent semantics** a single rule (any head) yields the
//!   minimum repair: at least one tuple of every violating set is deleted;
//! * under **step semantics** one rule *per atom* lets the fine-grained
//!   executor choose which member of each violating set to delete
//!   ([`DenialConstraint::to_program_per_atom`]).
//!
//! [`DenialConstraint::parse`] accepts the natural headless syntax
//! `:- Author(a1, n1), Author(a2, n2), a1 = a2, n1 != n2.`

use crate::ast::{Atom, Comparison, Program, Rule};
use crate::error::DatalogError;
use crate::parser::parse_body;
use std::fmt;

/// A denial constraint: a conjunction of positive atoms and comparisons
/// that must never be jointly satisfiable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DenialConstraint {
    /// The relational atoms `R1(x̄1), …, Rm(x̄m)` (never delta atoms).
    pub atoms: Vec<Atom>,
    /// The comparison conjunction `φ`.
    pub comparisons: Vec<Comparison>,
}

impl DenialConstraint {
    /// Build from parts. Errors when `atoms` is empty or contains a delta
    /// atom (DC bodies range over the *current* database only).
    pub fn new(atoms: Vec<Atom>, comparisons: Vec<Comparison>) -> Result<Self, DatalogError> {
        if atoms.is_empty() {
            return Err(DatalogError::InvalidConstraint(
                "a denial constraint needs at least one relational atom".into(),
            ));
        }
        if let Some(a) = atoms.iter().find(|a| a.is_delta) {
            return Err(DatalogError::InvalidConstraint(format!(
                "denial constraints cannot mention delta atoms (found `{a}`)"
            )));
        }
        Ok(DenialConstraint { atoms, comparisons })
    }

    /// Parse the headless syntax, e.g.
    /// `:- Pub(p1, t, c1), Pub(p2, t, c2), c1 != c2.`
    pub fn parse(src: &str) -> Result<Self, DatalogError> {
        let (atoms, comparisons) = parse_body(src)?;
        DenialConstraint::new(atoms, comparisons)
    }

    /// The delta rule with `atoms[target]` as head (Section 3.6's
    /// translation). Panics if `target` is out of range.
    pub fn to_delta_rule(&self, target: usize) -> Rule {
        let mut head = self.atoms[target].clone();
        head.is_delta = true;
        Rule::new(head, self.atoms.clone(), self.comparisons.clone())
    }

    /// A one-rule program with the given head atom — the translation used
    /// for independent semantics, where the choice of head does not matter.
    pub fn to_program_single(&self, target: usize) -> Program {
        Program::new(vec![self.to_delta_rule(target)])
    }

    /// One rule per atom — the translation that lets *step semantics*
    /// delete any tuple of each violating set ("we will have m rules and
    /// each will have as a head one of the atoms participating in the DC").
    pub fn to_program_per_atom(&self) -> Program {
        Program::new(
            (0..self.atoms.len())
                .map(|i| self.to_delta_rule(i))
                .collect(),
        )
    }

    /// Compile several DCs into one program, one rule per atom per DC.
    pub fn compile_all(dcs: &[DenialConstraint]) -> Program {
        Program::new(
            dcs.iter()
                .flat_map(|dc| (0..dc.atoms.len()).map(|i| dc.to_delta_rule(i)))
                .collect(),
        )
    }
}

impl fmt::Display for DenialConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":- ")?;
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        for c in &self.comparisons {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc1() -> DenialConstraint {
        DenialConstraint::parse(":- Author(a1, n1, o1), Author(a2, n2, o2), a1 = a2, o1 != o2.")
            .expect("DC parses")
    }

    #[test]
    fn parse_accepts_headless_bodies_with_and_without_turnstile() {
        let a = dc1();
        let b =
            DenialConstraint::parse("Author(a1, n1, o1), Author(a2, n2, o2), a1 = a2, o1 != o2")
                .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.atoms.len(), 2);
        assert_eq!(a.comparisons.len(), 2);
    }

    #[test]
    fn parse_rejects_empty_and_delta_bodies() {
        assert!(DenialConstraint::parse(":- a1 = a2.").is_err());
        assert!(DenialConstraint::parse(":- R(x), delta S(x).").is_err());
        assert!(DenialConstraint::parse(":- R(x), S(x) extra").is_err());
    }

    #[test]
    fn to_delta_rule_heads_the_chosen_atom() {
        let dc = dc1();
        let r0 = dc.to_delta_rule(0);
        assert!(r0.head.is_delta);
        assert_eq!(r0.head.relation, "Author");
        assert_eq!(r0.head.terms, dc.atoms[0].terms);
        assert_eq!(r0.body.len(), 2);
        assert_eq!(r0.comparisons.len(), 2);
        let r1 = dc.to_delta_rule(1);
        assert_eq!(r1.head.terms, dc.atoms[1].terms);
    }

    #[test]
    fn per_atom_program_has_one_rule_per_atom() {
        let p = dc1().to_program_per_atom();
        assert_eq!(p.len(), 2);
        assert_ne!(p.rules[0].head.terms, p.rules[1].head.terms);
    }

    #[test]
    fn compile_all_concatenates() {
        let other = DenialConstraint::parse(":- Org(o, n1), Org(o, n2), n1 != n2.").unwrap();
        let p = DenialConstraint::compile_all(&[dc1(), other]);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn display_round_trips_through_parse() {
        let dc = dc1();
        let printed = dc.to_string();
        let re = DenialConstraint::parse(&printed).unwrap();
        assert_eq!(dc, re);
    }
}

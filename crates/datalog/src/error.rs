//! Errors for parsing, validation and planning.

use std::fmt;

/// Errors raised by the datalog layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// Lexical or grammatical error with 1-based line/column.
    Syntax {
        line: usize,
        col: usize,
        msg: String,
    },
    /// A rule referenced a relation missing from the schema.
    UnknownRelation(String),
    /// Atom arity does not match the schema.
    Arity {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// Head of a rule must be a delta atom.
    HeadNotDelta(String),
    /// Definition 3.1: the body must contain the base atom `Ri(X)` with the
    /// head's exact argument vector.
    MissingHeadWitness(String),
    /// A head or comparison variable does not occur in any body atom.
    UnsafeVariable { rule: String, var: String },
    /// Constant has the wrong type for its column.
    TypeMismatch { relation: String, column: usize },
    /// A denial constraint was structurally invalid.
    InvalidConstraint(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Syntax { line, col, msg } => {
                write!(f, "syntax error at {line}:{col}: {msg}")
            }
            DatalogError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            DatalogError::Arity {
                relation,
                expected,
                got,
            } => write!(f, "atom `{relation}` expects {expected} terms, got {got}"),
            DatalogError::HeadNotDelta(r) => {
                write!(f, "rule head `{r}` must be a delta atom (Def. 3.1)")
            }
            DatalogError::MissingHeadWitness(r) => write!(
                f,
                "rule for `Δ{r}` must repeat the head arguments in a positive `{r}` body atom (Def. 3.1)"
            ),
            DatalogError::UnsafeVariable { rule, var } => {
                write!(f, "variable `{var}` in rule `{rule}` is not bound by any body atom")
            }
            DatalogError::TypeMismatch { relation, column } => {
                write!(f, "constant in `{relation}` column {column} has the wrong type")
            }
            DatalogError::InvalidConstraint(msg) => {
                write!(f, "invalid denial constraint: {msg}")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

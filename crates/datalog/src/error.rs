//! Errors for parsing, validation and planning.

use crate::ast::Span;
use std::fmt;

/// Errors raised by the datalog layer.
///
/// Validation errors carry the [`Span`] of the offending atom or rule when
/// the program was parsed from text (programs built programmatically have
/// no spans, so the field is optional everywhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// Lexical or grammatical error with 1-based line/column.
    Syntax {
        line: usize,
        col: usize,
        msg: String,
    },
    /// A rule referenced a relation missing from the schema.
    UnknownRelation {
        relation: String,
        span: Option<Span>,
    },
    /// Atom arity does not match the schema.
    Arity {
        relation: String,
        expected: usize,
        got: usize,
        span: Option<Span>,
    },
    /// Head of a rule must be a delta atom.
    HeadNotDelta {
        relation: String,
        span: Option<Span>,
    },
    /// Definition 3.1: the body must contain the base atom `Ri(X)` with the
    /// head's exact argument vector.
    MissingHeadWitness {
        relation: String,
        span: Option<Span>,
    },
    /// A head or comparison variable does not occur in any body atom.
    UnsafeVariable {
        rule: String,
        var: String,
        span: Option<Span>,
    },
    /// Constant has the wrong type for its column.
    TypeMismatch {
        relation: String,
        column: usize,
        span: Option<Span>,
    },
    /// A denial constraint was structurally invalid.
    InvalidConstraint(String),
}

impl DatalogError {
    /// The source span the error points at, if the program carried one.
    pub fn span(&self) -> Option<Span> {
        match self {
            DatalogError::Syntax { line, col, .. } => Some(Span {
                line: *line,
                col: *col,
            }),
            DatalogError::UnknownRelation { span, .. }
            | DatalogError::Arity { span, .. }
            | DatalogError::HeadNotDelta { span, .. }
            | DatalogError::MissingHeadWitness { span, .. }
            | DatalogError::UnsafeVariable { span, .. }
            | DatalogError::TypeMismatch { span, .. } => *span,
            DatalogError::InvalidConstraint(_) => None,
        }
    }
}

/// Render ` at line:col` when a span is present.
fn at(span: &Option<Span>) -> String {
    span.map(|s| format!(" at {s}")).unwrap_or_default()
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Syntax { line, col, msg } => {
                write!(f, "syntax error at {line}:{col}: {msg}")
            }
            DatalogError::UnknownRelation { relation, span } => {
                write!(f, "unknown relation `{relation}`{}", at(span))
            }
            DatalogError::Arity {
                relation,
                expected,
                got,
                span,
            } => write!(
                f,
                "atom `{relation}`{} expects {expected} terms, got {got}",
                at(span)
            ),
            DatalogError::HeadNotDelta { relation, span } => {
                write!(
                    f,
                    "rule head `{relation}`{} must be a delta atom (Def. 3.1)",
                    at(span)
                )
            }
            DatalogError::MissingHeadWitness { relation, span } => write!(
                f,
                "rule for `Δ{relation}`{} must repeat the head arguments in a positive `{relation}` body atom (Def. 3.1)",
                at(span)
            ),
            DatalogError::UnsafeVariable { rule, var, span } => {
                write!(
                    f,
                    "variable `{var}` in rule `{rule}`{} is not bound by any body atom",
                    at(span)
                )
            }
            DatalogError::TypeMismatch {
                relation,
                column,
                span,
            } => {
                write!(
                    f,
                    "constant in `{relation}` column {column}{} has the wrong type",
                    at(span)
                )
            }
            DatalogError::InvalidConstraint(msg) => {
                write!(f, "invalid denial constraint: {msg}")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

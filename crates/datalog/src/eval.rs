//! Assignment enumeration over instance + state.
//!
//! An *assignment* (Section 2 of the paper) maps every body atom of a rule to
//! a tuple of the database, consistently on variables and constants, with all
//! comparisons satisfied. All four repair semantics, both repair algorithms
//! and the stability check reduce to enumerating assignments under one of
//! three views:
//!
//! * [`Mode::Current`] — base atoms range over tuples *present* in `R_i`,
//!   delta atoms over the current `Δ_i` (stage/step evaluation, stability).
//! * [`Mode::FrozenBase`] — base atoms range over the *original* `R_i`
//!   regardless of deletions, delta atoms over the current `Δ_i` (end
//!   semantics, Def. 3.10, where `R_i^t ← R_i^0` during evaluation).
//! * [`Mode::Hypothetical`] — base *and* delta atoms range over all of `D`
//!   (Algorithm 1 generates provenance "for each possible delta tuple, not
//!   only ones that can be derived").
//!
//! The join core executes the probe plans precompiled by
//! [`crate::compile`]: each step of a plan knows statically which columns
//! are bound (and probes a composite index keyed on *all* of them), which
//! columns bind fresh variables, and which comparisons become checkable.
//! The inner loop performs **no heap allocation per visited row or emitted
//! assignment** — variable bindings, chosen tuples, probe keys and the
//! emission buffer live in an [`EvalScratch`] reused across rounds.

use crate::ast::Program;
use crate::compile::{compile_rule, CompiledAtom, CompiledRule, DeltaClass, Plan, Slot};
use crate::error::DatalogError;
use crate::validate::validate_program;
use storage::{BitSet, Instance, RelId, State, TupleId, Value};

/// Which tuples the body atoms may bind to. See module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Live view: present base tuples, current deltas.
    Current,
    /// End-semantics view: original base tuples, current deltas.
    FrozenBase,
    /// Algorithm-1 view: every tuple is both present and hypothetically
    /// deleted.
    Hypothetical,
}

/// The set of delta tuples derived in the previous round, used to drive
/// semi-naive evaluation of end semantics.
#[derive(Clone, Debug)]
pub struct DeltaFrontier {
    sets: Vec<BitSet>,
}

impl DeltaFrontier {
    /// Empty frontier shaped like `db`.
    pub fn empty(db: &Instance) -> DeltaFrontier {
        DeltaFrontier {
            sets: db
                .schema()
                .iter()
                .map(|(rid, _)| BitSet::zeros(db.rows(rid)))
                .collect(),
        }
    }

    /// Add a tuple to the frontier.
    pub fn insert(&mut self, tid: TupleId) {
        self.sets[tid.rel.idx()].set(tid.row_idx());
    }

    /// Frontier membership.
    #[inline]
    pub fn contains(&self, tid: TupleId) -> bool {
        self.sets[tid.rel.idx()].get(tid.row_idx())
    }

    /// True when no tuple is in the frontier.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(BitSet::none)
    }

    /// Iterate frontier tuples of one relation.
    pub fn rows(&self, rel: RelId) -> impl Iterator<Item = TupleId> + '_ {
        self.sets[rel.idx()]
            .iter_ones()
            .map(move |row| TupleId::new(rel, row as u32))
    }

    /// Does the frontier contain any tuple of `rel`? Lets seeded
    /// enumeration skip pivot positions whose relation saw no change.
    pub fn touches(&self, rel: RelId) -> bool {
        !self.sets[rel.idx()].none()
    }
}

/// How one enumeration restricts atoms to a distinguished tuple set.
///
/// [`Focus::Frontier`] is the classic semi-naive round: the per-atom
/// [`DeltaClass`]es constrain **delta atoms only**, against the previous
/// round's newly derived tuples. [`Focus::Seed`] is the change-seeded round
/// of incremental maintenance: the classes constrain **every** atom against
/// the seed set (a mutation batch), on top of the ordinary view admission —
/// the pivot ranges over the seed, earlier positions exclude it, later ones
/// are unrestricted, so an assignment touching `k` changed tuples is
/// produced exactly once.
#[derive(Clone, Copy)]
enum Focus<'a> {
    /// No distinguished set; classes are ignored (all `All`).
    None,
    /// Semi-naive frontier round over newly derived delta tuples.
    Frontier(&'a DeltaFrontier),
    /// Change-seeded round over a set of mutated EDB tuples.
    Seed(&'a DeltaFrontier),
}

/// One body-atom binding of an assignment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BodyBind {
    /// The tuple the atom was mapped to.
    pub tid: TupleId,
    /// Was the atom a delta atom (so `tid` refers to `Δ(t)` rather than `t`)?
    pub is_delta: bool,
}

/// A satisfying assignment `α : body(r) → D` for rule `rule` (index into the
/// program), together with the derived head tuple `α(head(r))`.
///
/// Because of the head-witness requirement (Def. 3.1), the head tuple always
/// equals the binding of the witness atom, so `head` is a [`TupleId`] of an
/// existing tuple — never a fresh tuple.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Assignment {
    /// Rule index within the program.
    pub rule: usize,
    /// The derived delta tuple (`Δ(head)`).
    pub head: TupleId,
    /// Body bindings in source order.
    pub body: Vec<BodyBind>,
}

const DUMMY_TID: TupleId = TupleId {
    rel: RelId(0),
    row: 0,
};

/// Reusable buffers for the join core: variable bindings, per-atom chosen
/// tuples, the probe-key stack and the emission buffer. One scratch serves
/// any number of rules and rounds; the fixpoint driver allocates it once
/// per run and the enumeration allocates nothing per row or assignment.
#[derive(Debug)]
pub struct EvalScratch {
    /// Value of each rule-local variable. Statically bound-before-use, so
    /// no `Option` and no undo trail is needed.
    bind: Vec<Value>,
    /// Tuple chosen for each body atom (source order).
    chosen: Vec<TupleId>,
    /// Probe keys, stack-disciplined across recursion depths.
    key: Vec<Value>,
    /// The assignment handed to callbacks; its body vector is reused.
    asg: Assignment,
}

impl Default for EvalScratch {
    fn default() -> EvalScratch {
        EvalScratch::new()
    }
}

impl EvalScratch {
    /// Fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> EvalScratch {
        EvalScratch {
            bind: Vec::new(),
            chosen: Vec::new(),
            key: Vec::new(),
            asg: Assignment {
                rule: 0,
                head: DUMMY_TID,
                body: Vec::new(),
            },
        }
    }
}

/// A validated and compiled delta program whose probe plans have **not**
/// yet been bound to concrete indexes — the output of the planning phase.
///
/// [`Evaluator::new`] fuses the two phases; callers that own the instance
/// long-term (a repair session) plan first against the schema alone, then
/// decide when to pay for index construction:
///
/// ```
/// # use datalog::{parse_program, PlannedProgram};
/// # use storage::{AttrType, Instance, Schema, Value};
/// # let mut s = Schema::new();
/// # s.relation("R", &[("x", AttrType::Int)]);
/// # let mut db = Instance::new(s);
/// # db.insert_values("R", [Value::Int(1)]).unwrap();
/// let program = parse_program("delta R(x) :- R(x), x = 1.").unwrap();
/// let planned = PlannedProgram::plan(db.schema(), program)?; // no db access
/// let ev = planned.into_evaluator(&mut db); // builds the probe indexes
/// # assert_eq!(ev.num_rules(), 1);
/// # Ok::<(), datalog::DatalogError>(())
/// ```
pub struct PlannedProgram {
    program: Program,
    compiled: Vec<CompiledRule>,
}

impl PlannedProgram {
    /// Validate `program` against `schema` and compile join plans. Pure
    /// with respect to the data: only the schema is consulted.
    pub fn plan(
        schema: &storage::Schema,
        program: Program,
    ) -> Result<PlannedProgram, DatalogError> {
        validate_program(schema, &program)?;
        let compiled: Vec<CompiledRule> = program
            .rules
            .iter()
            .map(|r| compile_rule(schema, r))
            .collect();
        Ok(PlannedProgram { program, compiled })
    }

    /// The planned program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of rules.
    pub fn num_rules(&self) -> usize {
        self.compiled.len()
    }

    /// Bind every probing plan step to a concrete composite index on `db`,
    /// building missing indexes now. Uses the default
    /// [`PlanStrategy::CostBased`]: join orders are re-derived from the
    /// instance's live column statistics before index resolution.
    pub fn into_evaluator(self, db: &mut Instance) -> Evaluator {
        self.into_evaluator_with(db, PlanStrategy::CostBased)
    }

    /// [`PlannedProgram::into_evaluator`] with an explicit planning
    /// strategy. This is the only part of evaluator construction that
    /// touches the instance: under [`PlanStrategy::CostBased`] every plan's
    /// atom order is recomputed from live statistics (focus/pivot pins and
    /// delta-class partitions preserved), then every probing step is bound
    /// to a concrete composite index, built now if missing. Subsequent
    /// inserts and deletes maintain both the indexes and the statistics
    /// incrementally; re-planning is only worthwhile when cardinalities
    /// drift far from their plan-time snapshot (see
    /// [`Evaluator::plan_drift`]).
    pub fn into_evaluator_with(mut self, db: &mut Instance, strategy: PlanStrategy) -> Evaluator {
        fn resolve(db: &mut Instance, atoms: &[CompiledAtom], plan: &mut Plan) {
            for k in 0..plan.order.len() {
                let rel = atoms[plan.order[k]].rel;
                let spec = &mut plan.probes[k];
                if spec.is_probe() {
                    spec.index = db.ensure_composite_index(rel, &spec.key_cols);
                }
            }
        }
        if strategy == PlanStrategy::CostBased {
            for cr in &mut self.compiled {
                if !cr.never_fires {
                    crate::cost::reorder_rule(db, cr);
                }
            }
        }
        let planned_live: Vec<usize> = (0..db.schema().len())
            .map(|i| db.live_rows(storage::RelId(i as u16)))
            .collect();
        for cr in &mut self.compiled {
            let CompiledRule {
                atoms,
                general,
                hypothetical,
                focused,
                seeded,
                ..
            } = cr;
            resolve(db, atoms, general);
            resolve(db, atoms, hypothetical);
            for plan in focused {
                resolve(db, atoms, plan);
            }
            for plan in seeded {
                resolve(db, atoms, plan);
            }
        }
        Evaluator {
            program: self.program,
            compiled: self.compiled,
            strategy,
            planned_live,
        }
    }
}

/// How [`PlannedProgram::into_evaluator_with`] picks join orders.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PlanStrategy {
    /// The textual greedy order of [`crate::compile`]: constants and bound
    /// variables score alike regardless of selectivity. Kept as the
    /// baseline for benchmarks and plan-parity tests.
    Static,
    /// Orders re-derived from live per-column statistics at evaluator
    /// construction time (see [`crate::cost`]).
    #[default]
    CostBased,
}

/// A validated, compiled, index-prepared delta program ready for repeated
/// evaluation.
pub struct Evaluator {
    program: Program,
    compiled: Vec<CompiledRule>,
    strategy: PlanStrategy,
    /// Per-relation live cardinality at plan time — the fingerprint
    /// [`Evaluator::plan_drift`] compares against to decide whether the
    /// cost-based orders are stale.
    planned_live: Vec<usize>,
}

impl Evaluator {
    /// Validate `program` against the schema of `db`, compile join plans and
    /// build every composite hash index the plans will probe — the fused
    /// [`PlannedProgram::plan`] + [`PlannedProgram::into_evaluator`].
    pub fn new(db: &mut Instance, program: Program) -> Result<Evaluator, DatalogError> {
        Ok(PlannedProgram::plan(db.schema(), program)?.into_evaluator(db))
    }

    /// [`Evaluator::new`] pinned to the static textual planner.
    pub fn new_static(db: &mut Instance, program: Program) -> Result<Evaluator, DatalogError> {
        Ok(PlannedProgram::plan(db.schema(), program)?
            .into_evaluator_with(db, PlanStrategy::Static))
    }

    /// The strategy the evaluator's plans were derived with.
    pub fn strategy(&self) -> PlanStrategy {
        self.strategy
    }

    /// Largest per-relation drift ratio between the live cardinalities at
    /// plan time and now. A relation that grew from `a` to `b` live rows
    /// contributes `max(a+1, b+1) / min(a+1, b+1)` (add-one smoothed so
    /// empty↔non-empty transitions register). `1.0` means no drift;
    /// sessions re-plan when this crosses their threshold.
    pub fn plan_drift(&self, db: &Instance) -> f64 {
        self.planned_live
            .iter()
            .enumerate()
            .map(|(i, &then)| {
                let now = db.live_rows(storage::RelId(i as u16));
                let (lo, hi) = if then <= now {
                    (then, now)
                } else {
                    (now, then)
                };
                (hi + 1) as f64 / (lo + 1) as f64
            })
            .fold(1.0, f64::max)
    }

    /// The compiled form of rule `idx` — the chosen plans, estimates'
    /// inputs and probe specs. Read-only; used by `explain` and the lints.
    pub fn compiled_rule(&self, idx: usize) -> &CompiledRule {
        &self.compiled[idx]
    }

    /// The program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of rules.
    pub fn num_rules(&self) -> usize {
        self.compiled.len()
    }

    /// Enumerate every assignment of every rule under `mode`. The callback
    /// returns `true` to continue; the function returns `false` iff the
    /// callback aborted.
    pub fn for_each_assignment(
        &self,
        db: &Instance,
        state: &State,
        mode: Mode,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        self.for_each_assignment_with(db, state, mode, &mut EvalScratch::new(), f)
    }

    /// [`Evaluator::for_each_assignment`] with caller-provided scratch.
    pub fn for_each_assignment_with(
        &self,
        db: &Instance,
        state: &State,
        mode: Mode,
        scratch: &mut EvalScratch,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        for idx in 0..self.compiled.len() {
            if !self.for_each_rule_assignment_with(idx, db, state, mode, scratch, f) {
                return false;
            }
        }
        true
    }

    /// Enumerate assignments of one rule under `mode`.
    pub fn for_each_rule_assignment(
        &self,
        rule_idx: usize,
        db: &Instance,
        state: &State,
        mode: Mode,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        self.for_each_rule_assignment_with(rule_idx, db, state, mode, &mut EvalScratch::new(), f)
    }

    /// [`Evaluator::for_each_rule_assignment`] with caller-provided scratch.
    pub fn for_each_rule_assignment_with(
        &self,
        rule_idx: usize,
        db: &Instance,
        state: &State,
        mode: Mode,
        scratch: &mut EvalScratch,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        let cr = &self.compiled[rule_idx];
        if cr.never_fires {
            return true;
        }
        // Hypothetical mode ranges delta atoms over the full relation, so
        // it gets the plan sized for that regime (identical admission
        // semantics, possibly a different join order).
        let plan = match mode {
            Mode::Hypothetical => &cr.hypothetical,
            Mode::Current | Mode::FrozenBase => &cr.general,
        };
        run_plan(
            db,
            state,
            mode,
            rule_idx,
            cr,
            plan,
            &cr.general_classes,
            Focus::None,
            scratch,
            f,
        )
    }

    /// Enumerate, for rules **without** delta atoms in the body, every
    /// assignment under `mode`. This is round 1 of semi-naive evaluation.
    pub fn for_each_base_rule_assignment(
        &self,
        db: &Instance,
        state: &State,
        mode: Mode,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        self.for_each_base_rule_assignment_with(db, state, mode, &mut EvalScratch::new(), f)
    }

    /// [`Evaluator::for_each_base_rule_assignment`] with caller scratch.
    pub fn for_each_base_rule_assignment_with(
        &self,
        db: &Instance,
        state: &State,
        mode: Mode,
        scratch: &mut EvalScratch,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        for (idx, cr) in self.compiled.iter().enumerate() {
            if cr.delta_positions.is_empty()
                && !self.for_each_rule_assignment_with(idx, db, state, mode, scratch, f)
            {
                return false;
            }
        }
        true
    }

    /// Semi-naive round: enumerate every assignment that uses at least one
    /// delta tuple from `frontier`.
    ///
    /// `state`'s delta sets must already include the frontier. Assignments
    /// are partitioned by the *first* body position holding a frontier tuple
    /// (earlier delta atoms range over old deltas, later ones over all), so
    /// each assignment is produced exactly once across all rounds.
    pub fn for_each_frontier_assignment(
        &self,
        db: &Instance,
        state: &State,
        mode: Mode,
        frontier: &DeltaFrontier,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        self.for_each_frontier_assignment_with(
            db,
            state,
            mode,
            frontier,
            &mut EvalScratch::new(),
            f,
        )
    }

    /// [`Evaluator::for_each_frontier_assignment`] with caller scratch.
    pub fn for_each_frontier_assignment_with(
        &self,
        db: &Instance,
        state: &State,
        mode: Mode,
        frontier: &DeltaFrontier,
        scratch: &mut EvalScratch,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        for idx in 0..self.compiled.len() {
            if !self
                .for_each_rule_frontier_assignment_with(idx, db, state, mode, frontier, scratch, f)
            {
                return false;
            }
        }
        true
    }

    /// Semi-naive round restricted to one rule: every assignment of
    /// `rule_idx` using at least one frontier tuple. Used by the trigger
    /// engine, where a single "after delete" trigger reacts to one deleted
    /// row.
    pub fn for_each_rule_frontier_assignment(
        &self,
        rule_idx: usize,
        db: &Instance,
        state: &State,
        mode: Mode,
        frontier: &DeltaFrontier,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        self.for_each_rule_frontier_assignment_with(
            rule_idx,
            db,
            state,
            mode,
            frontier,
            &mut EvalScratch::new(),
            f,
        )
    }

    /// [`Evaluator::for_each_rule_frontier_assignment`] with caller scratch.
    #[allow(clippy::too_many_arguments)]
    pub fn for_each_rule_frontier_assignment_with(
        &self,
        rule_idx: usize,
        db: &Instance,
        state: &State,
        mode: Mode,
        frontier: &DeltaFrontier,
        scratch: &mut EvalScratch,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        let cr = &self.compiled[rule_idx];
        if cr.never_fires {
            return true;
        }
        for fi in 0..cr.delta_positions.len() {
            if !run_plan(
                db,
                state,
                mode,
                rule_idx,
                cr,
                &cr.focused[fi],
                &cr.focused_classes[fi],
                Focus::Frontier(frontier),
                scratch,
                f,
            ) {
                return false;
            }
        }
        true
    }

    /// Change-seeded round: enumerate every assignment of every rule that
    /// binds at least one tuple from `seed` — at **any** body position,
    /// base and delta atoms alike — under `mode`, each exactly once.
    ///
    /// This is the entry point of incremental maintenance: after a mutation
    /// batch inserts tuples into the EDB, the assignments that become newly
    /// satisfiable are exactly those touching an inserted tuple, and this
    /// enumeration finds them in time proportional to the seed's join cone
    /// instead of the whole database. Assignments are partitioned by the
    /// first body position holding a seed tuple (earlier positions exclude
    /// the seed, the pivot ranges over it, later ones are unrestricted).
    pub fn for_each_seeded_assignment(
        &self,
        db: &Instance,
        state: &State,
        mode: Mode,
        seed: &DeltaFrontier,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        self.for_each_seeded_assignment_with(db, state, mode, seed, &mut EvalScratch::new(), f)
    }

    /// [`Evaluator::for_each_seeded_assignment`] with caller scratch.
    pub fn for_each_seeded_assignment_with(
        &self,
        db: &Instance,
        state: &State,
        mode: Mode,
        seed: &DeltaFrontier,
        scratch: &mut EvalScratch,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        for idx in 0..self.compiled.len() {
            if !self.for_each_rule_seeded_assignment_with(idx, db, state, mode, seed, scratch, f) {
                return false;
            }
        }
        true
    }

    /// Change-seeded round restricted to one rule: every assignment of
    /// `rule_idx` binding at least one seed tuple, produced exactly once.
    #[allow(clippy::too_many_arguments)]
    pub fn for_each_rule_seeded_assignment_with(
        &self,
        rule_idx: usize,
        db: &Instance,
        state: &State,
        mode: Mode,
        seed: &DeltaFrontier,
        scratch: &mut EvalScratch,
        f: &mut dyn FnMut(&Assignment) -> bool,
    ) -> bool {
        let cr = &self.compiled[rule_idx];
        if cr.never_fires {
            return true;
        }
        for p in 0..cr.atoms.len() {
            // A pivot only yields assignments when the seed touches its
            // relation; skipping it keeps a small batch's round proportional
            // to the batch, not to the rule width.
            if !seed.touches(cr.atoms[p].rel) {
                continue;
            }
            if !run_plan(
                db,
                state,
                mode,
                rule_idx,
                cr,
                &cr.seeded[p],
                &cr.seeded_classes[p],
                Focus::Seed(seed),
                scratch,
                f,
            ) {
                return false;
            }
        }
        true
    }

    /// Does the rule's body contain a delta atom over `rel`? (Trigger
    /// registration: the rule reacts to deletions from that relation.)
    pub fn rule_listens_to(&self, rule_idx: usize, rel: storage::RelId) -> bool {
        let cr = &self.compiled[rule_idx];
        cr.delta_positions.iter().any(|&p| cr.atoms[p].rel == rel)
    }

    /// Does the rule's body contain any delta atom?
    pub fn rule_has_delta_body(&self, rule_idx: usize) -> bool {
        !self.compiled[rule_idx].delta_positions.is_empty()
    }

    /// Find one satisfying assignment in the live view, if any — i.e. decide
    /// whether the database is *unstable* (Def. 3.12) and produce a witness.
    pub fn find_violation(&self, db: &Instance, state: &State) -> Option<Assignment> {
        let mut found = None;
        self.for_each_assignment(db, state, Mode::Current, &mut |a| {
            found = Some(a.clone());
            false
        });
        found
    }

    /// Is `(R, Δ)` stable w.r.t. the program (Def. 3.12)?
    pub fn is_stable(&self, db: &Instance, state: &State) -> bool {
        self.find_violation(db, state).is_none()
    }
}

/// Morsel-driven parallel enumeration (the `parallel` feature).
///
/// One evaluation round reads an immutable `(Instance, State)` view, so its
/// work can be split freely. Per-rule fan-out (the previous design) leaves a
/// round's wall clock pinned to its heaviest rule; instead, every plan the
/// round would execute is partitioned into **morsels** — fixed-size slices
/// of the plan's *driver domain*, the candidate rows its first join step
/// iterates. Workers pull `(plan, morsel)` tasks from a shared atomic
/// cursor (work stealing in the morsel-driven-execution sense: no static
/// assignment, fast workers drain the queue), each owning one pooled
/// [`EvalScratch`] across all tasks it executes. Results are written into
/// per-task slots and concatenated in `(rule, plan, morsel)` order — the
/// exact serial enumeration order, since morsels preserve the ascending row
/// order of the domain they slice — so the merged stream is bit-for-bit
/// identical to the serial callbacks at every thread count.
///
/// Implemented with `std::thread::scope` rather than rayon (the build
/// environment is offline); an atomic fetch-add over a precomputed task
/// list is the same dispatch discipline a morsel-driven scheduler uses.
#[cfg(feature = "parallel")]
mod par {
    use super::{
        run_plan_rows, Assignment, CompiledRule, DeltaClass, DeltaFrontier, EvalScratch, Evaluator,
        Focus, Mode, Plan, Slot, Value,
    };
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;
    use storage::{Instance, State};

    /// Which enumeration a parallel round performs.
    #[derive(Clone, Copy)]
    pub enum Scope<'f> {
        /// Every rule, every assignment.
        All,
        /// Only rules without delta atoms (round 1 of semi-naive).
        BaseRules,
        /// Semi-naive frontier round.
        Frontier(&'f DeltaFrontier),
        /// Change-seeded round of incremental maintenance.
        Seeded(&'f DeltaFrontier),
    }

    /// Worker threads the parallel paths use by default:
    /// `DELTA_REPAIRS_THREADS` when set to a positive value, otherwise the
    /// machine's logical CPUs. `DELTA_REPAIRS_THREADS=1` disables
    /// parallelism at runtime, which is how benches compare serial vs
    /// parallel inside one binary. The environment variable and the
    /// `available_parallelism` syscall are read **once** per process and
    /// cached; per-request overrides go through
    /// `FixpointDriver::threads` / `RepairRequest::threads`, not the
    /// environment.
    pub fn eval_threads() -> usize {
        static CACHED: OnceLock<usize> = OnceLock::new();
        *CACHED.get_or_init(|| {
            match std::env::var("DELTA_REPAIRS_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
            {
                Some(n) if n > 0 => n,
                _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
            }
        })
    }

    /// Rows per morsel. Small enough that a skewed domain still splits into
    /// many tasks, large enough that the per-task overhead (one slot write,
    /// one cursor fetch-add) is noise against the join work. Overridable
    /// via `DELTA_REPAIRS_MORSEL` for experiments; read once per process.
    /// The value never affects results — only how work is sliced.
    pub fn morsel_rows() -> usize {
        static CACHED: OnceLock<usize> = OnceLock::new();
        *CACHED.get_or_init(|| {
            match std::env::var("DELTA_REPAIRS_MORSEL")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
            {
                Some(n) if n > 0 => n,
                _ => 1024,
            }
        })
    }

    /// One plan execution of a round: the plan, its delta classes and
    /// focus, plus the materialized driver domain its first step iterates.
    struct PlanJob<'e, 'f> {
        rule_idx: usize,
        plan: &'e Plan,
        classes: &'e [DeltaClass],
        focus: Focus<'f>,
        /// Candidate rows of step 0, in the serial iteration order. The
        /// per-row admission/key checks still run inside the join; this is
        /// the raw iteration source, sliced into morsels.
        rows: Vec<u32>,
        /// Does step 0 need the key-as-filter check (delta/seed paths)?
        check_key: bool,
    }

    /// One unit of parallel work: a morsel of one plan's driver domain.
    struct Task {
        job: u32,
        start: u32,
        end: u32,
    }

    /// Materialize the candidate rows the first step of `plan` iterates —
    /// the same sources, in the same order, as the serial `step` at `k=0`.
    /// Admission and residual key checks are *not* applied here; `try_row`
    /// performs them per visited row exactly as the serial path does.
    fn step0_domain(
        db: &Instance,
        state: &State,
        mode: Mode,
        cr: &CompiledRule,
        plan: &Plan,
        classes: &[DeltaClass],
        focus: Focus<'_>,
    ) -> (Vec<u32>, bool) {
        let ai = plan.order[0];
        let atom = &cr.atoms[ai];
        let class = classes[ai];
        let spec = &plan.probes[0];
        let rel = db.relation(atom.rel);
        if let Focus::Seed(seed) = focus {
            if class == DeltaClass::New {
                // Seeded pivot: generate from the seed set directly.
                return (seed.rows(atom.rel).map(|t| t.row).collect(), true);
            }
        }
        if atom.is_delta && mode != Mode::Hypothetical {
            let rows = match (class, focus) {
                (DeltaClass::New, Focus::Frontier(fr)) => {
                    fr.rows(atom.rel).map(|t| t.row).collect()
                }
                _ => state.delta_rows(atom.rel).map(|t| t.row).collect(),
            };
            return (rows, true);
        }
        if spec.is_probe() {
            // Step-0 probe keys are constants by construction (no variable
            // is bound before the first step).
            let key: Vec<Value> = spec
                .key_slots
                .iter()
                .map(|s| match s {
                    Slot::Const(v) => *v,
                    Slot::Var(_) => unreachable!("step-0 probe keys are constant-only"),
                })
                .collect();
            return (rel.probe(spec.index, &key).to_vec(), false);
        }
        if mode == Mode::Current && !atom.is_delta {
            return (state.present_rows(atom.rel).map(|t| t.row).collect(), false);
        }
        (rel.live_rows().collect(), false)
    }

    impl Evaluator {
        /// Collect the plan executions one round under `scope` performs, in
        /// serial enumeration order, with their driver domains materialized.
        fn plan_jobs<'e, 'f>(
            &'e self,
            db: &Instance,
            state: &State,
            mode: Mode,
            scope: Scope<'f>,
        ) -> Vec<PlanJob<'e, 'f>> {
            let mut jobs: Vec<PlanJob<'e, 'f>> = Vec::new();
            let push = |rule_idx: usize,
                        plan: &'e Plan,
                        classes: &'e [DeltaClass],
                        focus: Focus<'f>,
                        jobs: &mut Vec<PlanJob<'e, 'f>>| {
                let cr = &self.compiled[rule_idx];
                let (rows, check_key) = step0_domain(db, state, mode, cr, plan, classes, focus);
                jobs.push(PlanJob {
                    rule_idx,
                    plan,
                    classes,
                    focus,
                    rows,
                    check_key,
                });
            };
            for (idx, cr) in self.compiled.iter().enumerate() {
                if cr.never_fires {
                    continue;
                }
                match scope {
                    Scope::All => {
                        // Same mode-based plan selection as the serial
                        // path (for_each_rule_assignment_with).
                        let plan = match mode {
                            Mode::Hypothetical => &cr.hypothetical,
                            Mode::Current | Mode::FrozenBase => &cr.general,
                        };
                        push(idx, plan, &cr.general_classes, Focus::None, &mut jobs);
                    }
                    Scope::BaseRules => {
                        if cr.delta_positions.is_empty() {
                            push(
                                idx,
                                &cr.general,
                                &cr.general_classes,
                                Focus::None,
                                &mut jobs,
                            );
                        }
                    }
                    Scope::Frontier(fr) => {
                        for fi in 0..cr.delta_positions.len() {
                            push(
                                idx,
                                &cr.focused[fi],
                                &cr.focused_classes[fi],
                                Focus::Frontier(fr),
                                &mut jobs,
                            );
                        }
                    }
                    Scope::Seeded(seed) => {
                        for p in 0..cr.atoms.len() {
                            if !seed.touches(cr.atoms[p].rel) {
                                continue;
                            }
                            push(
                                idx,
                                &cr.seeded[p],
                                &cr.seeded_classes[p],
                                Focus::Seed(seed),
                                &mut jobs,
                            );
                        }
                    }
                }
            }
            jobs
        }

        /// Enumerate under `scope` on up to `threads` workers, morsels
        /// dispatched from a shared atomic cursor, feeding `f` in
        /// `(rule, plan, morsel)` order — bit-for-bit the serial stream at
        /// every thread count. Completed morsels flow through a reorder
        /// buffer consumed by the calling thread as soon as the next
        /// in-order task lands, so peak memory is proportional to the
        /// out-of-order backlog, not the round's whole stream — callers
        /// that fold (the fixpoint driver, Algorithm 1's clause builder)
        /// never hold all assignments at once.
        pub fn par_for_each(
            &self,
            db: &Instance,
            state: &State,
            mode: Mode,
            scope: Scope<'_>,
            threads: usize,
            f: &mut dyn FnMut(&Assignment),
        ) {
            if threads <= 1 {
                self.serial_for_each(db, state, mode, scope, f);
                return;
            }
            let jobs = self.plan_jobs(db, state, mode, scope);
            let morsel = morsel_rows();
            let mut tasks: Vec<Task> = Vec::new();
            for (j, job) in jobs.iter().enumerate() {
                let mut start = 0usize;
                while start < job.rows.len() {
                    let end = (start + morsel).min(job.rows.len());
                    tasks.push(Task {
                        job: j as u32,
                        start: start as u32,
                        end: end as u32,
                    });
                    start = end;
                }
            }
            if tasks.len() <= 1 {
                // One morsel (or an empty round): the scheduler would only
                // add overhead. Run it inline.
                let mut scratch = EvalScratch::new();
                for job in &jobs {
                    self.run_job(db, state, mode, job, 0, job.rows.len(), &mut scratch, f);
                }
                return;
            }
            let workers = threads.min(tasks.len());
            let cursor = AtomicUsize::new(0);
            let (cursor, tasks, jobs) = (&cursor, &tasks, &jobs);
            let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<Assignment>)>();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    s.spawn(move || {
                        let mut scratch = EvalScratch::new();
                        loop {
                            let t = cursor.fetch_add(1, Ordering::Relaxed);
                            if t >= tasks.len() {
                                break;
                            }
                            let task = &tasks[t];
                            let job = &jobs[task.job as usize];
                            let mut out = Vec::new();
                            self.run_job(
                                db,
                                state,
                                mode,
                                job,
                                task.start as usize,
                                task.end as usize,
                                &mut scratch,
                                &mut |a| out.push(a.clone()),
                            );
                            // The receiver outlives the scope; a send only
                            // fails if the consumer below panicked, and
                            // then this worker has nothing left to do.
                            if tx.send((t, out)).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                // Consume in task order: emit each completed morsel as soon
                // as everything before it has been emitted, dropping its
                // buffer immediately after.
                let mut buffered: Vec<Option<Vec<Assignment>>> =
                    (0..tasks.len()).map(|_| None).collect();
                let mut next = 0usize;
                for (t, out) in rx {
                    buffered[t] = Some(out);
                    while next < tasks.len() {
                        let Some(out) = buffered[next].take() else {
                            break;
                        };
                        for a in &out {
                            f(a);
                        }
                        next += 1;
                    }
                }
                debug_assert_eq!(next, tasks.len(), "every task must be consumed");
            });
        }

        /// [`Evaluator::par_for_each`] collected into a vector (tests and
        /// callers that genuinely need the materialized stream).
        pub fn par_collect(
            &self,
            db: &Instance,
            state: &State,
            mode: Mode,
            scope: Scope<'_>,
            threads: usize,
        ) -> Vec<Assignment> {
            let mut out = Vec::new();
            self.par_for_each(db, state, mode, scope, threads, &mut |a| {
                out.push(a.clone())
            });
            out
        }

        /// Execute one morsel `[start, end)` of a plan job, feeding every
        /// assignment to `f`.
        #[allow(clippy::too_many_arguments)]
        fn run_job(
            &self,
            db: &Instance,
            state: &State,
            mode: Mode,
            job: &PlanJob<'_, '_>,
            start: usize,
            end: usize,
            scratch: &mut EvalScratch,
            f: &mut dyn FnMut(&Assignment),
        ) {
            let cr = &self.compiled[job.rule_idx];
            run_plan_rows(
                db,
                state,
                mode,
                job.rule_idx,
                cr,
                job.plan,
                job.classes,
                job.focus,
                &job.rows[start..end],
                job.check_key,
                scratch,
                &mut |a| {
                    f(a);
                    true
                },
            );
        }

        fn serial_for_each(
            &self,
            db: &Instance,
            state: &State,
            mode: Mode,
            scope: Scope<'_>,
            f: &mut dyn FnMut(&Assignment),
        ) {
            let mut scratch = EvalScratch::new();
            let mut push = |a: &Assignment| {
                f(a);
                true
            };
            for idx in 0..self.num_rules() {
                match scope {
                    Scope::All => {
                        self.for_each_rule_assignment_with(
                            idx,
                            db,
                            state,
                            mode,
                            &mut scratch,
                            &mut push,
                        );
                    }
                    Scope::BaseRules => {
                        if !self.rule_has_delta_body(idx) {
                            self.for_each_rule_assignment_with(
                                idx,
                                db,
                                state,
                                mode,
                                &mut scratch,
                                &mut push,
                            );
                        }
                    }
                    Scope::Frontier(fr) => {
                        self.for_each_rule_frontier_assignment_with(
                            idx,
                            db,
                            state,
                            mode,
                            fr,
                            &mut scratch,
                            &mut push,
                        );
                    }
                    Scope::Seeded(seed) => {
                        self.for_each_rule_seeded_assignment_with(
                            idx,
                            db,
                            state,
                            mode,
                            seed,
                            &mut scratch,
                            &mut push,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(feature = "parallel")]
pub use par::{eval_threads, morsel_rows, Scope as ParScope};

#[inline]
fn admitted(
    state: &State,
    mode: Mode,
    focus: Focus<'_>,
    atom: &CompiledAtom,
    class: DeltaClass,
    tid: TupleId,
) -> bool {
    // Under a seed focus the class partitions *every* atom against the seed
    // set; the ordinary view admission then applies unrestricted.
    if let Focus::Seed(seed) = focus {
        match class {
            DeltaClass::New => {
                if !seed.contains(tid) {
                    return false;
                }
            }
            DeltaClass::Old => {
                if seed.contains(tid) {
                    return false;
                }
            }
            DeltaClass::All => {}
        }
    }
    if atom.is_delta {
        match mode {
            Mode::Hypothetical => true,
            Mode::Current | Mode::FrozenBase => match focus {
                Focus::Frontier(fr) => match class {
                    DeltaClass::All => state.in_delta(tid),
                    DeltaClass::New => fr.contains(tid),
                    DeltaClass::Old => state.in_delta(tid) && !fr.contains(tid),
                },
                Focus::None | Focus::Seed(_) => state.in_delta(tid),
            },
        }
    } else {
        match mode {
            Mode::Current => state.is_present(tid),
            Mode::FrozenBase | Mode::Hypothetical => true,
        }
    }
}

/// Depth-first join over `plan.order`. Returns `false` iff the callback
/// aborted the enumeration.
#[allow(clippy::too_many_arguments)]
fn run_plan(
    db: &Instance,
    state: &State,
    mode: Mode,
    rule_idx: usize,
    cr: &CompiledRule,
    plan: &Plan,
    classes: &[DeltaClass],
    focus: Focus<'_>,
    scratch: &mut EvalScratch,
    f: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    scratch.bind.clear();
    scratch.bind.resize(cr.n_vars, Value::Int(0));
    scratch.chosen.clear();
    scratch.chosen.resize(cr.atoms.len(), DUMMY_TID);
    scratch.key.clear();
    step(
        db, state, mode, rule_idx, cr, plan, classes, focus, 0, scratch, f,
    )
}

/// [`run_plan`] restricted to an explicit slice of step-0 candidate rows —
/// the morsel entry point of the parallel scheduler. `rows` is a contiguous
/// slice of the plan's driver domain (see `par::step0_domain`), in the same
/// ascending order the serial step-0 iteration would visit; `check_key`
/// mirrors the serial path's choice of key-as-filter (delta/seed sources)
/// vs. key-guaranteed-by-index (probe sources). Per-row admission, key,
/// equality and comparison checks all run inside [`try_row`] exactly as in
/// the serial join, so concatenating morsel outputs in domain order
/// reproduces the serial assignment stream bit for bit.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn run_plan_rows(
    db: &Instance,
    state: &State,
    mode: Mode,
    rule_idx: usize,
    cr: &CompiledRule,
    plan: &Plan,
    classes: &[DeltaClass],
    focus: Focus<'_>,
    rows: &[u32],
    check_key: bool,
    scratch: &mut EvalScratch,
    f: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    scratch.bind.clear();
    scratch.bind.resize(cr.n_vars, Value::Int(0));
    scratch.chosen.clear();
    scratch.chosen.resize(cr.atoms.len(), DUMMY_TID);
    scratch.key.clear();
    // Step-0 probe keys are constants (nothing is bound before step 0).
    for s in &plan.probes[0].key_slots {
        match s {
            Slot::Const(v) => scratch.key.push(*v),
            Slot::Var(_) => unreachable!("step-0 probe keys are constant-only"),
        }
    }
    for &row in rows {
        if !try_row(
            db, state, mode, rule_idx, cr, plan, classes, focus, 0, row, 0, check_key, scratch, f,
        ) {
            return false;
        }
    }
    true
}

/// Match `row` against step `k`'s precompiled spec and recurse on success.
/// Returns `false` iff the callback aborted. `check_key` is `false` on the
/// index-probe path (the index guarantees the key columns match) and `true`
/// on the scan/delta paths, where the key becomes a per-row filter.
#[allow(clippy::too_many_arguments)]
#[inline]
fn try_row(
    db: &Instance,
    state: &State,
    mode: Mode,
    rule_idx: usize,
    cr: &CompiledRule,
    plan: &Plan,
    classes: &[DeltaClass],
    focus: Focus<'_>,
    k: usize,
    row: u32,
    key_start: usize,
    check_key: bool,
    scratch: &mut EvalScratch,
    f: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    let ai = plan.order[k];
    let atom = &cr.atoms[ai];
    let tid = TupleId::new(atom.rel, row);
    if !admitted(state, mode, focus, atom, classes[ai], tid) {
        return true;
    }
    let tuple = db.relation(atom.rel).tuple(row);
    let spec = &plan.probes[k];
    if check_key {
        for (i, &col) in spec.key_cols.iter().enumerate() {
            if *tuple.get(col) != scratch.key[key_start + i] {
                return true;
            }
        }
    }
    for &(col, earlier) in &spec.same_cols {
        if tuple.get(col) != tuple.get(earlier) {
            return true;
        }
    }
    // Fresh variables: statically bound-before-use, so failed candidates
    // need no undo — the next row simply overwrites.
    for &(col, var) in &spec.bind_cols {
        scratch.bind[var as usize] = *tuple.get(col);
    }
    // Comparisons that became checkable at this step.
    for &ci in &plan.cmps_after[k] {
        let c = &cr.cmps[ci];
        let get = |s: &Slot| -> Value {
            match s {
                Slot::Const(v) => *v,
                Slot::Var(x) => scratch.bind[*x as usize],
            }
        };
        if !c.op.eval(&get(&c.lhs), &get(&c.rhs)) {
            return true;
        }
    }
    scratch.chosen[ai] = tid;
    step(
        db,
        state,
        mode,
        rule_idx,
        cr,
        plan,
        classes,
        focus,
        k + 1,
        scratch,
        f,
    )
}

/// One step of the depth-first join: execute the precompiled probe for
/// `plan.order[k]` and recurse. Returns `false` iff the callback aborted.
#[allow(clippy::too_many_arguments)]
fn step(
    db: &Instance,
    state: &State,
    mode: Mode,
    rule_idx: usize,
    cr: &CompiledRule,
    plan: &Plan,
    classes: &[DeltaClass],
    focus: Focus<'_>,
    k: usize,
    scratch: &mut EvalScratch,
    f: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    if k == plan.order.len() {
        // Emit through the reusable buffer: no allocation once the body
        // vector has grown to the program's widest rule.
        scratch.asg.rule = rule_idx;
        scratch.asg.head = scratch.chosen[cr.head_witness];
        scratch.asg.body.clear();
        for (i, a) in cr.atoms.iter().enumerate() {
            scratch.asg.body.push(BodyBind {
                tid: scratch.chosen[i],
                is_delta: a.is_delta,
            });
        }
        return f(&scratch.asg);
    }
    let ai = plan.order[k];
    let atom = &cr.atoms[ai];
    let class = classes[ai];
    let spec = &plan.probes[k];
    let rel = db.relation(atom.rel);

    // Evaluate this step's probe key once; every slot is a constant or an
    // already-bound variable by construction.
    let key_start = scratch.key.len();
    for s in &spec.key_slots {
        let v = match s {
            Slot::Const(v) => *v,
            Slot::Var(x) => scratch.bind[*x as usize],
        };
        scratch.key.push(v);
    }

    macro_rules! visit {
        ($row:expr, $check_key:expr) => {
            if !try_row(
                db, state, mode, rule_idx, cr, plan, classes, focus, k, $row, key_start,
                $check_key, scratch, f,
            ) {
                scratch.key.truncate(key_start);
                return false;
            }
        };
    }

    // KEEP IN SYNC: at k == 0 this source-selection ladder is mirrored by
    // `par::step0_domain`, which materializes the same rows (same branches,
    // same order) for the morsel scheduler. Any change to which rows a
    // first step iterates must be applied to both; the engine-parity and
    // differential suites pin the equivalence.
    let seed_pivot = matches!(focus, Focus::Seed(_)) && class == DeltaClass::New;
    if seed_pivot {
        // The pivot of a change-seeded plan generates from the (small) seed
        // set directly, whatever the atom's flavor; the key becomes a
        // per-row filter and `admitted` supplies the view membership.
        if let Focus::Seed(seed) = focus {
            for tid in seed.rows(atom.rel) {
                visit!(tid.row, true);
            }
        }
    } else if atom.is_delta && mode != Mode::Hypothetical {
        // Delta sets are usually small: iterate them directly, using the
        // key as a per-row filter.
        match (class, focus) {
            (DeltaClass::New, Focus::Frontier(fr)) => {
                for tid in fr.rows(atom.rel) {
                    visit!(tid.row, true);
                }
            }
            _ => {
                for tid in state.delta_rows(atom.rel) {
                    visit!(tid.row, true);
                }
            }
        }
    } else if spec.is_probe() {
        // Composite-index probe on every bound column: candidates already
        // match the key, no residual filtering.
        for &row in rel.probe(spec.index, &scratch.key[key_start..]) {
            visit!(row, false);
        }
    } else if mode == Mode::Current && !atom.is_delta {
        for tid in state.present_rows(atom.rel) {
            visit!(tid.row, false);
        }
    } else {
        // Frozen-base / hypothetical full scan: every *live* row of the
        // instance. Tombstoned rows left the relation durably and must not
        // resurface in any view.
        for row in rel.live_rows() {
            visit!(row, false);
        }
    }
    scratch.key.truncate(key_start);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use storage::{AttrType, Schema};

    /// Figure 1 of the paper: the academic database instance.
    pub fn figure1_instance() -> Instance {
        let mut s = Schema::new();
        s.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
        s.relation(
            "AuthGrant",
            &[("aid", AttrType::Int), ("gid", AttrType::Int)],
        );
        s.relation("Author", &[("aid", AttrType::Int), ("name", AttrType::Str)]);
        s.relation(
            "Cite",
            &[("citing", AttrType::Int), ("cited", AttrType::Int)],
        );
        s.relation("Writes", &[("aid", AttrType::Int), ("pid", AttrType::Int)]);
        s.relation("Pub", &[("pid", AttrType::Int), ("title", AttrType::Str)]);
        let mut db = Instance::new(s);
        db.insert_values("Grant", [Value::Int(1), Value::str("NSF")])
            .unwrap(); // g1
        db.insert_values("Grant", [Value::Int(2), Value::str("ERC")])
            .unwrap(); // g2
        db.insert_values("AuthGrant", [Value::Int(2), Value::Int(1)])
            .unwrap(); // ag1
        db.insert_values("AuthGrant", [Value::Int(4), Value::Int(2)])
            .unwrap(); // ag2
        db.insert_values("AuthGrant", [Value::Int(5), Value::Int(2)])
            .unwrap(); // ag3
        db.insert_values("Author", [Value::Int(2), Value::str("Maggie")])
            .unwrap(); // a1
        db.insert_values("Author", [Value::Int(4), Value::str("Marge")])
            .unwrap(); // a2
        db.insert_values("Author", [Value::Int(5), Value::str("Homer")])
            .unwrap(); // a3
        db.insert_values("Cite", [Value::Int(7), Value::Int(6)])
            .unwrap(); // c
        db.insert_values("Writes", [Value::Int(4), Value::Int(6)])
            .unwrap(); // w1
        db.insert_values("Writes", [Value::Int(5), Value::Int(7)])
            .unwrap(); // w2
        db.insert_values("Pub", [Value::Int(6), Value::str("x")])
            .unwrap(); // p1
        db.insert_values("Pub", [Value::Int(7), Value::str("y")])
            .unwrap(); // p2
        db
    }

    /// Figure 2 of the paper: the delta program.
    pub fn figure2_program() -> Program {
        parse_program(
            r#"
            delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
            delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
            delta Pub(p, t) :- Pub(p, t), Writes(a, p), delta Author(a, n).
            delta Writes(a, p) :- Pub(p, t), Writes(a, p), delta Author(a, n).
            delta Cite(c, p) :- Cite(c, p), delta Pub(p, t), Writes(a1, c), Writes(a2, p).
            "#,
        )
        .unwrap()
    }

    fn count_all(ev: &Evaluator, db: &Instance, state: &State, mode: Mode) -> usize {
        let mut n = 0;
        ev.for_each_assignment(db, state, mode, &mut |_| {
            n += 1;
            true
        });
        n
    }

    #[test]
    fn initial_state_only_rule0_fires() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let state = db.initial_state();
        assert_eq!(count_all(&ev, &db, &state, Mode::Current), 1);
        let v = ev.find_violation(&db, &state).unwrap();
        assert_eq!(v.rule, 0);
        assert_eq!(db.display_tuple(v.head), "Grant(2, ERC)");
        assert!(!ev.is_stable(&db, &state));
    }

    #[test]
    fn deleting_g2_enables_rule1() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let mut state = db.initial_state();
        let grant = db.schema().rel_id("Grant").unwrap();
        state.delete(TupleId::new(grant, 1)); // g2

        // Rule 0 no longer fires (g2 gone from R); rule 1 fires twice.
        let mut per_rule = [0usize; 5];
        ev.for_each_assignment(&db, &state, Mode::Current, &mut |a| {
            per_rule[a.rule] += 1;
            true
        });
        assert_eq!(per_rule, [0, 2, 0, 0, 0]);
    }

    #[test]
    fn hypothetical_mode_counts_all_potential_assignments() {
        // Example 5.1's formula has clauses for: rule0 (1), rule1 (2 with
        // Δ(g2)… but hypothetically also ag1 with g1 → 3), rules 2/3 (2
        // each), rule 4 (1). Hypothetical mode ranges delta atoms over ALL
        // tuples, hence rule1 yields 3 assignments here.
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let state = db.initial_state();
        let mut per_rule = [0usize; 5];
        ev.for_each_assignment(&db, &state, Mode::Hypothetical, &mut |a| {
            per_rule[a.rule] += 1;
            true
        });
        assert_eq!(per_rule, [1, 3, 2, 2, 1]);
    }

    #[test]
    fn frozen_base_keeps_deleted_tuples_visible_to_base_atoms() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let mut state = db.initial_state();
        let grant = db.schema().rel_id("Grant").unwrap();
        state.mark_delta(TupleId::new(grant, 1)); // Δ(g2), R unchanged
        let mut per_rule = [0usize; 5];
        ev.for_each_assignment(&db, &state, Mode::FrozenBase, &mut |a| {
            per_rule[a.rule] += 1;
            true
        });
        // Rule 0 still fires (g2 still in R under FrozenBase); rule 1 fires
        // twice via Δ(g2).
        assert_eq!(per_rule, [1, 2, 0, 0, 0]);
    }

    #[test]
    fn frontier_partition_produces_each_assignment_once() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let mut state = db.initial_state();
        let grant = db.schema().rel_id("Grant").unwrap();
        let author = db.schema().rel_id("Author").unwrap();
        let g2 = TupleId::new(grant, 1);
        let a2 = TupleId::new(author, 1);
        let a3 = TupleId::new(author, 2);
        // Round 1 already derived Δ(g2); round 2 derives Δ(a2), Δ(a3).
        state.mark_delta(g2);
        state.mark_delta(a2);
        state.mark_delta(a3);
        let mut frontier = DeltaFrontier::empty(&db);
        frontier.insert(a2);
        frontier.insert(a3);
        let mut seen = Vec::new();
        ev.for_each_frontier_assignment(&db, &state, Mode::FrozenBase, &frontier, &mut |a| {
            seen.push(a.clone());
            true
        });
        // Rules 2 and 3 each have two assignments through the new deltas;
        // rule 1 has none (its delta atom Δ(Grant) is not in the frontier).
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().all(|a| a.rule == 2 || a.rule == 3));
        let unique: std::collections::HashSet<_> = seen.iter().cloned().collect();
        assert_eq!(unique.len(), 4, "no duplicates");
    }

    #[test]
    fn assignment_body_order_matches_source() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let mut state = db.initial_state();
        let grant = db.schema().rel_id("Grant").unwrap();
        state.delete(TupleId::new(grant, 1));
        let mut got = None;
        ev.for_each_rule_assignment(1, &db, &state, Mode::Current, &mut |a| {
            got = Some(a.clone());
            false
        });
        let a = got.unwrap();
        // Body of rule 1: Author(a, n), AuthGrant(a, g), ΔGrant(g, gn).
        assert_eq!(a.body.len(), 3);
        assert!(!a.body[0].is_delta);
        assert!(!a.body[1].is_delta);
        assert!(a.body[2].is_delta);
        assert_eq!(a.head, a.body[0].tid, "witness is the Author atom");
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let state = db.initial_state();
        let mut calls = 0;
        let complete = ev.for_each_assignment(&db, &state, Mode::Hypothetical, &mut |_| {
            calls += 1;
            false
        });
        assert!(!complete);
        assert_eq!(calls, 1);
    }

    #[test]
    fn repeated_variable_in_atom_requires_equality() {
        let mut s = Schema::new();
        s.relation("E", &[("a", AttrType::Int), ("b", AttrType::Int)]);
        let mut db = Instance::new(s);
        db.insert_values("E", [Value::Int(1), Value::Int(1)])
            .unwrap();
        db.insert_values("E", [Value::Int(1), Value::Int(2)])
            .unwrap();
        let p = parse_program("delta E(x, x) :- E(x, x).").unwrap();
        let ev = Evaluator::new(&mut db, p).unwrap();
        let state = db.initial_state();
        assert_eq!(count_all(&ev, &db, &state, Mode::Current), 1);
    }

    #[test]
    fn constant_in_atom_filters() {
        let mut s = Schema::new();
        s.relation("R", &[("a", AttrType::Int)]);
        let mut db = Instance::new(s);
        for i in 0..10 {
            db.insert_values("R", [Value::Int(i)]).unwrap();
        }
        let p = parse_program("delta R(x) :- R(x), R(3), x < 2.").unwrap();
        let ev = Evaluator::new(&mut db, p).unwrap();
        let state = db.initial_state();
        assert_eq!(count_all(&ev, &db, &state, Mode::Current), 2);
    }

    #[test]
    fn never_firing_rule_is_skipped() {
        let mut db = figure1_instance();
        let p = parse_program("delta Grant(g, n) :- Grant(g, n), 1 = 2.").unwrap();
        let ev = Evaluator::new(&mut db, p).unwrap();
        let state = db.initial_state();
        assert!(ev.is_stable(&db, &state));
    }

    #[test]
    fn shared_scratch_is_reusable_across_rules_and_modes() {
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let state = db.initial_state();
        let mut scratch = EvalScratch::new();
        for mode in [Mode::Current, Mode::FrozenBase, Mode::Hypothetical] {
            let mut with_scratch = 0;
            ev.for_each_assignment_with(&db, &state, mode, &mut scratch, &mut |_| {
                with_scratch += 1;
                true
            });
            assert_eq!(with_scratch, count_all(&ev, &db, &state, mode));
        }
    }

    #[test]
    fn seeded_enumeration_finds_exactly_the_assignments_touching_the_seed() {
        // Against the running example with the full Δ fixpoint marked, a
        // seed of one base tuple must yield exactly the FrozenBase
        // assignments that bind it — each exactly once — and no others.
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let mut state = db.initial_state();
        let mut all: Vec<Assignment> = Vec::new();
        // Grow Δ to its end-semantics fixpoint by brute force.
        loop {
            let mut new_heads = Vec::new();
            ev.for_each_assignment(&db, &state, Mode::FrozenBase, &mut |a| {
                if !state.in_delta(a.head) {
                    new_heads.push(a.head);
                }
                true
            });
            if new_heads.is_empty() {
                break;
            }
            for t in new_heads {
                state.mark_delta(t);
            }
        }
        ev.for_each_assignment(&db, &state, Mode::FrozenBase, &mut |a| {
            all.push(a.clone());
            true
        });

        for target in db.all_tuple_ids() {
            let mut seed = DeltaFrontier::empty(&db);
            seed.insert(target);
            let mut seeded: Vec<Assignment> = Vec::new();
            ev.for_each_seeded_assignment(&db, &state, Mode::FrozenBase, &seed, &mut |a| {
                seeded.push(a.clone());
                true
            });
            let expected: Vec<&Assignment> = all
                .iter()
                .filter(|a| a.body.iter().any(|b| b.tid == target))
                .collect();
            assert_eq!(
                seeded.len(),
                expected.len(),
                "seed {}: wrong count",
                db.display_tuple(target)
            );
            for a in &seeded {
                assert!(expected.iter().any(|e| **e == *a));
            }
            let unique: std::collections::HashSet<_> = seeded.iter().cloned().collect();
            assert_eq!(unique.len(), seeded.len(), "no duplicates");
        }
    }

    #[test]
    fn seeded_enumeration_counts_multi_seed_assignments_once() {
        // Both tuples of an assignment in the seed: still produced exactly
        // once (at its first seed position).
        let mut s = Schema::new();
        s.relation("R", &[("a", AttrType::Int)]);
        s.relation("S", &[("a", AttrType::Int)]);
        let mut db = Instance::new(s);
        let r0 = db.insert_values("R", [Value::Int(1)]).unwrap();
        let s0 = db.insert_values("S", [Value::Int(1)]).unwrap();
        let p = parse_program("delta R(x) :- R(x), S(x).").unwrap();
        let ev = Evaluator::new(&mut db, p).unwrap();
        let state = db.initial_state();
        let mut seed = DeltaFrontier::empty(&db);
        seed.insert(r0);
        seed.insert(s0);
        let mut n = 0;
        ev.for_each_seeded_assignment(&db, &state, Mode::FrozenBase, &seed, &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
        // Empty seed: nothing.
        let empty = DeltaFrontier::empty(&db);
        let mut m = 0;
        ev.for_each_seeded_assignment(&db, &state, Mode::FrozenBase, &empty, &mut |_| {
            m += 1;
            true
        });
        assert_eq!(m, 0);
    }

    #[test]
    fn delta_iteration_respects_probe_key_filter() {
        // A bound variable over a delta atom must filter delta rows by
        // value (the key acts as the residual filter on the delta path).
        let mut s = Schema::new();
        s.relation("R", &[("a", AttrType::Int)]);
        s.relation("S", &[("a", AttrType::Int)]);
        let mut db = Instance::new(s);
        for i in 0..4 {
            db.insert_values("R", [Value::Int(i)]).unwrap();
            db.insert_values("S", [Value::Int(i)]).unwrap();
        }
        let p = parse_program("delta R(x) :- R(x), delta S(x).").unwrap();
        let ev = Evaluator::new(&mut db, p).unwrap();
        let mut state = db.initial_state();
        let s_rel = db.schema().rel_id("S").unwrap();
        state.mark_delta(TupleId::new(s_rel, 2));
        let mut heads = Vec::new();
        ev.for_each_assignment(&db, &state, Mode::Current, &mut |a| {
            heads.push(db.display_tuple(a.head));
            true
        });
        assert_eq!(heads, vec!["R(2)"]);
    }
}

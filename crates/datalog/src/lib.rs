//! # datalog — the delta-rule language and its evaluator
//!
//! Implements Section 3.1 of *"On Multiple Semantics for Declarative
//! Database Repairs"*: **delta rules** of the form
//!
//! ```text
//! Δi(X) :- Ri(X), Q1(Y1), …, Ql(Yl), comparisons
//! ```
//!
//! where each `Qj` is a base relation or a delta relation, and the head
//! vector `X` reappears in the body atom `Ri(X)` (so only existing tuples are
//! ever deleted).
//!
//! The crate provides:
//!
//! * an [`ast`] for rules and programs, plus a concrete [`parser`] syntax;
//! * [`validate`] — the delta-rule well-formedness checks of Definition 3.1
//!   plus range-restriction (safety);
//! * [`eval`] — enumeration of *assignments* `α : body → D` under three view
//!   [`eval::Mode`]s (live state, frozen base for end semantics, and the
//!   all-hypothetical-deletions view used by Algorithm 1), with semi-naive
//!   frontier support used by end-semantics provenance collection.
//!
//! Assignments are first-class values ([`eval::Assignment`]) because both
//! repair algorithms of the paper consume them as provenance.

pub mod analysis;
pub mod ast;
pub mod compile;
pub mod cost;
pub mod dc;
pub mod error;
pub mod eval;
pub mod lint;
pub mod parser;
pub mod seed;
pub mod validate;

pub use analysis::{analyze, Analysis};
pub use ast::{Atom, CmpOp, Comparison, Program, Rule, Span, Term};
pub use cost::{OrderEstimate, StepEstimate};
pub use dc::DenialConstraint;
pub use error::DatalogError;
#[cfg(feature = "parallel")]
pub use eval::{eval_threads, ParScope};
pub use eval::{
    Assignment, BodyBind, DeltaFrontier, EvalScratch, Evaluator, Mode, PlanStrategy, PlannedProgram,
};
pub use lint::{
    certify, lint, lint_with_stats, Diagnostic, EquivalenceCertificate, LintReport, Severity,
};
pub use parser::{parse_body, parse_program};
pub use seed::{seed_rule, with_interventions};

//! Multi-pass static analyzer for delta programs.
//!
//! [`lint`] runs a fixed pipeline of passes over a parsed [`Program`]
//! (optionally against a [`Schema`]) and returns a [`LintReport`]: a list of
//! structured [`Diagnostic`]s plus the [`EquivalenceCertificate`] of the
//! certificate pass. The passes, in order:
//!
//! | pass | codes | severity | needs schema |
//! |------|-------|----------|--------------|
//! | validation (Def. 3.1 + safety) | `E001`–`E006` | error | yes |
//! | dead rules (provably empty body) | `W101` | warning | no |
//! | constant contradictions | `W102` | warning | no |
//! | cartesian-product joins | `W103` | warning | no (blow-up estimate with db) |
//! | duplicate rules | `W104` | warning | no |
//! | subsumed rules | `W105` | warning | no |
//! | unused schema relations | `I201` | info | yes |
//! | recursion through delta | `I202` | info | no |
//! | semantics-equivalence certificate | `I203` | info | no |
//!
//! # The certificate pass
//!
//! The paper's four repair semantics (end / stage / step / independent)
//! provably coincide on statically recognizable program classes; see
//! [`certify`] for the classes and the soundness argument. `repair_core`'s
//! `RepairSession` consumes the certificate to dispatch a request for an
//! expensive semantics to the cheap end-semantics fixpoint when the two are
//! statically equivalent.
//!
//! Every pass is purely syntactic, deterministic (diagnostics are ordered by
//! rule index, then pass order), and allocation-light — linting is cheap
//! enough to run at session construction.

use crate::analysis;
use crate::ast::{Atom, Program, Rule, Span, Term};
use crate::error::DatalogError;
use crate::validate;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use storage::{Instance, Schema, Sym, Value};

/// How bad a [`Diagnostic`] is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational: a property worth knowing, nothing to fix.
    Info,
    /// Suspicious but executable — the engine will do something well-defined
    /// that is probably not what the author meant.
    Warning,
    /// The program is rejected by validation; evaluation would refuse it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of one lint pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`E001`…`I203`, see the module table).
    pub code: &'static str,
    /// Severity class (derivable from the code's letter, kept explicit).
    pub severity: Severity,
    /// 0-based index of the rule the finding is about, when rule-scoped.
    pub rule: Option<usize>,
    /// Source position, when the program was parsed from text.
    pub span: Option<Span>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(r) = self.rule {
            write!(f, " rule {r}")?;
        }
        if let Some(s) = self.span {
            write!(f, " at {s}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Which of the four repair semantics provably produce identical
/// delete-sets for a program, decided purely from its syntax.
///
/// Produced by [`certify`]; the flags are cumulative in strength
/// (`pure_cascade` implies `interaction_free`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct EquivalenceCertificate {
    /// No rule has a delta body atom: the program is one stratum of
    /// DC-style rules, so **end = stage**.
    pub single_stratum: bool,
    /// No rule-head relation occurs as a non-witness base atom in any body
    /// (the static "non-overlapping heads" counterpart of
    /// `provenance::ProvGraph::is_interaction_free`), so
    /// **end = stage = step**.
    pub interaction_free: bool,
    /// Interaction-free and every base body atom *is* the head witness:
    /// the Horn constraints force a unique minimal stabilizing set, so
    /// **all four semantics coincide**.
    pub pure_cascade: bool,
}

impl EquivalenceCertificate {
    /// Does the certificate prove any nontrivial equivalence?
    pub fn any(&self) -> bool {
        self.single_stratum || self.interaction_free || self.pure_cascade
    }

    /// Human-readable statement of what is certified.
    pub fn describe(&self) -> String {
        if self.pure_cascade {
            "pure cascade: independent = step = stage = end (all four delete-sets coincide)"
                .to_owned()
        } else if self.interaction_free {
            let stratum = if self.single_stratum {
                "single-stratum, "
            } else {
                ""
            };
            format!("{stratum}interaction-free: step = stage = end delete-sets coincide")
        } else if self.single_stratum {
            "single-stratum: stage = end delete-sets coincide".to_owned()
        } else {
            "no static equivalence certificate".to_owned()
        }
    }
}

/// The analyzer's output: ordered diagnostics plus the certificate.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Findings ordered by rule index, then pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// The semantics-equivalence certificate.
    pub certificate: EquivalenceCertificate,
}

impl LintReport {
    /// Any error-severity findings? (The CLI maps this to exit code 7.)
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Count findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Human-readable rendering: one line per diagnostic, then the
    /// certificate, then a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!("certificate: {}\n", self.certificate.describe()));
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// Machine-readable rendering (the CLI's `lint --json`). Hand-rolled —
    /// the workspace deliberately has no serde dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"code\": \"{}\", ", d.code));
            out.push_str(&format!("\"severity\": \"{}\", ", d.severity));
            match d.rule {
                Some(r) => out.push_str(&format!("\"rule\": {r}, ")),
                None => out.push_str("\"rule\": null, "),
            }
            match d.span {
                Some(s) => out.push_str(&format!("\"line\": {}, \"col\": {}, ", s.line, s.col)),
                None => out.push_str("\"line\": null, \"col\": null, "),
            }
            out.push_str(&format!("\"message\": \"{}\"}}", json_escape(&d.message)));
        }
        out.push_str("\n  ],\n");
        let c = &self.certificate;
        out.push_str(&format!(
            "  \"certificate\": {{\"single_stratum\": {}, \"interaction_free\": {}, \"pure_cascade\": {}, \"describe\": \"{}\"}},\n",
            c.single_stratum,
            c.interaction_free,
            c.pure_cascade,
            json_escape(&c.describe())
        ));
        out.push_str(&format!(
            "  \"errors\": {}, \"warnings\": {}, \"infos\": {}\n}}\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Run every pass over `program`. Passes that need a schema (validation,
/// unused relations) are skipped when `schema` is `None` — the CLI uses
/// this to lint a program file without a database.
pub fn lint(schema: Option<&Schema>, program: &Program) -> LintReport {
    lint_impl(schema, None, program)
}

/// [`lint`] with a loaded instance: schema passes run against its schema,
/// and the cartesian pass (`W103`) quantifies each disconnected join with
/// an estimated blow-up factor from the instance's live column statistics
/// instead of only flagging the shape.
pub fn lint_with_stats(db: Option<&Instance>, program: &Program) -> LintReport {
    lint_impl(db.map(|d| d.schema()), db, program)
}

fn lint_impl(schema: Option<&Schema>, db: Option<&Instance>, program: &Program) -> LintReport {
    let mut diags: Vec<Diagnostic> = Vec::new();
    if let Some(schema) = schema {
        validation_pass(schema, program, &mut diags);
        unused_relation_pass(schema, program, &mut diags);
    }
    dead_rule_pass(program, &mut diags);
    contradiction_pass(program, &mut diags);
    cartesian_pass(program, db, &mut diags);
    duplicate_pass(program, &mut diags);
    recursion_pass(program, &mut diags);
    let certificate = certify(program);
    if certificate.any() {
        diags.push(Diagnostic {
            code: "I203",
            severity: Severity::Info,
            rule: None,
            span: None,
            message: certificate.describe(),
        });
    }
    // Deterministic presentation: rule-scoped findings by rule index (stable
    // within a rule: pass order), program-scoped findings last.
    diags.sort_by_key(|d| d.rule.map_or(usize::MAX, |r| r));
    LintReport {
        diagnostics: diags,
        certificate,
    }
}

/// Statically certify which semantics coincide for `program`.
///
/// Soundness (`H` = set of head relations; "witness" = the Def. 3.1 body
/// atom repeating the head's relation and argument vector):
///
/// * **single-stratum** — no delta body atoms. End evaluates every rule once
///   over the frozen database; stage fires the same matches at stage 1, and
///   deletion can only *remove* matches of these monotone conjunctive
///   bodies, so stage 2 finds nothing new: end = stage. (Step may differ:
///   firing one match can void another's witness.)
/// * **interaction-free** — no rule has a non-witness base atom over a
///   relation in `H`. Then every runtime assignment's base tuples are either
///   the head's own witness tuple or tuples of relations that are never
///   deleted, i.e. `provenance::ProvGraph::is_interaction_free` holds on
///   *every* database. Firing a step deletion then never voids another
///   derivation, so the greedy step run deletes everything end deletes
///   (step = end), and every end derivation survives stage-by-stage
///   (stage = end): end = stage = step.
/// * **pure cascade** — interaction-free and every base body atom is the
///   witness itself. The independent semantics' constraints become Horn
///   implications "body deltas ⊆ S ⟹ witness ∈ S" whose unique minimal
///   model is exactly the end fixpoint, so the Min-Ones optimum is forced:
///   all four coincide.
pub fn certify(program: &Program) -> EquivalenceCertificate {
    let heads: BTreeSet<&str> = program
        .rules
        .iter()
        .map(|r| r.head.relation.as_str())
        .collect();
    let single_stratum = program.rules.iter().all(|r| !r.has_delta_body());
    let is_witness = |r: &Rule, a: &Atom| {
        !a.is_delta && a.relation == r.head.relation && a.terms == r.head.terms
    };
    let interaction_free = program.rules.iter().all(|r| {
        r.body
            .iter()
            .all(|a| a.is_delta || is_witness(r, a) || !heads.contains(a.relation.as_str()))
    });
    let pure_cascade = interaction_free
        && program
            .rules
            .iter()
            .all(|r| r.body.iter().all(|a| a.is_delta || is_witness(r, a)));
    EquivalenceCertificate {
        single_stratum,
        interaction_free,
        pure_cascade,
    }
}

/// `E001`–`E006`: Definition 3.1 well-formedness and safety, surfaced as
/// diagnostics (one per offending rule) instead of a bare first error.
fn validation_pass(schema: &Schema, program: &Program, diags: &mut Vec<Diagnostic>) {
    for (i, rule) in program.rules.iter().enumerate() {
        if let Err(e) = validate::validate_rule(schema, rule) {
            let code = match &e {
                DatalogError::UnknownRelation { .. } => "E001",
                DatalogError::Arity { .. } => "E002",
                DatalogError::TypeMismatch { .. } => "E003",
                DatalogError::HeadNotDelta { .. } => "E004",
                DatalogError::MissingHeadWitness { .. } => "E005",
                DatalogError::UnsafeVariable { .. } => "E006",
                // Validation raises no other variants; keep a stable code
                // rather than panicking if that ever changes.
                _ => "E000",
            };
            diags.push(Diagnostic {
                code,
                severity: Severity::Error,
                rule: Some(i),
                span: e.span().or(rule.span()),
                message: e.to_string(),
            });
        }
    }
}

/// `I201`: schema relations the program never mentions.
fn unused_relation_pass(schema: &Schema, program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut referenced: BTreeSet<&str> = BTreeSet::new();
    for r in &program.rules {
        referenced.insert(r.head.relation.as_str());
        for a in &r.body {
            referenced.insert(a.relation.as_str());
        }
    }
    for (_, rs) in schema.iter() {
        if !referenced.contains(rs.name.as_str()) {
            diags.push(Diagnostic {
                code: "I201",
                severity: Severity::Info,
                rule: None,
                span: None,
                message: format!("relation `{}` is not referenced by the program", rs.name),
            });
        }
    }
}

/// `W101`: rules whose body is provably empty because a delta body atom's
/// relation is never the head of any rule — nothing can ever derive it.
fn dead_rule_pass(program: &Program, diags: &mut Vec<Diagnostic>) {
    let heads: BTreeSet<&str> = program
        .rules
        .iter()
        .map(|r| r.head.relation.as_str())
        .collect();
    for (i, rule) in program.rules.iter().enumerate() {
        for a in &rule.body {
            if a.is_delta && !heads.contains(a.relation.as_str()) {
                diags.push(Diagnostic {
                    code: "W101",
                    severity: Severity::Warning,
                    rule: Some(i),
                    span: a.span.or(rule.span()),
                    message: format!(
                        "dead rule: no rule derives `delta {}`, so this body can never hold",
                        a.relation
                    ),
                });
            }
        }
    }
}

/// `W102`: comparisons that are false for every assignment — false
/// constant-constant comparisons, trivially false self-comparisons
/// (`x < x`, `x != x`), and contradictory `var = const` bindings (directly
/// or against another comparison on the same variable).
fn contradiction_pass(program: &Program, diags: &mut Vec<Diagnostic>) {
    use crate::ast::CmpOp;
    for (i, rule) in program.rules.iter().enumerate() {
        let push = |msg: String, span: Option<Span>, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                code: "W102",
                severity: Severity::Warning,
                rule: Some(i),
                span,
                message: msg,
            });
        };
        // Equality bindings var -> const seen so far, in comparison order.
        let mut bindings: Vec<(Sym, &Value)> = Vec::new();
        for c in &rule.comparisons {
            match (&c.lhs, &c.rhs) {
                (Term::Const(a), Term::Const(b)) if !c.op.eval(a, b) => {
                    push(
                        format!("comparison `{c}` is always false"),
                        rule.span(),
                        diags,
                    );
                }
                (Term::Var(v), Term::Var(w)) if v == w => {
                    if matches!(c.op, CmpOp::Ne | CmpOp::Lt | CmpOp::Gt) {
                        push(
                            format!("comparison `{c}` is always false"),
                            rule.span(),
                            diags,
                        );
                    }
                }
                (Term::Var(v), Term::Const(k)) | (Term::Const(k), Term::Var(v)) => {
                    // Orient constant to the right for evaluation.
                    let (op, val) = if matches!(c.lhs, Term::Var(_)) {
                        (c.op, k)
                    } else {
                        (flip(c.op), k)
                    };
                    if let Some((_, bound)) = bindings.iter().find(|(b, _)| b == v) {
                        if !op.eval(bound, val) {
                            push(
                                format!(
                                    "comparison `{c}` contradicts earlier binding `{v} = {bound}`",
                                ),
                                rule.span(),
                                diags,
                            );
                        }
                    } else if op == CmpOp::Eq {
                        bindings.push((*v, val));
                    }
                }
                _ => {}
            }
        }
    }
}

/// Mirror a comparison operator so `const op var` reads as `var op' const`.
fn flip(op: crate::ast::CmpOp) -> crate::ast::CmpOp {
    use crate::ast::CmpOp::*;
    match op {
        Eq => Eq,
        Ne => Ne,
        Lt => Gt,
        Le => Ge,
        Gt => Lt,
        Ge => Le,
    }
}

/// Estimated live cardinality of one atom: live rows scaled by the exact
/// frequency of every constant column (from the relation's incrementally
/// maintained [`storage::ColumnStats`]). `None` when the atom's relation or
/// arity is unknown to the instance — the caller falls back to the purely
/// syntactic message.
fn atom_cardinality(db: &Instance, atom: &Atom) -> Option<f64> {
    let rel = db.schema().rel_id(&atom.relation)?;
    if db.schema().rel(rel).arity() != atom.terms.len() {
        return None;
    }
    let r = db.relation(rel);
    let live = r.live_count() as f64;
    let mut est = live;
    for (col, term) in atom.terms.iter().enumerate() {
        if let Term::Const(v) = term {
            if live == 0.0 {
                return Some(0.0);
            }
            est *= r.value_count(col, v) as f64 / live;
        }
    }
    Some(est)
}

/// `W103`: body atoms that share no variable with the rest of the body —
/// the join degenerates to a cartesian product. With live statistics the
/// diagnostic also reports the estimated blow-up: the product of every
/// component's estimated cardinality except the largest, i.e. the factor by
/// which the cross product multiplies the biggest component's row count.
fn cartesian_pass(program: &Program, db: Option<&Instance>, diags: &mut Vec<Diagnostic>) {
    for (i, rule) in program.rules.iter().enumerate() {
        let n = rule.body.len();
        if n < 2 {
            continue;
        }
        // Union-find over body atoms, merged on shared variables.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for a in 0..n {
            for b in a + 1..n {
                let shares = rule.body[a].terms.iter().any(|t| match t {
                    Term::Var(v) => rule.body[b]
                        .terms
                        .iter()
                        .any(|u| matches!(u, Term::Var(w) if w == v)),
                    Term::Const(_) => false,
                });
                if shares {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    parent[ra] = rb;
                }
            }
        }
        let mut roots: Vec<usize> = (0..n).map(|x| find(&mut parent, x)).collect();
        roots.sort_unstable();
        roots.dedup();
        if roots.len() > 1 {
            // With an instance, size each component from live statistics:
            // component cardinality = product of its atoms' estimated rows
            // (an upper bound that ignores intra-component joins — fine for
            // a lint). The blow-up is the product of all components except
            // the largest.
            let blowup = db.and_then(|db| {
                let mut parent = parent.clone();
                let mut sizes: BTreeMap<usize, f64> = BTreeMap::new();
                for (a, atom) in rule.body.iter().enumerate() {
                    let est = atom_cardinality(db, atom)?;
                    let root = find(&mut parent, a);
                    *sizes.entry(root).or_insert(1.0) *= est;
                }
                let product: f64 = sizes.values().product();
                let max = sizes.values().fold(0.0_f64, |m, &v| m.max(v));
                Some(if max > 0.0 { product / max } else { 0.0 })
            });
            let suffix = match blowup {
                Some(b) if b >= 100.0 => {
                    format!("; estimated blow-up ×{b:.0} from live statistics")
                }
                Some(b) => format!("; estimated blow-up ×{b:.1} from live statistics"),
                None => String::new(),
            };
            diags.push(Diagnostic {
                code: "W103",
                severity: Severity::Warning,
                rule: Some(i),
                span: rule.span(),
                message: format!(
                    "body atoms form {} disconnected join components (cartesian product){suffix}",
                    roots.len()
                ),
            });
        }
    }
}

/// `W104` (duplicate) and `W105` (subsumed): pairwise rule comparison via
/// substitution subsumption. Rule `a` subsumes rule `b` when a variable
/// substitution θ maps `a`'s head to `b`'s head, every atom of θ(body(a))
/// into `b`'s body, and every comparison of θ(cmp(a)) into `b`'s
/// comparisons — then every firing of `b` is matched by a firing of `a`
/// deriving the same head, so `b` is redundant.
fn duplicate_pass(program: &Program, diags: &mut Vec<Diagnostic>) {
    let n = program.rules.len();
    for j in 0..n {
        for i in 0..n {
            if i == j {
                continue;
            }
            let (a, b) = (&program.rules[i], &program.rules[j]);
            if !subsumes(a, b) {
                continue;
            }
            if i < j && subsumes(b, a) {
                diags.push(Diagnostic {
                    code: "W104",
                    severity: Severity::Warning,
                    rule: Some(j),
                    span: b.span(),
                    message: format!("rule {j} duplicates rule {i}"),
                });
            } else if !subsumes(b, a) {
                diags.push(Diagnostic {
                    code: "W105",
                    severity: Severity::Warning,
                    rule: Some(j),
                    span: b.span(),
                    message: format!("rule {j} is subsumed by the more general rule {i}"),
                });
            }
            // Only report each redundant rule once.
            break;
        }
    }
}

/// Does rule `a` subsume rule `b`? Backtracking search for the
/// substitution θ (rule bodies are tiny — a handful of atoms).
fn subsumes(a: &Rule, b: &Rule) -> bool {
    let mut theta: Vec<(Sym, Term)> = Vec::new();
    if !match_atom(&a.head, &b.head, &mut theta) {
        return false;
    }
    match_body(a, b, 0, &mut theta)
}

fn match_body(a: &Rule, b: &Rule, next: usize, theta: &mut Vec<(Sym, Term)>) -> bool {
    if next == a.body.len() {
        return match_comparisons(a, b, 0, theta);
    }
    let pat = &a.body[next];
    for cand in &b.body {
        let mark = theta.len();
        if match_atom(pat, cand, theta) && match_body(a, b, next + 1, theta) {
            return true;
        }
        theta.truncate(mark);
    }
    false
}

fn match_comparisons(a: &Rule, b: &Rule, next: usize, theta: &mut Vec<(Sym, Term)>) -> bool {
    if next == a.comparisons.len() {
        return true;
    }
    let pat = &a.comparisons[next];
    for cand in &b.comparisons {
        if cand.op != pat.op {
            continue;
        }
        let mark = theta.len();
        if match_term(&pat.lhs, &cand.lhs, theta)
            && match_term(&pat.rhs, &cand.rhs, theta)
            && match_comparisons(a, b, next + 1, theta)
        {
            return true;
        }
        theta.truncate(mark);
    }
    false
}

fn match_atom(pat: &Atom, target: &Atom, theta: &mut Vec<(Sym, Term)>) -> bool {
    if pat.relation != target.relation
        || pat.is_delta != target.is_delta
        || pat.terms.len() != target.terms.len()
    {
        return false;
    }
    let mark = theta.len();
    for (p, t) in pat.terms.iter().zip(target.terms.iter()) {
        if !match_term(p, t, theta) {
            theta.truncate(mark);
            return false;
        }
    }
    true
}

fn match_term(pat: &Term, target: &Term, theta: &mut Vec<(Sym, Term)>) -> bool {
    match pat {
        Term::Const(_) => pat == target,
        Term::Var(v) => match theta.iter().find(|(b, _)| b == v) {
            Some((_, bound)) => bound == target,
            None => {
                theta.push((*v, *target));
                true
            }
        },
    }
}

/// `I202`: recursion through delta relations, with one offending cycle
/// printed. The engine evaluates recursive programs fine (delta relations
/// are bounded by their base relations), but the paper restricts attention
/// to non-recursive programs, so the cycle is worth knowing about.
fn recursion_pass(program: &Program, diags: &mut Vec<Diagnostic>) {
    let a = analysis::analyze(program);
    if a.max_cascade_depth.is_some() {
        return; // Acyclic.
    }
    if let Some(cycle) = find_cycle(program) {
        diags.push(Diagnostic {
            code: "I202",
            severity: Severity::Info,
            rule: None,
            span: None,
            message: format!(
                "program is recursive through delta relations: {}",
                cycle.join(" -> ")
            ),
        });
    }
}

/// One delta-dependency cycle `[A, B, …, A]`, deterministically (relations
/// and edges visited in sorted order).
fn find_cycle(program: &Program) -> Option<Vec<String>> {
    // Edges Δbody -> Δhead, sorted for determinism.
    let mut edges: BTreeSet<(&str, &str)> = BTreeSet::new();
    for r in &program.rules {
        for a in &r.body {
            if a.is_delta {
                edges.insert((a.relation.as_str(), r.head.relation.as_str()));
            }
        }
    }
    let nodes: BTreeSet<&str> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    let succ = |n: &str| -> Vec<&str> {
        edges
            .iter()
            .filter(|&&(a, _)| a == n)
            .map(|&(_, b)| b)
            .collect()
    };
    // Iterative DFS keeping the gray path to reconstruct the cycle.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    for &start in &nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next == 0 {
                color.insert(node, 1);
                path.push(node);
            }
            let succs = succ(node);
            if *next < succs.len() {
                let m = succs[*next];
                *next += 1;
                match color.get(m).copied().unwrap_or(0) {
                    1 => {
                        // Back edge: the cycle is the gray path from m.
                        let pos = path.iter().position(|&p| p == m).unwrap();
                        let mut cycle: Vec<String> =
                            path[pos..].iter().map(|s| s.to_string()).collect();
                        cycle.push(m.to_string());
                        return Some(cycle);
                    }
                    0 => stack.push((m, 0)),
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                path.pop();
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use storage::AttrType;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
        s.relation("Author", &[("aid", AttrType::Int), ("name", AttrType::Str)]);
        s.relation(
            "AuthGrant",
            &[("aid", AttrType::Int), ("gid", AttrType::Int)],
        );
        s
    }

    fn codes(src: &str) -> Vec<&'static str> {
        let p = parse_program(src).unwrap();
        lint(Some(&schema()), &p)
            .diagnostics
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_cascade_gets_only_certificate_info() {
        let c = codes(
            "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
             delta AuthGrant(a, g) :- AuthGrant(a, g), delta Grant(g, n).",
        );
        assert_eq!(c, vec!["I201", "I203"]); // Author unused + pure cascade.
    }

    #[test]
    fn certificate_classes() {
        // Pure cascade: everything coincides.
        let p = parse_program(
            "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
             delta AuthGrant(a, g) :- AuthGrant(a, g), delta Grant(g, n).",
        )
        .unwrap();
        let c = certify(&p);
        assert!(c.interaction_free && c.pure_cascade && !c.single_stratum);

        // Extra base atom over a non-head relation: interaction-free only.
        let p = parse_program("delta AuthGrant(a, g) :- AuthGrant(a, g), Grant(g, n), n = 'ERC'.")
            .unwrap();
        let c = certify(&p);
        assert!(c.interaction_free && !c.pure_cascade && c.single_stratum);

        // Figure 2's program: Writes-style interaction, nothing certified.
        let p = parse_program(
            "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
             delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
             delta AuthGrant(a, g) :- AuthGrant(a, g), Author(a, n), delta Grant(g2, gn).",
        )
        .unwrap();
        let c = certify(&p);
        assert!(!c.interaction_free && !c.pure_cascade && !c.single_stratum);
    }

    #[test]
    fn validation_errors_become_diagnostics_with_spans() {
        let p = parse_program("delta Nope(a) :- Nope(a).").unwrap();
        let report = lint(Some(&schema()), &p);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, "E001");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.rule, Some(0));
        assert_eq!(d.span, Some(Span { line: 1, col: 1 }));
        assert!(report.has_errors());
    }

    #[test]
    fn dead_rule_detected() {
        let c = codes("delta Grant(g, n) :- Grant(g, n), delta Author(a, m).");
        assert!(c.contains(&"W101"));
    }

    #[test]
    fn constant_contradictions() {
        assert!(codes("delta Grant(g, n) :- Grant(g, n), 1 = 2.").contains(&"W102"));
        assert!(codes("delta Grant(g, n) :- Grant(g, n), g != g.").contains(&"W102"));
        assert!(codes("delta Grant(g, n) :- Grant(g, n), g = 1, g = 2.").contains(&"W102"));
        assert!(codes("delta Grant(g, n) :- Grant(g, n), g = 5, g < 3.").contains(&"W102"));
        assert!(!codes("delta Grant(g, n) :- Grant(g, n), g = 5, g < 9.").contains(&"W102"));
    }

    #[test]
    fn cartesian_product_detected() {
        let c = codes("delta Grant(g, n) :- Grant(g, n), Author(a, m).");
        assert!(c.contains(&"W103"));
        let c = codes("delta Grant(g, n) :- Grant(g, n), AuthGrant(a, g).");
        assert!(!c.contains(&"W103"));
    }

    #[test]
    fn duplicates_and_subsumption() {
        // Variable renaming still counts as a duplicate.
        let c = codes(
            "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
             delta Grant(x, y) :- Grant(x, y), y = 'ERC'.",
        );
        assert!(c.contains(&"W104"));
        // The rule with an extra atom is subsumed by the general one.
        let c = codes(
            "delta Grant(g, n) :- Grant(g, n).
             delta Grant(g, n) :- Grant(g, n), AuthGrant(a, g).",
        );
        assert!(c.contains(&"W105"));
    }

    #[test]
    fn recursion_cycle_printed() {
        let p = parse_program(
            "delta Grant(g, n) :- Grant(g, n), delta AuthGrant(a, g).
             delta AuthGrant(a, g) :- AuthGrant(a, g), delta Grant(g, n).",
        )
        .unwrap();
        let report = lint(None, &p);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "I202")
            .expect("recursion diagnostic");
        assert!(
            d.message.contains("AuthGrant -> Grant -> AuthGrant")
                || d.message.contains("Grant -> AuthGrant -> Grant"),
            "cycle printed: {}",
            d.message
        );
    }

    #[test]
    fn json_and_render_are_well_formed() {
        let p = parse_program("delta Grant(g, n) :- Grant(g, n), 1 = 2.").unwrap();
        let report = lint(Some(&schema()), &p);
        let json = report.to_json();
        assert!(json.contains("\"code\": \"W102\""));
        assert!(json.contains("\"certificate\""));
        let human = report.render();
        assert!(human.contains("warning[W102]"));
        assert!(human.contains("certificate:"));
    }
}

//! Concrete syntax for delta programs.
//!
//! The textual form mirrors the paper's notation with `delta` spelled out:
//!
//! ```text
//! # rule (0) of Figure 2 — seed the deletion process
//! delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
//! delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
//! ```
//!
//! * Atoms are `Name(term, …)`; a `delta ` prefix (or a `~` sigil) marks a
//!   delta atom.
//! * Terms are variables (identifiers), integers, `'quoted'` / `"quoted"`
//!   strings, or `_` (an anonymous variable, fresh at each occurrence).
//! * Comparisons use `=`, `!=` (or `<>`), `<`, `<=`, `>`, `>=`.
//! * Rules end with `.`; `#`, `//` and `%` start line comments.

use crate::ast::{Atom, CmpOp, Comparison, Program, Rule, Span, Term};
use crate::error::DatalogError;
use storage::Value;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Turnstile, // :-
    Op(CmpOp),
    Tilde, // delta sigil
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> DatalogError {
        DatalogError::Syntax {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') | Some(b'%') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, DatalogError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b'~' => {
                    self.bump();
                    Tok::Tilde
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::Turnstile
                    } else {
                        return Err(self.err("expected `:-`"));
                    }
                }
                b'=' => {
                    self.bump();
                    Tok::Op(CmpOp::Eq)
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op(CmpOp::Ne)
                    } else {
                        return Err(self.err("expected `!=`"));
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            Tok::Op(CmpOp::Le)
                        }
                        Some(b'>') => {
                            self.bump();
                            Tok::Op(CmpOp::Ne)
                        }
                        _ => Tok::Op(CmpOp::Lt),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op(CmpOp::Ge)
                    } else {
                        Tok::Op(CmpOp::Gt)
                    }
                }
                b'\'' | b'"' => {
                    let quote = c;
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            None => return Err(self.err("unterminated string literal")),
                            Some(ch) if ch == quote => break,
                            Some(ch) => s.push(ch as char),
                        }
                    }
                    Tok::Str(s)
                }
                b'-' | b'0'..=b'9' => {
                    let mut s = String::new();
                    if c == b'-' {
                        s.push('-');
                        self.bump();
                    }
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            s.push(d as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if s == "-" {
                        return Err(self.err("expected digits after `-`"));
                    }
                    let v: i64 = s
                        .parse()
                        .map_err(|e| self.err(format!("bad integer `{s}`: {e}")))?;
                    Tok::Int(v)
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut s = String::new();
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            s.push(d as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(s)
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    fresh: u32,
}

impl Parser {
    fn err_at(&self, msg: impl Into<String>) -> DatalogError {
        let (line, col) = self
            .toks
            .get(self.pos)
            .map(|s| (s.line, s.col))
            .or_else(|| self.toks.last().map(|s| (s.line, s.col)))
            .unwrap_or((1, 1));
        DatalogError::Syntax {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), DatalogError> {
        match self.peek() {
            Some(t) if t == want => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err_at(format!("expected {what}"))),
        }
    }

    fn fresh_var(&mut self) -> Term {
        self.fresh += 1;
        Term::var(&format!("__anon{}", self.fresh))
    }

    /// Source position of the token at `pos`, for span recording.
    fn span_at(&self, pos: usize) -> Option<Span> {
        self.toks.get(pos).map(|s| Span {
            line: s.line,
            col: s.col,
        })
    }

    /// `delta`? Name `(` terms `)`; the `delta` may also be a `~` sigil.
    fn parse_atom(&mut self) -> Result<Atom, DatalogError> {
        let span = self.span_at(self.pos);
        let mut is_delta = false;
        match self.peek() {
            Some(Tok::Tilde) => {
                self.bump();
                is_delta = true;
            }
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("delta") => {
                self.bump();
                is_delta = true;
            }
            _ => {}
        }
        let name = match self.bump() {
            Some(Tok::Ident(id)) => id,
            _ => return Err(self.err_at("expected relation name")),
        };
        self.expect(&Tok::LParen, "`(`")?;
        let mut terms = Vec::new();
        loop {
            let term = match self.bump() {
                Some(Tok::Ident(id)) if id == "_" => self.fresh_var(),
                Some(Tok::Ident(id)) => Term::var(&id),
                Some(Tok::Int(v)) => Term::Const(Value::Int(v)),
                Some(Tok::Str(s)) => Term::Const(Value::str(&s)),
                _ => return Err(self.err_at("expected term")),
            };
            terms.push(term);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => return Err(self.err_at("expected `,` or `)`")),
            }
        }
        Ok(Atom {
            relation: name,
            is_delta,
            terms,
            span,
        })
    }

    fn parse_term(&mut self) -> Result<Term, DatalogError> {
        match self.bump() {
            Some(Tok::Ident(id)) if id == "_" => Ok(self.fresh_var()),
            Some(Tok::Ident(id)) => Ok(Term::var(&id)),
            Some(Tok::Int(v)) => Ok(Term::Const(Value::Int(v))),
            Some(Tok::Str(s)) => Ok(Term::Const(Value::str(&s))),
            _ => Err(self.err_at("expected term")),
        }
    }

    /// Lookahead: does a body item start an atom (`[delta] Name (`)?
    fn at_atom(&self) -> bool {
        match self.peek() {
            Some(Tok::Tilde) => true,
            Some(Tok::Ident(id)) => {
                let next = if id.eq_ignore_ascii_case("delta") {
                    // `delta Name(` — atom; `delta <op>` would be a variable
                    // named "delta" in a comparison, which we disallow for
                    // clarity.
                    return true;
                } else {
                    self.toks.get(self.pos + 1).map(|s| &s.tok)
                };
                matches!(next, Some(Tok::LParen))
            }
            _ => false,
        }
    }

    /// The comma-separated list of atoms and comparisons shared by rule
    /// bodies and denial constraints, terminated by `.`, end of input, or
    /// the start of the next rule.
    fn parse_body_items(&mut self) -> Result<(Vec<Atom>, Vec<Comparison>), DatalogError> {
        let mut body = Vec::new();
        let mut comparisons = Vec::new();
        loop {
            if self.at_atom() {
                body.push(self.parse_atom()?);
            } else {
                let lhs = self.parse_term()?;
                let op = match self.bump() {
                    Some(Tok::Op(op)) => op,
                    _ => return Err(self.err_at("expected comparison operator")),
                };
                let rhs = self.parse_term()?;
                comparisons.push(Comparison { lhs, op, rhs });
            }
            match self.peek() {
                Some(Tok::Comma) => {
                    self.bump();
                }
                Some(Tok::Dot) => {
                    self.bump();
                    break;
                }
                None => break,
                Some(Tok::Ident(_)) | Some(Tok::Tilde) => {
                    // Next rule begins without a terminating dot — accept it.
                    break;
                }
                _ => return Err(self.err_at("expected `,` or `.`")),
            }
        }
        Ok((body, comparisons))
    }

    fn parse_rule(&mut self) -> Result<Rule, DatalogError> {
        let span = self.span_at(self.pos);
        let head = self.parse_atom()?;
        self.expect(&Tok::Turnstile, "`:-`")?;
        let (body, comparisons) = self.parse_body_items()?;
        let mut rule = Rule::new(head, body, comparisons);
        rule.span = span;
        Ok(rule)
    }

    fn parse_program(&mut self) -> Result<Program, DatalogError> {
        let mut rules = Vec::new();
        while self.peek().is_some() {
            rules.push(self.parse_rule()?);
        }
        Ok(Program::new(rules))
    }
}

/// Parse a delta program from text. Well-formedness against a schema is a
/// separate step ([`crate::validate::validate_program`]).
pub fn parse_program(src: &str) -> Result<Program, DatalogError> {
    let toks = Lexer::new(src).tokenize()?;
    Parser {
        toks,
        pos: 0,
        fresh: 0,
    }
    .parse_program()
}

/// Parse a headless body — a comma-separated list of atoms and comparisons
/// with an optional leading `:-` and optional trailing `.`. This is the
/// concrete syntax for denial constraints ([`crate::dc`]).
pub fn parse_body(src: &str) -> Result<(Vec<Atom>, Vec<Comparison>), DatalogError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        toks,
        pos: 0,
        fresh: 0,
    };
    if p.peek() == Some(&Tok::Turnstile) {
        p.bump();
    }
    let items = p.parse_body_items()?;
    if p.peek().is_some() {
        return Err(p.err_at("unexpected input after the constraint body"));
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_program_parses() {
        let src = r#"
            # Figure 2 of the paper
            delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
            delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
            delta Pub(p, t) :- Pub(p, t), Writes(a, p), delta Author(a, n).
            delta Writes(a, p) :- Pub(p, t), Writes(a, p), delta Author(a, n).
            delta Cite(c, p) :- Cite(c, p), delta Pub(p, t), Writes(a1, c), Writes(a2, p).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 5);
        assert!(p.rules[0].head.is_delta);
        assert_eq!(p.rules[0].head.relation, "Grant");
        assert_eq!(p.rules[1].body.len(), 3);
        assert!(p.rules[1].body[2].is_delta);
        assert_eq!(p.rules[0].comparisons.len(), 1);
        assert!(!p.is_recursive());
    }

    #[test]
    fn tilde_sigil_and_operators() {
        let p =
            parse_program("~A(x) :- A(x), B(x, y), x < 5, y >= 2, x != y, y <> x, x <= 9, y > 0.")
                .unwrap();
        assert_eq!(p.rules[0].comparisons.len(), 6);
        assert_eq!(p.rules[0].comparisons[0].op, CmpOp::Lt);
        assert_eq!(p.rules[0].comparisons[3].op, CmpOp::Ne);
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let p = parse_program("delta A(x) :- A(x), B(_, _).").unwrap();
        let b = &p.rules[0].body[1];
        assert_ne!(b.terms[0], b.terms[1]);
    }

    #[test]
    fn string_constants_both_quotes() {
        let p = parse_program(r#"delta A(x) :- A(x), x = 'ERC', x = "NSF"."#).unwrap();
        assert_eq!(p.rules[0].comparisons.len(), 2);
    }

    #[test]
    fn negative_integers() {
        let p = parse_program("delta A(x) :- A(x), x > -10.").unwrap();
        assert_eq!(p.rules[0].comparisons[0].rhs, Term::Const(Value::Int(-10)));
    }

    #[test]
    fn missing_turnstile_is_a_syntax_error() {
        let err = parse_program("delta A(x) A(x).").unwrap_err();
        assert!(matches!(err, DatalogError::Syntax { .. }));
    }

    #[test]
    fn unterminated_string_is_a_syntax_error() {
        let err = parse_program("delta A(x) :- A(x), x = 'oops.").unwrap_err();
        assert!(matches!(err, DatalogError::Syntax { .. }));
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program("// c1\n% c2\n# c3\ndelta A(x) :- A(x). # trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn rules_without_final_dot() {
        let p = parse_program("delta A(x) :- A(x)").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn display_reparses() {
        let src = "delta Cite(c, p) :- Cite(c, p), delta Pub(p, t), Writes(a1, c), p < 100.";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }
}

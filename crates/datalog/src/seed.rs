//! Interventions: seeding the deletion process with concrete tuples.
//!
//! Section 3.6 ("Initialization of the database and the deletion process"):
//! when the database is stable but the user wants to delete a specific set
//! of tuples, the paper adds one rule `Δi(C̄) :- Ri(C̄)` per tuple — the
//! *intervention* of the causality literature [Roy & Suciu 2014], which
//! Figure 2's rule (0) instantiates for the ERC grant.
//!
//! [`seed_rule`] builds one such rule; [`with_interventions`] appends seeds
//! for a set of tuples to an existing program, ready to be handed to a
//! repairer.

use crate::ast::{Atom, Program, Rule, Term};
use storage::{Instance, TupleId};

/// The ground seed rule `ΔR(c̄) :- R(c̄).` for one tuple.
pub fn seed_rule(db: &Instance, tuple: TupleId) -> Rule {
    let rel = db.schema().rel(tuple.rel);
    let terms: Vec<Term> = db
        .tuple(tuple)
        .values()
        .iter()
        .map(|v| Term::Const(*v))
        .collect();
    let head = Atom::delta(&rel.name, terms.clone());
    let body = Atom::base(&rel.name, terms);
    Rule::new(head, vec![body], Vec::new())
}

/// `program` plus one seed rule per tuple in `interventions`, in order.
/// Duplicate tuples produce a single rule.
pub fn with_interventions(program: &Program, db: &Instance, interventions: &[TupleId]) -> Program {
    let mut out = program.clone();
    let mut seen: Vec<TupleId> = Vec::with_capacity(interventions.len());
    for &t in interventions {
        if !seen.contains(&t) {
            seen.push(t);
            out.rules.push(seed_rule(db, t));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use storage::{AttrType, Schema, Value};

    fn db() -> Instance {
        let mut s = Schema::new();
        s.relation("R", &[("x", AttrType::Int), ("n", AttrType::Str)]);
        let mut db = Instance::new(s);
        db.insert_values("R", [Value::Int(1), Value::str("a")])
            .unwrap();
        db.insert_values("R", [Value::Int(2), Value::str("b")])
            .unwrap();
        db
    }

    #[test]
    fn seed_rule_is_ground_and_well_formed() {
        let db = db();
        let t = db.all_tuple_ids().next().unwrap();
        let r = seed_rule(&db, t);
        assert!(r.head.is_delta);
        assert_eq!(r.body.len(), 1);
        assert_eq!(r.head.terms, r.body[0].terms);
        assert!(r.head.terms.iter().all(|t| matches!(t, Term::Const(_))));
        assert_eq!(r.to_string(), "delta R(1, 'a') :- R(1, 'a').");
    }

    #[test]
    fn interventions_append_and_dedupe() {
        let db = db();
        let base = parse_program("delta R(x, n) :- R(x, n), delta R(y, m), x != y.").unwrap();
        let tids: Vec<TupleId> = db.all_tuple_ids().collect();
        let p = with_interventions(&base, &db, &[tids[0], tids[0], tids[1]]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn seeded_program_validates_and_fires() {
        let db = db();
        let base = Program::new(Vec::new());
        let t = db.all_tuple_ids().next().unwrap();
        let p = with_interventions(&base, &db, &[t]);
        let mut db2 = db.clone();
        let ev = crate::Evaluator::new(&mut db2, p).expect("seed rules are valid");
        let state = db2.initial_state();
        assert!(
            !ev.is_stable(&db2, &state),
            "the seed makes the database unstable"
        );
    }
}

//! Well-formedness of delta programs (Definition 3.1 + range restriction).

use crate::ast::{Program, Rule, Term};
use crate::error::DatalogError;
use std::collections::HashSet;
use storage::{Schema, Sym};

/// Check one rule against `schema`.
///
/// Enforced properties:
///
/// 1. the head is a delta atom over a known relation with correct arity;
/// 2. **head witness** (Def. 3.1): the body contains a positive atom
///    `Ri(X)` whose relation and argument vector equal the head's — this is
///    what guarantees only existing tuples are deleted;
/// 3. every body atom references a known relation with correct arity and
///    type-correct constants;
/// 4. safety: every variable used in the head or in a comparison occurs in
///    some body atom.
pub fn validate_rule(schema: &Schema, rule: &Rule) -> Result<(), DatalogError> {
    if !rule.head.is_delta {
        return Err(DatalogError::HeadNotDelta {
            relation: rule.head.relation.clone(),
            span: rule.head.span,
        });
    }
    // Head + body atoms resolve against the schema.
    for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
        let rel = schema
            .rel_id(&atom.relation)
            .ok_or_else(|| DatalogError::UnknownRelation {
                relation: atom.relation.clone(),
                span: atom.span,
            })?;
        let rs = schema.rel(rel);
        if atom.terms.len() != rs.arity() {
            return Err(DatalogError::Arity {
                relation: atom.relation.clone(),
                expected: rs.arity(),
                got: atom.terms.len(),
                span: atom.span,
            });
        }
        for (col, term) in atom.terms.iter().enumerate() {
            if let Term::Const(v) = term {
                if !rs.attrs[col].ty.admits(v) {
                    return Err(DatalogError::TypeMismatch {
                        relation: atom.relation.clone(),
                        column: col,
                        span: atom.span,
                    });
                }
            }
        }
    }
    // Head witness.
    if head_witness(rule).is_none() {
        return Err(DatalogError::MissingHeadWitness {
            relation: rule.head.relation.clone(),
            span: rule.head.span,
        });
    }
    // Safety.
    let mut bound: HashSet<Sym> = HashSet::new();
    for atom in &rule.body {
        for t in &atom.terms {
            if let Term::Var(v) = t {
                bound.insert(*v);
            }
        }
    }
    let check = |t: &Term| -> Result<(), DatalogError> {
        if let Term::Var(v) = t {
            if !bound.contains(v) {
                return Err(DatalogError::UnsafeVariable {
                    rule: rule.to_string(),
                    var: v.to_string(),
                    span: rule.span(),
                });
            }
        }
        Ok(())
    };
    for t in &rule.head.terms {
        check(t)?;
    }
    for c in &rule.comparisons {
        check(&c.lhs)?;
        check(&c.rhs)?;
    }
    Ok(())
}

/// Index of the body atom serving as the head witness `Ri(X)` — positive,
/// same relation, identical argument vector.
pub fn head_witness(rule: &Rule) -> Option<usize> {
    rule.body
        .iter()
        .position(|a| !a.is_delta && a.relation == rule.head.relation && a.terms == rule.head.terms)
}

/// Validate every rule of `program`.
pub fn validate_program(schema: &Schema, program: &Program) -> Result<(), DatalogError> {
    for rule in &program.rules {
        validate_rule(schema, rule)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use storage::AttrType;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
        s.relation("Author", &[("aid", AttrType::Int), ("name", AttrType::Str)]);
        s.relation(
            "AuthGrant",
            &[("aid", AttrType::Int), ("gid", AttrType::Int)],
        );
        s
    }

    fn validate(src: &str) -> Result<(), DatalogError> {
        validate_program(&schema(), &parse_program(src).unwrap())
    }

    #[test]
    fn figure2_rule_is_valid() {
        validate("delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).")
            .unwrap();
    }

    #[test]
    fn head_must_be_delta() {
        let err = validate("Author(a, n) :- Author(a, n).").unwrap_err();
        assert!(matches!(err, DatalogError::HeadNotDelta { .. }));
    }

    #[test]
    fn head_witness_required() {
        // Body has Author(a, m) but the head vector is (a, n): not a witness.
        let err = validate("delta Author(a, n) :- Author(a, m), AuthGrant(a, g).").unwrap_err();
        assert!(matches!(err, DatalogError::MissingHeadWitness { .. }));
    }

    #[test]
    fn delta_atom_is_not_a_witness() {
        let err =
            validate("delta Author(a, n) :- delta Author(a, n), AuthGrant(a, g).").unwrap_err();
        assert!(matches!(err, DatalogError::MissingHeadWitness { .. }));
    }

    #[test]
    fn unknown_relation() {
        let err = validate("delta Nope(a) :- Nope(a).").unwrap_err();
        assert!(matches!(err, DatalogError::UnknownRelation { .. }));
    }

    #[test]
    fn arity_mismatch() {
        let err = validate("delta Grant(g) :- Grant(g).").unwrap_err();
        assert!(matches!(err, DatalogError::Arity { .. }));
    }

    #[test]
    fn constant_type_checked() {
        let err = validate("delta Grant(g, n) :- Grant(g, n), AuthGrant(5, 'x').").unwrap_err();
        assert!(matches!(err, DatalogError::TypeMismatch { .. }));
        validate("delta Grant(g, n) :- Grant(g, n), AuthGrant(5, 7).").unwrap();
    }

    #[test]
    fn comparison_vars_must_be_bound() {
        let err = validate("delta Grant(g, n) :- Grant(g, n), z < 5.").unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeVariable { .. }));
    }

    #[test]
    fn constants_in_head_are_fine_with_witness() {
        validate("delta Grant(g, 'ERC') :- Grant(g, 'ERC').").unwrap();
    }
}

//! Why-provenance: derivation trees for deleted tuples, and Graphviz
//! export of the full provenance graph (Figure 5 of the paper).
//!
//! The paper's Algorithm 2 consumes provenance as a graph; users of a
//! repair system want the inverse view — "*why* was this tuple deleted?".
//! [`Explainer::explain`] reconstructs a minimal derivation tree for any delta tuple
//! from the end-semantics assignment stream: the earliest-round assignment
//! deriving it, with delta premises expanded recursively (rounds strictly
//! decrease toward the seeds, so the recursion always terminates).

use datalog::Assignment;
use std::collections::HashMap;
use std::fmt::Write as _;
use storage::{Instance, TupleId};

/// One premise of a derivation step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Premise {
    /// A base tuple present in the database.
    Base(TupleId),
    /// A previously derived deletion, with its own derivation.
    Delta(Box<DerivationTree>),
}

/// A derivation tree for `Δ(root)`: the rule applied and the premises of
/// the chosen assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivationTree {
    /// The deleted tuple being explained.
    pub root: TupleId,
    /// Rule index within the program.
    pub rule: usize,
    /// End-semantics round in which `root` was first derived.
    pub layer: u32,
    /// Premises in body order.
    pub premises: Vec<Premise>,
}

impl DerivationTree {
    /// Number of nodes (derivation steps) in the tree.
    pub fn steps(&self) -> usize {
        1 + self
            .premises
            .iter()
            .map(|p| match p {
                Premise::Base(_) => 0,
                Premise::Delta(t) => t.steps(),
            })
            .sum::<usize>()
    }

    /// Depth of the tree (a seed derivation has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .premises
            .iter()
            .map(|p| match p {
                Premise::Base(_) => 0,
                Premise::Delta(t) => t.depth(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Render as an indented tree using the instance for tuple names.
    pub fn render(&self, db: &Instance) -> String {
        let mut out = String::new();
        self.render_into(db, 0, &mut out);
        out
    }

    fn render_into(&self, db: &Instance, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let _ = writeln!(
            out,
            "{pad}Δ {}   [rule {}, round {}]",
            db.display_tuple(self.root),
            self.rule,
            self.layer
        );
        for p in &self.premises {
            match p {
                Premise::Base(t) => {
                    let _ = writeln!(out, "{pad}  • {}", db.display_tuple(*t));
                }
                Premise::Delta(tree) => tree.render_into(db, indent + 1, out),
            }
        }
    }
}

/// Index assignments by head for repeated explanations.
pub struct Explainer<'a> {
    by_head: HashMap<TupleId, Vec<&'a Assignment>>,
    layer_of: &'a HashMap<TupleId, u32>,
}

impl<'a> Explainer<'a> {
    /// Build from the end-semantics provenance stream and layers
    /// (`end::run` returns both).
    pub fn new(
        assignments: &'a [Assignment],
        layer_of: &'a HashMap<TupleId, u32>,
    ) -> Explainer<'a> {
        let mut by_head: HashMap<TupleId, Vec<&Assignment>> = HashMap::new();
        for a in assignments {
            by_head.entry(a.head).or_default().push(a);
        }
        Explainer { by_head, layer_of }
    }

    /// The derivation tree rooted at `Δ(target)`, or `None` when the tuple
    /// was never derived. Chooses, at every node, the assignment whose
    /// delta premises have the smallest maximum round — the "earliest"
    /// explanation, which is also minimal in depth — breaking ties toward
    /// fewer delta premises (smaller trees).
    pub fn explain(&self, target: TupleId) -> Option<DerivationTree> {
        let candidates = self.by_head.get(&target)?;
        // Earliest assignment: minimize the maximum layer among delta
        // premises (0 when none — a seed or DC-style derivation), then the
        // number of delta premises.
        let best = candidates.iter().min_by_key(|a| {
            let max_layer = a
                .body
                .iter()
                .filter(|b| b.is_delta)
                .map(|b| self.layer_of.get(&b.tid).copied().unwrap_or(u32::MAX))
                .max()
                .unwrap_or(0);
            let delta_count = a.body.iter().filter(|b| b.is_delta).count();
            (max_layer, delta_count)
        })?;
        let premises = best
            .body
            .iter()
            .map(|b| {
                if b.is_delta {
                    // Layers strictly decrease: the premise was derived in
                    // an earlier round, so recursion terminates.
                    Premise::Delta(Box::new(
                        self.explain(b.tid)
                            .expect("delta premises of recorded assignments are derived"),
                    ))
                } else {
                    Premise::Base(b.tid)
                }
            })
            .collect();
        Some(DerivationTree {
            root: target,
            rule: best.rule,
            layer: *self.layer_of.get(&target).unwrap_or(&0),
            premises,
        })
    }
}

/// Graphviz DOT rendering of the full provenance graph: base tuples as
/// boxes, delta tuples as ellipses grouped by layer (Figure 5's layout),
/// one edge per (premise, head) pair.
pub fn to_dot(
    db: &Instance,
    assignments: &[Assignment],
    layer_of: &HashMap<TupleId, u32>,
) -> String {
    let mut out = String::from("digraph provenance {\n  rankdir=BT;\n");
    let mut max_layer = 0;
    for (&t, &l) in layer_of {
        let _ = writeln!(
            out,
            "  \"d{}_{}\" [label=\"Δ {}\", shape=ellipse];",
            t.rel.idx(),
            t.row,
            db.display_tuple(t)
        );
        max_layer = max_layer.max(l);
    }
    // Rank delta nodes by layer.
    for l in 1..=max_layer {
        let nodes: Vec<String> = layer_of
            .iter()
            .filter(|&(_, &nl)| nl == l)
            .map(|(&t, _)| format!("\"d{}_{}\"", t.rel.idx(), t.row))
            .collect();
        if !nodes.is_empty() {
            let _ = writeln!(out, "  {{ rank=same; {} }}", nodes.join("; "));
        }
    }
    let mut seen_base: Vec<TupleId> = Vec::new();
    let mut edges: Vec<String> = Vec::new();
    for a in assignments {
        for b in &a.body {
            let from = if b.is_delta {
                format!("d{}_{}", b.tid.rel.idx(), b.tid.row)
            } else {
                if !seen_base.contains(&b.tid) {
                    seen_base.push(b.tid);
                }
                format!("b{}_{}", b.tid.rel.idx(), b.tid.row)
            };
            edges.push(format!(
                "  \"{from}\" -> \"d{}_{}\";",
                a.head.rel.idx(),
                a.head.row
            ));
        }
    }
    for t in seen_base {
        let _ = writeln!(
            out,
            "  \"b{}_{}\" [label=\"{}\", shape=box];",
            t.rel.idx(),
            t.row,
            db.display_tuple(t)
        );
    }
    edges.sort_unstable();
    edges.dedup();
    for e in edges {
        let _ = writeln!(out, "{e}");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::eval::BodyBind;
    use storage::{AttrType, Instance, RelId, Schema, Value};

    fn tid(rel: u16, row: u32) -> TupleId {
        TupleId::new(RelId(rel), row)
    }

    fn assignment(rule: usize, head: TupleId, body: &[(TupleId, bool)]) -> Assignment {
        Assignment {
            rule,
            head,
            body: body
                .iter()
                .map(|&(tid, is_delta)| BodyBind { tid, is_delta })
                .collect(),
        }
    }

    fn demo_db() -> Instance {
        let mut s = Schema::new();
        s.relation("R", &[("x", AttrType::Int)]);
        s.relation("S", &[("x", AttrType::Int)]);
        let mut db = Instance::new(s);
        db.insert_values("R", [Value::Int(1)]).unwrap();
        db.insert_values("S", [Value::Int(1)]).unwrap();
        db.insert_values("S", [Value::Int(2)]).unwrap();
        db
    }

    #[test]
    fn explain_follows_earliest_derivation() {
        // Round 1: Δr0 (seed). Round 2: Δs0 from Δr0 + s1.
        let (r0, s0, s1) = (tid(0, 0), tid(1, 0), tid(1, 1));
        let assignments = vec![
            assignment(0, r0, &[(r0, false)]),
            assignment(1, s0, &[(s0, false), (r0, true), (s1, false)]),
        ];
        let layers: HashMap<TupleId, u32> = [(r0, 1), (s0, 2)].into();
        let ex = Explainer::new(&assignments, &layers);
        let tree = ex.explain(s0).expect("derived");
        assert_eq!(tree.rule, 1);
        assert_eq!(tree.layer, 2);
        assert_eq!(tree.steps(), 2);
        assert_eq!(tree.depth(), 2);
        // Premises: base s0, delta r0 (expanded), base s1.
        assert!(matches!(tree.premises[0], Premise::Base(t) if t == s0));
        assert!(matches!(&tree.premises[1], Premise::Delta(t) if t.root == r0 && t.steps() == 1));
        assert!(ex.explain(s1).is_none(), "never derived");
    }

    #[test]
    fn explain_prefers_shallower_alternative() {
        // Δs0 has two derivations: via Δr0 (round 1) or via Δs1 (round 2);
        // the earliest explanation uses Δr0.
        let (r0, s0, s1) = (tid(0, 0), tid(1, 0), tid(1, 1));
        let assignments = vec![
            assignment(0, r0, &[(r0, false)]),
            assignment(0, s1, &[(s1, false)]),
            assignment(1, s0, &[(s0, false), (s1, true), (r0, true)]),
            assignment(2, s0, &[(s0, false), (r0, true)]),
        ];
        let layers: HashMap<TupleId, u32> = [(r0, 1), (s1, 1), (s0, 2)].into();
        let ex = Explainer::new(&assignments, &layers);
        let tree = ex.explain(s0).unwrap();
        assert_eq!(tree.rule, 2, "equal max round, fewer delta premises wins");
        assert_eq!(tree.depth(), 2);
    }

    #[test]
    fn render_and_dot_name_tuples() {
        let db = demo_db();
        let (r0, s0) = (tid(0, 0), tid(1, 0));
        let assignments = vec![
            assignment(0, r0, &[(r0, false)]),
            assignment(1, s0, &[(s0, false), (r0, true)]),
        ];
        let layers: HashMap<TupleId, u32> = [(r0, 1), (s0, 2)].into();
        let ex = Explainer::new(&assignments, &layers);
        let rendered = ex.explain(s0).unwrap().render(&db);
        assert!(rendered.contains("Δ S(1)"));
        assert!(rendered.contains("rule 1, round 2"));
        assert!(rendered.contains("Δ R(1)"));

        let dot = to_dot(&db, &assignments, &layers);
        assert!(dot.starts_with("digraph provenance {"));
        assert!(dot.contains("Δ R(1)"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("rank=same"));
        assert!(dot.ends_with("}\n"));
    }
}

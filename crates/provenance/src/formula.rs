//! Boolean provenance formulas (Algorithm 1, lines 1–4).
//!
//! Every assignment found under the hypothetical view becomes one
//! [`ProvClause`]: the conjunction *"all base-bound tuples present AND all
//! delta-bound tuples deleted"*. The full provenance `F` is the disjunction
//! of all clauses; a database state is **stable** iff `¬F` holds. `¬F` is a
//! CNF over deletion variables directly (no Tseitin transformation needed):
//! negating one clause yields `⋁ deleted(p) ∨ ⋁ ¬deleted(n)`.

use datalog::Assignment;
use std::collections::HashSet;
use storage::{Instance, TupleId};

/// One assignment's provenance: satisfied iff every tuple in `pos` is
/// present and every tuple in `neg` is deleted.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProvClause {
    /// Tuples bound by base atoms (must be present).
    pub pos: Vec<TupleId>,
    /// Tuples bound by delta atoms (must be deleted).
    pub neg: Vec<TupleId>,
}

/// Split an assignment's body into sorted, deduplicated base (`pos`) and
/// delta (`neg`) sides, reusing the caller's buffers. The single source of
/// clause normalization — [`ProvClause::from_assignment`] and the
/// allocation-free [`ProvFormulaBuilder`] both go through here.
fn split_sides(a: &Assignment, pos: &mut Vec<TupleId>, neg: &mut Vec<TupleId>) {
    pos.clear();
    neg.clear();
    for b in &a.body {
        if b.is_delta {
            neg.push(b.tid);
        } else {
            pos.push(b.tid);
        }
    }
    pos.sort_unstable();
    pos.dedup();
    neg.sort_unstable();
    neg.dedup();
}

/// Do two sorted sides share a tuple? (Merge-scan.)
fn sides_share_tuple(pos: &[TupleId], neg: &[TupleId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < pos.len() && j < neg.len() {
        match pos[i].cmp(&neg[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

impl ProvClause {
    /// Build from an assignment, sorting and deduplicating each side.
    pub fn from_assignment(a: &Assignment) -> ProvClause {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        split_sides(a, &mut pos, &mut neg);
        ProvClause { pos, neg }
    }

    /// A clause requiring `t` both present and deleted can never be
    /// satisfied; its negation is a tautology and can be dropped.
    pub fn is_contradiction(&self) -> bool {
        sides_share_tuple(&self.pos, &self.neg)
    }

    /// Is the clause satisfied by deletion set membership `deleted`?
    pub fn satisfied_by(&self, deleted: impl Fn(TupleId) -> bool) -> bool {
        self.pos.iter().all(|&t| !deleted(t)) && self.neg.iter().all(|&t| deleted(t))
    }
}

/// The provenance of all possible delta tuples: `F = ⋁ clauses`.
#[derive(Clone, Debug, Default)]
pub struct ProvFormula {
    clauses: Vec<ProvClause>,
}

/// Incremental [`ProvFormula`] construction, deduplicating identical
/// clauses (e.g. two rules sharing a body, like rules (2) and (3) of
/// Figure 2) and dropping contradictions.
///
/// Algorithm 1's Eval phase streams assignments out of the evaluator;
/// feeding them straight into a builder avoids materializing (and cloning)
/// the whole assignment vector when only the formula is needed. The
/// builder allocates only for clauses it has not seen before: candidate
/// sides are assembled in reusable scratch buffers, hashed once, and
/// compared against stored clauses through an index table (the classic
/// interner layout), so the duplicate-heavy streams DC-style programs
/// produce cost no allocation per assignment.
#[derive(Debug)]
pub struct ProvFormulaBuilder {
    clauses: Vec<ProvClause>,
    /// Open-addressed table of indexes into `clauses`; `EMPTY` marks a
    /// free slot. Always a power of two, at most half full.
    table: Vec<u32>,
    /// Scratch for the candidate clause's sides.
    pos: Vec<TupleId>,
    neg: Vec<TupleId>,
}

const EMPTY: u32 = u32::MAX;

fn side_hash(h: &mut storage::FxHasher, side: &[TupleId]) {
    use std::hash::Hash;
    // Hash like `Vec<TupleId>` does: length prefix then elements, so equal
    // sides hash equal regardless of how they were assembled.
    side.len().hash(h);
    for t in side {
        t.hash(h);
    }
}

impl Default for ProvFormulaBuilder {
    fn default() -> ProvFormulaBuilder {
        ProvFormulaBuilder::new()
    }
}

impl ProvFormulaBuilder {
    /// Empty builder.
    pub fn new() -> ProvFormulaBuilder {
        ProvFormulaBuilder {
            clauses: Vec::new(),
            table: vec![EMPTY; 64],
            pos: Vec::new(),
            neg: Vec::new(),
        }
    }

    /// Fold one assignment's clause into the formula.
    pub fn add(&mut self, a: &Assignment) {
        split_sides(a, &mut self.pos, &mut self.neg);
        // Contradiction (tuple required both present and deleted): the
        // negated clause is a tautology — drop it.
        if sides_share_tuple(&self.pos, &self.neg) {
            return;
        }

        use std::hash::Hasher;
        let mut h = storage::FxHasher::default();
        side_hash(&mut h, &self.pos);
        side_hash(&mut h, &self.neg);
        let hash = h.finish();
        let mask = self.table.len() - 1;
        let mut slot = hash as usize & mask;
        loop {
            match self.table[slot] {
                EMPTY => break,
                idx => {
                    let c = &self.clauses[idx as usize];
                    if c.pos == self.pos && c.neg == self.neg {
                        return; // duplicate
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
        let idx = u32::try_from(self.clauses.len()).expect("formula too large");
        self.table[slot] = idx;
        self.clauses.push(ProvClause {
            pos: self.pos.clone(),
            neg: self.neg.clone(),
        });
        if self.clauses.len() * 2 > self.table.len() {
            self.grow();
        }
    }

    fn grow(&mut self) {
        use std::hash::Hasher;
        let new_len = self.table.len() * 2;
        let mask = new_len - 1;
        let mut table = vec![EMPTY; new_len];
        for (idx, c) in self.clauses.iter().enumerate() {
            let mut h = storage::FxHasher::default();
            side_hash(&mut h, &c.pos);
            side_hash(&mut h, &c.neg);
            let mut slot = h.finish() as usize & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = idx as u32;
        }
        self.table = table;
    }

    /// The formula, clauses in first-seen order.
    pub fn finish(self) -> ProvFormula {
        ProvFormula {
            clauses: self.clauses,
        }
    }
}

impl ProvFormula {
    /// Collect a formula from assignments via [`ProvFormulaBuilder`].
    pub fn from_assignments<'a>(assignments: impl IntoIterator<Item = &'a Assignment>) -> Self {
        let mut b = ProvFormulaBuilder::new();
        for a in assignments {
            b.add(a);
        }
        b.finish()
    }

    /// The clauses of `F`.
    pub fn clauses(&self) -> &[ProvClause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True when `F` is empty (the database is vacuously stable).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Every distinct tuple mentioned anywhere in the formula, sorted.
    /// These become the SAT variables; unmentioned tuples never need
    /// deletion.
    pub fn tuple_universe(&self) -> Vec<TupleId> {
        let mut all: Vec<TupleId> = self
            .clauses
            .iter()
            .flat_map(|c| c.pos.iter().chain(c.neg.iter()).copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Does a deletion set stabilize the database according to the formula?
    /// (`¬F` holds: no clause satisfied.) Used by tests to cross-check the
    /// evaluator's stability decision.
    pub fn stable_under(&self, deleted: &HashSet<TupleId>) -> bool {
        !self
            .clauses
            .iter()
            .any(|c| c.satisfied_by(|t| deleted.contains(&t)))
    }

    /// Render the negated formula `¬F` the way Example 5.1 prints it, with
    /// tuples shown as `Rel(v, …)`; deleted literals are shown negated.
    pub fn render_negation(&self, db: &Instance) -> String {
        let mut out = String::new();
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                out.push_str(" ∧ ");
            }
            out.push('(');
            let mut first = true;
            for &t in &c.pos {
                if !first {
                    out.push_str(" ∨ ");
                }
                first = false;
                out.push('¬');
                out.push_str(&db.display_tuple(t));
            }
            for &t in &c.neg {
                if !first {
                    out.push_str(" ∨ ");
                }
                first = false;
                out.push_str(&db.display_tuple(t));
            }
            out.push(')');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::eval::BodyBind;
    use storage::RelId;

    fn tid(rel: u16, row: u32) -> TupleId {
        TupleId::new(RelId(rel), row)
    }

    fn assignment(rule: usize, body: &[(u16, u32, bool)]) -> Assignment {
        Assignment {
            rule,
            head: tid(body[0].0, body[0].1),
            body: body
                .iter()
                .map(|&(r, w, d)| BodyBind {
                    tid: tid(r, w),
                    is_delta: d,
                })
                .collect(),
        }
    }

    #[test]
    fn clause_splits_pos_and_neg() {
        let a = assignment(0, &[(0, 1, false), (1, 2, true), (0, 3, false)]);
        let c = ProvClause::from_assignment(&a);
        assert_eq!(c.pos, vec![tid(0, 1), tid(0, 3)]);
        assert_eq!(c.neg, vec![tid(1, 2)]);
        assert!(!c.is_contradiction());
    }

    #[test]
    fn contradiction_detected() {
        let a = assignment(0, &[(0, 1, false), (0, 1, true)]);
        let c = ProvClause::from_assignment(&a);
        assert!(c.is_contradiction());
    }

    #[test]
    fn formula_dedups_identical_bodies() {
        // Two rules with the same body produce the same clause (the paper's
        // rules (2)/(3) of Figure 2 collapse in Example 5.1's formula).
        let a1 = assignment(2, &[(0, 1, false), (1, 2, true)]);
        let a2 = assignment(3, &[(0, 1, false), (1, 2, true)]);
        let f = ProvFormula::from_assignments([&a1, &a2]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn universe_is_sorted_unique() {
        let a1 = assignment(0, &[(0, 5, false), (1, 0, true)]);
        let a2 = assignment(1, &[(0, 5, false), (0, 1, false)]);
        let f = ProvFormula::from_assignments([&a1, &a2]);
        assert_eq!(f.tuple_universe(), vec![tid(0, 1), tid(0, 5), tid(1, 0)]);
    }

    #[test]
    fn stability_semantics() {
        // Clause: pos {A}, neg {B}: satisfied iff A kept and B deleted.
        let a = assignment(0, &[(0, 0, false), (0, 1, true)]);
        let f = ProvFormula::from_assignments([&a]);
        let none: HashSet<TupleId> = HashSet::new();
        assert!(f.stable_under(&none), "B not deleted: clause unsatisfied");
        let b_only: HashSet<TupleId> = [tid(0, 1)].into_iter().collect();
        assert!(!f.stable_under(&b_only), "A present, B deleted: violated");
        let both: HashSet<TupleId> = [tid(0, 0), tid(0, 1)].into_iter().collect();
        assert!(f.stable_under(&both), "deleting A voids the assignment");
    }
}

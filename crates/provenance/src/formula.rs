//! Boolean provenance formulas (Algorithm 1, lines 1–4).
//!
//! Every assignment found under the hypothetical view becomes one
//! [`ProvClause`]: the conjunction *"all base-bound tuples present AND all
//! delta-bound tuples deleted"*. The full provenance `F` is the disjunction
//! of all clauses; a database state is **stable** iff `¬F` holds. `¬F` is a
//! CNF over deletion variables directly (no Tseitin transformation needed):
//! negating one clause yields `⋁ deleted(p) ∨ ⋁ ¬deleted(n)`.

use datalog::Assignment;
use std::collections::HashSet;
use storage::{Instance, TupleId};

/// One assignment's provenance: satisfied iff every tuple in `pos` is
/// present and every tuple in `neg` is deleted.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProvClause {
    /// Tuples bound by base atoms (must be present).
    pub pos: Vec<TupleId>,
    /// Tuples bound by delta atoms (must be deleted).
    pub neg: Vec<TupleId>,
}

impl ProvClause {
    /// Build from an assignment, sorting and deduplicating each side.
    pub fn from_assignment(a: &Assignment) -> ProvClause {
        let mut pos: Vec<TupleId> = a
            .body
            .iter()
            .filter(|b| !b.is_delta)
            .map(|b| b.tid)
            .collect();
        let mut neg: Vec<TupleId> = a
            .body
            .iter()
            .filter(|b| b.is_delta)
            .map(|b| b.tid)
            .collect();
        pos.sort_unstable();
        pos.dedup();
        neg.sort_unstable();
        neg.dedup();
        ProvClause { pos, neg }
    }

    /// A clause requiring `t` both present and deleted can never be
    /// satisfied; its negation is a tautology and can be dropped.
    pub fn is_contradiction(&self) -> bool {
        // Both sides are sorted: merge-scan for a common element.
        let (mut i, mut j) = (0, 0);
        while i < self.pos.len() && j < self.neg.len() {
            match self.pos[i].cmp(&self.neg[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Is the clause satisfied by deletion set membership `deleted`?
    pub fn satisfied_by(&self, deleted: impl Fn(TupleId) -> bool) -> bool {
        self.pos.iter().all(|&t| !deleted(t)) && self.neg.iter().all(|&t| deleted(t))
    }
}

/// The provenance of all possible delta tuples: `F = ⋁ clauses`.
#[derive(Clone, Debug, Default)]
pub struct ProvFormula {
    clauses: Vec<ProvClause>,
}

impl ProvFormula {
    /// Collect a formula from assignments, deduplicating identical clauses
    /// (e.g. two rules sharing a body, like rules (2) and (3) of Figure 2)
    /// and dropping contradictions.
    pub fn from_assignments<'a>(assignments: impl IntoIterator<Item = &'a Assignment>) -> Self {
        let mut seen: HashSet<ProvClause> = HashSet::new();
        let mut clauses = Vec::new();
        for a in assignments {
            let c = ProvClause::from_assignment(a);
            if c.is_contradiction() {
                continue;
            }
            if seen.insert(c.clone()) {
                clauses.push(c);
            }
        }
        ProvFormula { clauses }
    }

    /// The clauses of `F`.
    pub fn clauses(&self) -> &[ProvClause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True when `F` is empty (the database is vacuously stable).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Every distinct tuple mentioned anywhere in the formula, sorted.
    /// These become the SAT variables; unmentioned tuples never need
    /// deletion.
    pub fn tuple_universe(&self) -> Vec<TupleId> {
        let mut all: Vec<TupleId> = self
            .clauses
            .iter()
            .flat_map(|c| c.pos.iter().chain(c.neg.iter()).copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Does a deletion set stabilize the database according to the formula?
    /// (`¬F` holds: no clause satisfied.) Used by tests to cross-check the
    /// evaluator's stability decision.
    pub fn stable_under(&self, deleted: &HashSet<TupleId>) -> bool {
        !self
            .clauses
            .iter()
            .any(|c| c.satisfied_by(|t| deleted.contains(&t)))
    }

    /// Render the negated formula `¬F` the way Example 5.1 prints it, with
    /// tuples shown as `Rel(v, …)`; deleted literals are shown negated.
    pub fn render_negation(&self, db: &Instance) -> String {
        let mut out = String::new();
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                out.push_str(" ∧ ");
            }
            out.push('(');
            let mut first = true;
            for &t in &c.pos {
                if !first {
                    out.push_str(" ∨ ");
                }
                first = false;
                out.push('¬');
                out.push_str(&db.display_tuple(t));
            }
            for &t in &c.neg {
                if !first {
                    out.push_str(" ∨ ");
                }
                first = false;
                out.push_str(&db.display_tuple(t));
            }
            out.push(')');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::eval::BodyBind;
    use storage::RelId;

    fn tid(rel: u16, row: u32) -> TupleId {
        TupleId::new(RelId(rel), row)
    }

    fn assignment(rule: usize, body: &[(u16, u32, bool)]) -> Assignment {
        Assignment {
            rule,
            head: tid(body[0].0, body[0].1),
            body: body
                .iter()
                .map(|&(r, w, d)| BodyBind {
                    tid: tid(r, w),
                    is_delta: d,
                })
                .collect(),
        }
    }

    #[test]
    fn clause_splits_pos_and_neg() {
        let a = assignment(0, &[(0, 1, false), (1, 2, true), (0, 3, false)]);
        let c = ProvClause::from_assignment(&a);
        assert_eq!(c.pos, vec![tid(0, 1), tid(0, 3)]);
        assert_eq!(c.neg, vec![tid(1, 2)]);
        assert!(!c.is_contradiction());
    }

    #[test]
    fn contradiction_detected() {
        let a = assignment(0, &[(0, 1, false), (0, 1, true)]);
        let c = ProvClause::from_assignment(&a);
        assert!(c.is_contradiction());
    }

    #[test]
    fn formula_dedups_identical_bodies() {
        // Two rules with the same body produce the same clause (the paper's
        // rules (2)/(3) of Figure 2 collapse in Example 5.1's formula).
        let a1 = assignment(2, &[(0, 1, false), (1, 2, true)]);
        let a2 = assignment(3, &[(0, 1, false), (1, 2, true)]);
        let f = ProvFormula::from_assignments([&a1, &a2]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn universe_is_sorted_unique() {
        let a1 = assignment(0, &[(0, 5, false), (1, 0, true)]);
        let a2 = assignment(1, &[(0, 5, false), (0, 1, false)]);
        let f = ProvFormula::from_assignments([&a1, &a2]);
        assert_eq!(f.tuple_universe(), vec![tid(0, 1), tid(0, 5), tid(1, 0)]);
    }

    #[test]
    fn stability_semantics() {
        // Clause: pos {A}, neg {B}: satisfied iff A kept and B deleted.
        let a = assignment(0, &[(0, 0, false), (0, 1, true)]);
        let f = ProvFormula::from_assignments([&a]);
        let none: HashSet<TupleId> = HashSet::new();
        assert!(f.stable_under(&none), "B not deleted: clause unsatisfied");
        let b_only: HashSet<TupleId> = [tid(0, 1)].into_iter().collect();
        assert!(!f.stable_under(&b_only), "A present, B deleted: violated");
        let both: HashSet<TupleId> = [tid(0, 0), tid(0, 1)].into_iter().collect();
        assert!(f.stable_under(&both), "deleting A voids the assignment");
    }
}

//! The layered provenance graph of Algorithm 2 (step semantics).
//!
//! Nodes are the delta tuples derivable under end semantics; each assignment
//! deriving `Δ(t)` contributes edges from the tuples it uses to `Δ(t)`
//! (Figure 5 of the paper). The graph supports:
//!
//! * the **layer** structure — a delta tuple's layer is the end-semantics
//!   round in which it is first derived;
//! * the **benefit** `b_t` of a base tuple — the number of assignments `t`
//!   participates in minus the number of assignments `Δ(t)` participates in;
//! * the greedy loop's cascading **prune**: selecting `t` for deletion voids
//!   every assignment that uses `t` as a base tuple (except derivations of
//!   `Δ(t)` itself); a delta node with all derivations voided is removed,
//!   which in turn voids the assignments using it as a delta-body tuple, and
//!   so on to a fixpoint.

use datalog::Assignment;
use std::collections::HashMap;
use storage::{FxHashMap, Instance, TupleId};

#[derive(Debug)]
struct DeltaNode {
    tid: TupleId,
    layer: u32,
    /// Assignments deriving this node.
    derivations: Vec<u32>,
    /// Assignments whose body uses this node (as a delta atom).
    used_in: Vec<u32>,
    voided_derivations: u32,
    alive: bool,
    selected: bool,
}

#[derive(Debug)]
struct ProvAssign {
    head: u32,
    voided: bool,
}

/// The provenance graph of `End(P, D)`.
#[derive(Debug)]
pub struct ProvGraph {
    nodes: Vec<DeltaNode>,
    node_of: FxHashMap<TupleId, u32>,
    assigns: Vec<ProvAssign>,
    uses_base: FxHashMap<TupleId, Vec<u32>>,
    /// `layer_nodes[l]` = node indexes in layer `l+1`.
    layer_nodes: Vec<Vec<u32>>,
}

impl ProvGraph {
    /// Build from end-semantics provenance: all recorded `assignments` and
    /// the 1-based `layer` (derivation round) of each derived delta tuple.
    ///
    /// Every head and every delta-body tuple must appear in `layer_of`
    /// (under end semantics a delta tuple can only be used after being
    /// derived).
    pub fn build(assignments: &[Assignment], layer_of: &HashMap<TupleId, u32>) -> ProvGraph {
        let mut nodes: Vec<DeltaNode> = Vec::new();
        let mut node_of: FxHashMap<TupleId, u32> = FxHashMap::default();
        let mut intern = |tid: TupleId, nodes: &mut Vec<DeltaNode>| -> u32 {
            *node_of.entry(tid).or_insert_with(|| {
                let layer = *layer_of
                    .get(&tid)
                    .expect("delta tuple must have an end-semantics layer");
                nodes.push(DeltaNode {
                    tid,
                    layer,
                    derivations: Vec::new(),
                    used_in: Vec::new(),
                    voided_derivations: 0,
                    alive: true,
                    selected: false,
                });
                (nodes.len() - 1) as u32
            })
        };

        let mut assigns: Vec<ProvAssign> = Vec::with_capacity(assignments.len());
        let mut uses_base: FxHashMap<TupleId, Vec<u32>> = FxHashMap::default();
        for a in assignments {
            let ai = assigns.len() as u32;
            let head = intern(a.head, &mut nodes);
            let mut base: Vec<TupleId> = a
                .body
                .iter()
                .filter(|b| !b.is_delta)
                .map(|b| b.tid)
                .collect();
            base.sort_unstable();
            base.dedup();
            let mut deltas: Vec<u32> = a
                .body
                .iter()
                .filter(|b| b.is_delta)
                .map(|b| intern(b.tid, &mut nodes))
                .collect();
            deltas.sort_unstable();
            deltas.dedup();
            nodes[head as usize].derivations.push(ai);
            for &t in &base {
                uses_base.entry(t).or_default().push(ai);
            }
            for &d in &deltas {
                nodes[d as usize].used_in.push(ai);
            }
            assigns.push(ProvAssign {
                head,
                voided: false,
            });
        }

        let max_layer = nodes.iter().map(|n| n.layer).max().unwrap_or(0);
        let mut layer_nodes = vec![Vec::new(); max_layer as usize];
        for (i, n) in nodes.iter().enumerate() {
            layer_nodes[(n.layer - 1) as usize].push(i as u32);
        }
        ProvGraph {
            nodes,
            node_of,
            assigns,
            uses_base,
            layer_nodes,
        }
    }

    /// Number of layers (the deepest derivation round).
    pub fn num_layers(&self) -> usize {
        self.layer_nodes.len()
    }

    /// Number of delta nodes.
    pub fn num_delta_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of assignments (edges groups).
    pub fn num_assignments(&self) -> usize {
        self.assigns.len()
    }

    /// The benefit `b_t` of base tuple `t`: assignments `t` participates in
    /// minus assignments `Δ(t)` participates in. Defined for any tuple that
    /// occurs in the graph; tuples not in the graph have benefit 0.
    pub fn benefit(&self, t: TupleId) -> i64 {
        let plus = self.uses_base.get(&t).map_or(0, Vec::len) as i64;
        let minus = self
            .node_of
            .get(&t)
            .map_or(0, |&n| self.nodes[n as usize].used_in.len()) as i64;
        plus - minus
    }

    /// Is `Δ(t)` still derivable (node present and not pruned)?
    pub fn is_alive(&self, t: TupleId) -> bool {
        self.node_of
            .get(&t)
            .is_some_and(|&n| self.nodes[n as usize].alive)
    }

    /// Delta tuples of 1-based `layer` that are alive and not yet selected.
    pub fn alive_unselected_in_layer(&self, layer: usize) -> Vec<TupleId> {
        self.layer_nodes[layer - 1]
            .iter()
            .filter_map(|&n| {
                let node = &self.nodes[n as usize];
                (node.alive && !node.selected).then_some(node.tid)
            })
            .collect()
    }

    /// Select base tuple `t` for deletion (add it to the stabilizing set)
    /// and prune: every assignment using `t` as a base tuple is voided —
    /// except derivations of `Δ(t)` itself — and delta nodes left with no
    /// live derivation are removed, cascading through delta-body uses.
    ///
    /// Selected nodes are exempt from removal (the paper keeps `Δ(tk)` and
    /// what is reachable from it in the graph).
    pub fn select(&mut self, t: TupleId) {
        let own = self.node_of.get(&t).copied();
        if let Some(n) = own {
            self.nodes[n as usize].selected = true;
        }
        let mut queue: Vec<u32> = Vec::new(); // assignments to void
        if let Some(uses) = self.uses_base.get(&t) {
            for &ai in uses {
                if Some(self.assigns[ai as usize].head) != own {
                    queue.push(ai);
                }
            }
        }
        while let Some(ai) = queue.pop() {
            let a = &mut self.assigns[ai as usize];
            if a.voided {
                continue;
            }
            a.voided = true;
            let head = a.head;
            let node = &mut self.nodes[head as usize];
            node.voided_derivations += 1;
            if node.alive
                && !node.selected
                && node.voided_derivations as usize == node.derivations.len()
            {
                node.alive = false;
                // Anything that needed Δ(node.tid) can no longer fire.
                queue.extend(node.used_in.iter().copied());
            }
        }
    }

    /// Is the graph free of deletion interactions — no delta node's tuple
    /// occurs as a *base* tuple of an assignment deriving a different head?
    ///
    /// When this holds (pure cascade programs; any forest-shaped graph),
    /// firing a rule can never void another tuple's derivation: under step
    /// semantics every end-derivable delta tuple eventually becomes
    /// derivable and must be fired, so **all** firing sequences delete
    /// exactly the full node set and the greedy traversal's answer is
    /// provably minimum. Checked against end-semantics provenance, which is
    /// a superset of every step-reachable assignment, so the certificate is
    /// sound (it never claims optimality wrongly; it may miss it).
    ///
    /// The *static* counterpart is `datalog::lint::certify`'s
    /// `interaction_free` flag: when no rule-head relation occurs as a
    /// non-witness base atom in any rule body, every assignment's base
    /// tuples are either the head's own witness tuple or tuples of
    /// never-deleted relations — so this runtime check holds on **every**
    /// database of such a program (`tests/certificate_differential.rs`
    /// spot-checks the implication on the paper's workloads).
    pub fn is_interaction_free(&self) -> bool {
        self.nodes.iter().enumerate().all(|(n, node)| {
            self.uses_base.get(&node.tid).is_none_or(|uses| {
                uses.iter()
                    .all(|&ai| self.assigns[ai as usize].head == n as u32)
            })
        })
    }

    /// Tuples whose delta node is alive, for debugging and tests.
    pub fn alive_tuples(&self) -> Vec<TupleId> {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.tid)
            .collect()
    }

    /// Human-readable dump in layer order (Figure 5 style).
    pub fn render(&self, db: &Instance) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for layer in 1..=self.num_layers() {
            let _ = write!(out, "layer {layer}:");
            for &n in &self.layer_nodes[layer - 1] {
                let node = &self.nodes[n as usize];
                let status = if node.selected {
                    "*"
                } else if node.alive {
                    ""
                } else {
                    "✗"
                };
                let _ = write!(out, " Δ{}{}", db.display_tuple(node.tid), status);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::eval::BodyBind;
    use storage::RelId;

    fn tid(rel: u16, row: u32) -> TupleId {
        TupleId::new(RelId(rel), row)
    }

    fn assignment(head: TupleId, body: &[(TupleId, bool)]) -> Assignment {
        Assignment {
            rule: 0,
            head,
            body: body
                .iter()
                .map(|&(t, is_delta)| BodyBind { tid: t, is_delta })
                .collect(),
        }
    }

    /// A small chain mimicking Figure 5's shape:
    /// Δ(g) seeded; Δ(a) :- a, ag, Δ(g); Δ(w) and Δ(p) each :- p, w, Δ(a).
    fn chain() -> (ProvGraph, [TupleId; 5]) {
        let g = tid(0, 0);
        let ag = tid(1, 0);
        let a = tid(2, 0);
        let w = tid(3, 0);
        let p = tid(4, 0);
        let assigns = vec![
            assignment(g, &[(g, false)]),
            assignment(a, &[(a, false), (ag, false), (g, true)]),
            assignment(w, &[(p, false), (w, false), (a, true)]),
            assignment(p, &[(p, false), (w, false), (a, true)]),
        ];
        let layers: HashMap<TupleId, u32> = [(g, 1), (a, 2), (w, 3), (p, 3)].into_iter().collect();
        (ProvGraph::build(&assigns, &layers), [g, ag, a, w, p])
    }

    #[test]
    fn build_counts() {
        let (graph, _) = chain();
        assert_eq!(graph.num_delta_nodes(), 4);
        assert_eq!(graph.num_assignments(), 4);
        assert_eq!(graph.num_layers(), 3);
    }

    #[test]
    fn benefits_match_figure5_logic() {
        let (graph, [g, ag, a, w, p]) = chain();
        // g: 2 assignments use g as base? only its own seed (1) plus none;
        // Δ(g) used in 1 → b_g = 1 - 1 = 0 for this shape.
        assert_eq!(graph.benefit(g), 0);
        // ag: used once, Δ(ag) never derived.
        assert_eq!(graph.benefit(ag), 1);
        // a participates once (its own derivation); Δ(a) used twice.
        assert_eq!(graph.benefit(a), -1);
        // w and p each appear as base in both layer-3 assignments.
        assert_eq!(graph.benefit(w), 2);
        assert_eq!(graph.benefit(p), 2);
    }

    #[test]
    fn select_prunes_dependents() {
        let (mut graph, [g, _, a, w, p]) = chain();
        graph.select(g);
        graph.select(a);
        assert!(graph.is_alive(w) && graph.is_alive(p));
        // Selecting w voids the derivation of Δ(p) (it uses base w), and
        // Δ(p) has no other derivation → pruned.
        graph.select(w);
        assert!(!graph.is_alive(p));
        assert!(graph.is_alive(w), "selected nodes stay in the graph");
        assert!(graph.alive_unselected_in_layer(3).is_empty());
    }

    #[test]
    fn own_derivation_not_voided_by_selecting_self() {
        let (mut graph, [g, ..]) = chain();
        // Δ(g)'s only derivation uses g itself; selecting g must not prune
        // Δ(g).
        graph.select(g);
        assert!(graph.is_alive(g));
    }

    #[test]
    fn cascade_through_delta_uses() {
        // Δ(x) :- x, b ;  Δ(y) :- y, Δ(x) ;  Δ(z) :- z, Δ(y).
        let x = tid(0, 0);
        let b = tid(0, 1);
        let y = tid(1, 0);
        let z = tid(2, 0);
        let assigns = vec![
            assignment(x, &[(x, false), (b, false)]),
            assignment(y, &[(y, false), (x, true)]),
            assignment(z, &[(z, false), (y, true)]),
        ];
        let layers: HashMap<TupleId, u32> = [(x, 1), (y, 2), (z, 3)].into_iter().collect();
        let mut graph = ProvGraph::build(&assigns, &layers);
        // Deleting b voids Δ(x)'s only derivation; the removal cascades to
        // Δ(y) and Δ(z).
        graph.select(b);
        assert!(!graph.is_alive(x));
        assert!(!graph.is_alive(y));
        assert!(!graph.is_alive(z));
        assert_eq!(graph.alive_tuples(), Vec::<TupleId>::new());
    }

    #[test]
    fn interaction_freedom_detects_pure_cascades() {
        // Δ(x) :- x ;  Δ(y) :- y, Δ(x): a pure cascade — no head occurs in
        // another assignment's base body.
        let x = tid(0, 0);
        let y = tid(1, 0);
        let cascade = vec![
            assignment(x, &[(x, false)]),
            assignment(y, &[(y, false), (x, true)]),
        ];
        let layers: HashMap<TupleId, u32> = [(x, 1), (y, 2)].into_iter().collect();
        assert!(ProvGraph::build(&cascade, &layers).is_interaction_free());

        // Δ(x) :- x, y ;  Δ(y) :- x, y: each head is a base tuple of the
        // other's derivation — firing one voids the other.
        let shared = vec![
            assignment(x, &[(x, false), (y, false)]),
            assignment(y, &[(x, false), (y, false)]),
        ];
        let layers: HashMap<TupleId, u32> = [(x, 1), (y, 1)].into_iter().collect();
        assert!(!ProvGraph::build(&shared, &layers).is_interaction_free());
    }

    #[test]
    fn multi_derivation_node_survives_partial_voiding() {
        // Δ(y) has two derivations, via b1 and via b2.
        let y = tid(0, 0);
        let b1 = tid(1, 0);
        let b2 = tid(1, 1);
        let assigns = vec![
            assignment(y, &[(y, false), (b1, false)]),
            assignment(y, &[(y, false), (b2, false)]),
        ];
        let layers: HashMap<TupleId, u32> = [(y, 1)].into_iter().collect();
        let mut graph = ProvGraph::build(&assigns, &layers);
        graph.select(b1);
        assert!(graph.is_alive(y), "second derivation still live");
        graph.select(b2);
        assert!(!graph.is_alive(y));
    }
}

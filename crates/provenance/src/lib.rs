//! # provenance — Boolean formulas and derivation graphs
//!
//! The two repair algorithms of *"On Multiple Semantics for Declarative
//! Database Repairs"* both consume data provenance:
//!
//! * **Algorithm 1** (independent semantics) stores the provenance of every
//!   *possible* delta tuple as a Boolean formula — a disjunction of clauses,
//!   one per assignment, where base tuples appear positively and delta tuples
//!   as the negation of their base counterpart. [`formula::ProvFormula`]
//!   holds this DNF-of-assignments and produces the negated CNF handed to the
//!   Min-Ones SAT solver.
//! * **Algorithm 2** (step semantics) traverses a *provenance graph*: nodes
//!   are the delta tuples derivable under end semantics plus the base tuples
//!   feeding them; an edge `t → Δ(t')` means `t` participates in an
//!   assignment deriving `Δ(t')`. [`graph::ProvGraph`] is that graph with the
//!   paper's layer structure, per-tuple *benefit* `b_t`, and the cascading
//!   prune used in the greedy loop.

//!
//! Incremental re-repair adds a third consumer: [`support::SupportIndex`]
//! is a *resumable* per-tuple adjacency over the recorded assignment
//! hyperedges, extended in place as change-seeded rounds discover new
//! assignments and pruned (entries of untouched tuples reused, not rebuilt)
//! as deletions invalidate old ones.

pub mod explain;
pub mod formula;
pub mod graph;
pub mod support;

pub use explain::{to_dot, DerivationTree, Explainer, Premise};
pub use formula::{ProvClause, ProvFormula, ProvFormulaBuilder};
pub use graph::ProvGraph;
pub use support::SupportIndex;

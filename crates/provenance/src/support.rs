//! A resumable index over end-semantics provenance hyperedges.
//!
//! Every recorded [`Assignment`] is one derivation hyperedge: the tuples its
//! body binds (base atoms positively, delta atoms through `Δ`) support the
//! head tuple. Incremental re-repair needs to answer, per tuple and without
//! re-enumerating the database:
//!
//! * which assignments **derive** `t` (`Δ(t)` loses membership when all of
//!   them die — the over-delete/re-derive phases of DRed);
//! * which assignments **use** `t` as a base binding (they die when `t`
//!   leaves the EDB);
//! * which assignments **use** `t` as a delta binding (they die when `Δ(t)`
//!   leaves the delta fixpoint).
//!
//! The index is *resumable*: new assignments discovered by a change-seeded
//! round are [`SupportIndex::push`]ed without touching existing entries, and
//! [`SupportIndex::retain`] drops a set of dead assignments while reusing
//! the entries of every untouched tuple. Assignment identity is the caller's
//! index into its own assignment store.

use datalog::Assignment;
use storage::{FxHashMap, TupleId};

/// Per-tuple adjacency of the provenance hypergraph. See the
/// [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct SupportIndex {
    by_head: FxHashMap<TupleId, Vec<u32>>,
    by_base: FxHashMap<TupleId, Vec<u32>>,
    by_delta: FxHashMap<TupleId, Vec<u32>>,
    len: usize,
}

impl SupportIndex {
    /// Empty index.
    pub fn new() -> SupportIndex {
        SupportIndex::default()
    }

    /// Index an assignment store wholesale: assignment `i` gets id `i`.
    pub fn build(assignments: &[Assignment]) -> SupportIndex {
        let mut idx = SupportIndex::new();
        for (i, a) in assignments.iter().enumerate() {
            idx.push(i as u32, a);
        }
        idx
    }

    /// Number of assignments indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index one new assignment under id `id` (resume point of the
    /// incremental engine: ids keep counting where the last sync stopped).
    /// Duplicate body bindings are recorded once per flavor.
    pub fn push(&mut self, id: u32, a: &Assignment) {
        self.by_head.entry(a.head).or_default().push(id);
        for b in &a.body {
            let map = if b.is_delta {
                &mut self.by_delta
            } else {
                &mut self.by_base
            };
            let ids = map.entry(b.tid).or_default();
            if ids.last() != Some(&id) {
                ids.push(id);
            }
        }
        self.len += 1;
    }

    /// Ids of assignments deriving `t`.
    pub fn deriving(&self, t: TupleId) -> &[u32] {
        self.by_head.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ids of assignments using `t` as a base binding.
    pub fn base_uses(&self, t: TupleId) -> &[u32] {
        self.by_base.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ids of assignments using `t` as a delta binding.
    pub fn delta_uses(&self, t: TupleId) -> &[u32] {
        self.by_delta.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Drop dead assignments, keeping id `i` iff `keep(i)`, and remap every
    /// surviving id through `remap` (the caller compacts its assignment
    /// store in parallel). Entries of tuples only touched by surviving
    /// assignments are reused, not rebuilt; tuples left with no assignments
    /// disappear from the index.
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool, mut remap: impl FnMut(u32) -> u32) {
        for map in [&mut self.by_head, &mut self.by_base, &mut self.by_delta] {
            map.retain(|_, ids| {
                ids.retain(|&i| keep(i));
                for i in ids.iter_mut() {
                    *i = remap(*i);
                }
                !ids.is_empty()
            });
        }
        // Every assignment has exactly one head entry, so the surviving
        // head ids are exactly the surviving assignments.
        self.len = self.by_head.values().map(Vec::len).sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::eval::BodyBind;
    use storage::RelId;

    fn tid(rel: u16, row: u32) -> TupleId {
        TupleId::new(RelId(rel), row)
    }

    fn asg(head: TupleId, body: &[(TupleId, bool)]) -> Assignment {
        Assignment {
            rule: 0,
            head,
            body: body
                .iter()
                .map(|&(t, d)| BodyBind {
                    tid: t,
                    is_delta: d,
                })
                .collect(),
        }
    }

    #[test]
    fn indexes_heads_and_both_body_flavors() {
        let a0 = asg(tid(0, 0), &[(tid(0, 0), false), (tid(1, 0), true)]);
        let a1 = asg(tid(0, 1), &[(tid(0, 1), false), (tid(1, 0), true)]);
        let idx = SupportIndex::build(&[a0, a1]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.deriving(tid(0, 0)), &[0]);
        assert_eq!(idx.deriving(tid(0, 1)), &[1]);
        assert_eq!(idx.base_uses(tid(0, 0)), &[0]);
        assert_eq!(idx.delta_uses(tid(1, 0)), &[0, 1]);
        assert_eq!(idx.delta_uses(tid(9, 9)), &[] as &[u32]);
    }

    #[test]
    fn duplicate_bindings_recorded_once_per_flavor() {
        // Same tuple twice as base, and once as delta: one base entry, one
        // delta entry.
        let a = asg(
            tid(0, 0),
            &[(tid(2, 5), false), (tid(2, 5), false), (tid(2, 5), true)],
        );
        let idx = SupportIndex::build(std::slice::from_ref(&a));
        assert_eq!(idx.base_uses(tid(2, 5)), &[0]);
        assert_eq!(idx.delta_uses(tid(2, 5)), &[0]);
    }

    #[test]
    fn push_resumes_and_retain_compacts() {
        let a0 = asg(tid(0, 0), &[(tid(1, 0), false)]);
        let a1 = asg(tid(0, 1), &[(tid(1, 0), false)]);
        let mut idx = SupportIndex::build(&[a0, a1]);
        let a2 = asg(tid(0, 2), &[(tid(1, 1), false)]);
        idx.push(2, &a2);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.base_uses(tid(1, 0)), &[0, 1]);

        // Drop assignment 1; survivors 0 and 2 compact to 0 and 1.
        let keep = [true, false, true];
        let remap = [0u32, u32::MAX, 1u32];
        idx.retain(|i| keep[i as usize], |i| remap[i as usize]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.base_uses(tid(1, 0)), &[0]);
        assert_eq!(idx.base_uses(tid(1, 1)), &[1]);
        assert_eq!(idx.deriving(tid(0, 1)), &[] as &[u32]);
    }
}

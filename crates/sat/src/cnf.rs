//! CNF formulas.

use std::fmt;

/// Variable index (0-based).
pub type Var = u32;

/// A literal: a variable or its negation, packed into one `u32`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// Negative literal `¬v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Is this a negation?
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    #[inline]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The value of the variable that satisfies this literal.
    #[inline]
    pub fn satisfying_value(self) -> bool {
        !self.is_neg()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// A CNF formula builder.
///
/// Clauses are stored in one flat literal array plus an offset table (CSR
/// layout): clause `i` is `lits[offsets[i]..offsets[i+1]]`. One growing
/// allocation instead of one box per clause, and sequential passes (the
/// Min-Ones simplifier makes several per solve) walk contiguous memory.
#[derive(Clone, Debug)]
pub struct Cnf {
    n_vars: usize,
    offsets: Vec<u32>,
    lits: Vec<Lit>,
    has_empty_clause: bool,
    scratch: Vec<Lit>,
}

impl Default for Cnf {
    fn default() -> Cnf {
        Cnf::new(0)
    }
}

impl Cnf {
    /// CNF over `n_vars` variables.
    pub fn new(n_vars: usize) -> Cnf {
        Cnf {
            n_vars,
            offsets: vec![0],
            lits: Vec::new(),
            has_empty_clause: false,
            scratch: Vec::new(),
        }
    }

    /// Allocate a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = self.n_vars as Var;
        self.n_vars += 1;
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of stored clauses.
    pub fn num_clauses(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Clause `i` as a literal slice.
    #[inline]
    pub fn clause(&self, i: usize) -> &[Lit] {
        &self.lits[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate the clauses as literal slices.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        self.offsets
            .windows(2)
            .map(|w| &self.lits[w[0] as usize..w[1] as usize])
    }

    /// Did an empty clause get added (formula trivially unsatisfiable)?
    pub fn trivially_unsat(&self) -> bool {
        self.has_empty_clause
    }

    /// Add a clause. Duplicate literals are removed; tautologies
    /// (`v ∨ ¬v ∨ …`) are skipped. Returns `true` if the clause was stored.
    ///
    /// An empty clause marks the formula unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        let mut c = std::mem::take(&mut self.scratch);
        c.clear();
        c.extend_from_slice(lits);
        c.sort_unstable();
        c.dedup();
        // Sorted order puts `v` right before `¬v`: adjacent check suffices.
        let tautology = c.windows(2).any(|w| w[0].var() == w[1].var());
        if !tautology {
            self.add_clause_presorted(&c);
        }
        self.scratch = c;
        !tautology
    }

    /// Add a clause already in strictly ascending literal order with
    /// distinct variables (so: no duplicates, no tautology). The CNF built
    /// from a provenance formula satisfies this by construction —
    /// [`Cnf::add_clause`]'s sort and checks would be pure overhead there.
    pub fn add_clause_presorted(&mut self, lits: &[Lit]) {
        debug_assert!(lits.windows(2).all(|w| w[0] < w[1]), "lits not sorted");
        debug_assert!(
            lits.windows(2).all(|w| w[0].var() != w[1].var()),
            "tautology or duplicate"
        );
        debug_assert!(lits.iter().all(|l| (l.var() as usize) < self.n_vars));
        if lits.is_empty() {
            self.has_empty_clause = true;
        }
        self.lits.extend_from_slice(lits);
        self.offsets
            .push(u32::try_from(self.lits.len()).expect("formula too large"));
    }

    /// Evaluate under a complete assignment (for tests/verification).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        !self.has_empty_clause
            && self.clauses().all(|c| {
                c.iter()
                    .any(|l| assignment[l.var() as usize] == l.satisfying_value())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing() {
        let p = Lit::pos(7);
        let n = Lit::neg(7);
        assert_eq!(p.var(), 7);
        assert_eq!(n.var(), 7);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(p.negated(), n);
        assert!(p.satisfying_value());
        assert!(!n.satisfying_value());
    }

    #[test]
    fn tautologies_skipped() {
        let mut f = Cnf::new(2);
        assert!(!f.add_clause(&[Lit::pos(0), Lit::neg(0)]));
        assert_eq!(f.num_clauses(), 0);
    }

    #[test]
    fn duplicates_removed() {
        let mut f = Cnf::new(2);
        assert!(f.add_clause(&[Lit::pos(0), Lit::pos(0), Lit::neg(1)]));
        assert_eq!(f.clause(0).len(), 2);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut f = Cnf::new(1);
        f.add_clause(&[]);
        assert!(f.trivially_unsat());
        assert!(!f.eval(&[false]));
    }

    #[test]
    fn eval_checks_all_clauses() {
        let mut f = Cnf::new(2);
        f.add_clause(&[Lit::pos(0)]);
        f.add_clause(&[Lit::neg(0), Lit::pos(1)]);
        assert!(f.eval(&[true, true]));
        assert!(!f.eval(&[true, false]));
        assert!(!f.eval(&[false, true]));
    }
}

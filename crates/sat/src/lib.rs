//! # sat — a Min-Ones SAT solver
//!
//! Replaces the Z3 SMT optimizer used by the paper's prototype for
//! **Algorithm 1** (independent semantics). The *Min-Ones SAT* problem
//! (Kratsch, Marx, Wahlström — cited as \[31\] in the paper) asks for a
//! satisfying assignment mapping the minimum number of variables to `True`;
//! here a `True` variable means "delete this tuple".
//!
//! The solver is a counter-based DPLL with
//!
//! * unit propagation and a trail for backtracking,
//! * top-level simplification (units + the positive-purity rule: a variable
//!   with no positive occurrence can always be `False`),
//! * **connected-component decomposition** — repair CNFs produced by denial
//!   constraints split into thousands of tiny violation clusters whose
//!   minima simply add up; this is the property that makes the NP-hard
//!   semantics "efficient in practice" (Section 5.1),
//! * branch & bound on the number of `True` variables with a `False`-first
//!   value order and a disjoint-positive-clause lower bound,
//! * an optional node budget, after which the incumbent is returned with
//!   `optimal = false`.

pub mod cnf;
pub mod minones;
pub mod solver;

pub use cnf::{Cnf, Lit, Var};
pub use minones::{solve_min_ones, MinOnesOptions, Outcome, Solution, Stats};

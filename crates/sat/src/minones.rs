//! Min-Ones orchestration: simplification, component decomposition,
//! per-component branch & bound, and recombination.

use crate::cnf::{Cnf, Lit, Var};
use crate::solver::BnB;

/// Solver options. The defaults are the full algorithm; switching features
/// off is how the ablation benchmarks isolate their contribution.
#[derive(Clone, Copy, Debug)]
pub struct MinOnesOptions {
    /// Split the residual formula into connected components and add up their
    /// independent minima.
    pub decompose: bool,
    /// Maximum decision nodes per component before giving up on optimality
    /// and returning the incumbent.
    pub node_budget: u64,
    /// Stop each component at its first (`False`-first descent) solution —
    /// a fast approximation instead of the exact minimum.
    pub first_solution_only: bool,
    /// Worker threads for component solving. Connected components are
    /// independent subproblems; with `threads > 1` they are pulled from a
    /// shared atomic cursor by scoped worker threads and their solutions
    /// merged in component order — per-component search order, statistics
    /// and the final assignment are bit-identical to the serial loop.
    /// `1` (the default) keeps the allocation-reusing serial path.
    pub threads: usize,
}

impl Default for MinOnesOptions {
    fn default() -> Self {
        MinOnesOptions {
            decompose: true,
            node_budget: u64::MAX,
            first_solution_only: false,
            threads: 1,
        }
    }
}

/// Aggregate statistics of one solve.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Decision nodes across components.
    pub decisions: u64,
    /// Unit/pure assignments made by top-level simplification.
    pub simplified: usize,
    /// Number of connected components solved.
    pub components: usize,
    /// Size of the largest component (variables).
    pub largest_component: usize,
}

/// A satisfying assignment minimizing the number of `True` variables.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Value per variable. Variables not occurring in any clause are
    /// `false`.
    pub values: Vec<bool>,
    /// Number of `True` variables.
    pub ones: usize,
    /// Whether the count is proven minimal (no budget/approximation cut-off
    /// fired).
    pub optimal: bool,
    /// Solve statistics.
    pub stats: Stats,
}

/// Outcome of [`solve_min_ones`].
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The formula is satisfiable; the best assignment found.
    Sat(Solution),
    /// The formula is unsatisfiable.
    Unsat,
}

impl Outcome {
    /// The solution, if satisfiable.
    pub fn solution(self) -> Option<Solution> {
        match self {
            Outcome::Sat(s) => Some(s),
            Outcome::Unsat => None,
        }
    }
}

const UNSET: i8 = -1;

/// Top-level simplification to fixpoint: unit propagation plus the
/// positive-purity rule (a variable with no positive occurrence in any
/// not-yet-satisfied clause can always be `False` — `False` costs nothing
/// and only satisfies clauses). Returns `false` on UNSAT.
///
/// Deep cascades drive this to fixpoint over many iterations (each unit
/// chain link enables the next), so the loop body is one unit pass plus
/// one merged purity/occurrence pass, over buffers allocated once.
fn simplify(cnf: &Cnf, fixed: &mut [i8], simplified: &mut usize) -> bool {
    let n = cnf.num_vars();
    let mut pos_occ = vec![false; n];
    let mut occurs = vec![false; n];
    loop {
        let mut changed = false;
        // Unit propagation over the current partial assignment.
        for c in cnf.clauses() {
            let mut satisfied = false;
            let mut unassigned: Option<Lit> = None;
            let mut n_unassigned = 0;
            for &l in c.iter() {
                match fixed[l.var() as usize] {
                    UNSET => {
                        n_unassigned += 1;
                        unassigned = Some(l);
                    }
                    v => {
                        if (v == 1) == l.satisfying_value() {
                            satisfied = true;
                            break;
                        }
                    }
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => return false,
                1 => {
                    let l = unassigned.expect("counted");
                    fixed[l.var() as usize] = l.satisfying_value() as i8;
                    *simplified += 1;
                    changed = true;
                }
                _ => {}
            }
        }
        // Positive purity: a variable that occurs in some unsatisfied
        // clause but never positively there is safely `False`. One pass
        // computes both occurrence sets.
        pos_occ.iter_mut().for_each(|b| *b = false);
        occurs.iter_mut().for_each(|b| *b = false);
        for c in cnf.clauses() {
            let satisfied = c.iter().any(|l| {
                let f = fixed[l.var() as usize];
                f != UNSET && (f == 1) == l.satisfying_value()
            });
            if satisfied {
                continue;
            }
            for &l in c.iter() {
                if fixed[l.var() as usize] == UNSET {
                    occurs[l.var() as usize] = true;
                    if !l.is_neg() {
                        pos_occ[l.var() as usize] = true;
                    }
                }
            }
        }
        for v in 0..n {
            if fixed[v] == UNSET && occurs[v] && !pos_occ[v] {
                fixed[v] = 0;
                *simplified += 1;
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
}

struct DisjointSet {
    parent: Vec<u32>,
}

impl DisjointSet {
    fn new(n: usize) -> DisjointSet {
        DisjointSet {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Renumber one component's residual clauses to a dense local variable
/// range, appending into the caller's buffers (cleared here): `global_of`
/// maps local index → global var, `off`/`lits` are the local CSR. The
/// single translation used by both the serial (buffer-reusing) and
/// parallel (per-component-owned) solve paths — any remap change applies
/// to both by construction. Returns nothing; sizes are read off the
/// buffers.
#[allow(clippy::too_many_arguments)]
fn fill_local(
    clause_ids: &[usize],
    res_off: &[u32],
    res_lits: &[Lit],
    generation: u32,
    local_gen: &mut [u32],
    local_of: &mut [Var],
    global_of: &mut Vec<Var>,
    off: &mut Vec<u32>,
    lits: &mut Vec<Lit>,
) {
    global_of.clear();
    off.clear();
    off.push(0);
    lits.clear();
    for &ci in clause_ids {
        for &l in &res_lits[res_off[ci] as usize..res_off[ci + 1] as usize] {
            let v = l.var() as usize;
            if local_gen[v] != generation {
                local_gen[v] = generation;
                local_of[v] = global_of.len() as Var;
                global_of.push(l.var());
            }
            let lv = local_of[v];
            lits.push(if l.is_neg() {
                Lit::neg(lv)
            } else {
                Lit::pos(lv)
            });
        }
        off.push(lits.len() as u32);
    }
}

/// One component's branch & bound outcome, retry included.
struct ComponentResult {
    best: Option<(Vec<bool>, u32)>,
    complete: bool,
    decisions: u64,
}

/// Solve one connected component: the budgeted search first and, when the
/// budget expired before the first incumbent (which says nothing about
/// satisfiability), a pure greedy first-solution descent — it stops at its
/// first leaf and only completes exhaustively when the component is
/// genuinely unsatisfiable.
fn solve_component(
    n_local: usize,
    local_off: &[u32],
    local_lits: &[Lit],
    opts: &MinOnesOptions,
) -> ComponentResult {
    let result = BnB::new(
        n_local,
        local_off,
        local_lits,
        opts.node_budget,
        opts.first_solution_only,
    )
    .solve();
    let mut decisions = result.stats.decisions;
    let result = if result.best.is_none() && !result.complete {
        let retry = BnB::new(n_local, local_off, local_lits, u64::MAX, true).solve();
        decisions += retry.stats.decisions;
        retry
    } else {
        result
    };
    ComponentResult {
        best: result.best,
        complete: result.complete,
        decisions,
    }
}

/// Solve Min-Ones SAT for `cnf` under `opts`.
pub fn solve_min_ones(cnf: &Cnf, opts: &MinOnesOptions) -> Outcome {
    if cnf.trivially_unsat() {
        return Outcome::Unsat;
    }
    let n = cnf.num_vars();
    let mut stats = Stats::default();
    let mut fixed = vec![UNSET; n];
    if !simplify(cnf, &mut fixed, &mut stats.simplified) {
        return Outcome::Unsat;
    }

    // Residual clauses: not satisfied by `fixed`, restricted to unset vars.
    // CSR layout (flat literals + offsets): clause `i` of the residual is
    // `res_lits[res_off[i]..res_off[i+1]]` — no per-clause allocation.
    let mut res_off: Vec<u32> = vec![0];
    let mut res_lits: Vec<Lit> = Vec::new();
    for c in cnf.clauses() {
        let satisfied = c.iter().any(|l| {
            let f = fixed[l.var() as usize];
            f != UNSET && (f == 1) == l.satisfying_value()
        });
        if satisfied {
            continue;
        }
        let start = res_lits.len();
        res_lits.extend(
            c.iter()
                .copied()
                .filter(|l| fixed[l.var() as usize] == UNSET),
        );
        debug_assert!(
            res_lits.len() - start >= 2,
            "units handled by simplification"
        );
        res_off.push(res_lits.len() as u32);
    }
    let n_residual = res_off.len() - 1;
    let res_clause = |i: usize| &res_lits[res_off[i] as usize..res_off[i + 1] as usize];

    let mut values: Vec<bool> = fixed.iter().map(|&f| f == 1).collect();
    let mut optimal = true;

    if n_residual > 0 {
        // Group residual clauses into variable components.
        let mut dsu = DisjointSet::new(n);
        for ci in 0..n_residual {
            for w in res_clause(ci).windows(2) {
                dsu.union(w[0].var(), w[1].var());
            }
        }
        use storage::FxHashMap;
        let mut groups: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        for ci in 0..n_residual {
            let root = dsu.find(res_clause(ci)[0].var());
            groups.entry(root).or_default().push(ci);
        }
        let mut components: Vec<Vec<usize>> = if opts.decompose {
            groups.into_values().collect()
        } else {
            vec![(0..n_residual).collect()]
        };
        // Deterministic order (HashMap order is not).
        components.sort_by_key(|cs| res_clause(cs[0])[0].var());
        stats.components = components.len();
        // Local numbering buffers, reused across components. `local_of`
        // uses a generation stamp instead of clearing between components.
        let mut local_of: Vec<Var> = vec![0; n];
        let mut local_gen: Vec<u32> = vec![0; n];
        let mut generation = 0u32;
        let mut global_of: Vec<Var> = Vec::new();
        let mut local_off: Vec<u32> = Vec::new();
        let mut local_lits: Vec<Lit> = Vec::new();

        if opts.threads > 1 && components.len() > 1 {
            // Parallel path: materialize every component's local CSR first
            // (serial, cheap against the searches), then let scoped worker
            // threads pull components from a shared atomic cursor. Each
            // component's search is the identical single-threaded BnB, and
            // results are merged in component order, so the assignment,
            // per-component statistics and the optimality verdict are
            // bit-identical to the serial loop below.
            struct LocalCnf {
                global_of: Vec<Var>,
                off: Vec<u32>,
                lits: Vec<Lit>,
            }
            let mut locals: Vec<LocalCnf> = Vec::with_capacity(components.len());
            for clause_ids in &components {
                generation += 1;
                let mut local = LocalCnf {
                    global_of: Vec::new(),
                    off: Vec::new(),
                    lits: Vec::new(),
                };
                fill_local(
                    clause_ids,
                    &res_off,
                    &res_lits,
                    generation,
                    &mut local_gen,
                    &mut local_of,
                    &mut local.global_of,
                    &mut local.off,
                    &mut local.lits,
                );
                stats.largest_component = stats.largest_component.max(local.global_of.len());
                locals.push(local);
            }
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<ComponentResult>>> =
                locals.iter().map(|_| Mutex::new(None)).collect();
            let workers = opts.threads.min(locals.len());
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= locals.len() {
                            break;
                        }
                        let l = &locals[i];
                        let r = solve_component(l.global_of.len(), &l.off, &l.lits, opts);
                        *slots[i].lock().expect("no panics hold this lock") = Some(r);
                    });
                }
            });
            for (local, slot) in locals.iter().zip(slots) {
                let result = slot
                    .into_inner()
                    .expect("workers joined")
                    .expect("every component solved");
                stats.decisions += result.decisions;
                let Some((assignment, _)) = result.best else {
                    return Outcome::Unsat;
                };
                if !result.complete {
                    optimal = false;
                }
                for (lv, &gv) in local.global_of.iter().enumerate() {
                    values[gv as usize] = assignment[lv];
                }
            }
        } else {
            for clause_ids in components {
                generation += 1;
                fill_local(
                    &clause_ids,
                    &res_off,
                    &res_lits,
                    generation,
                    &mut local_gen,
                    &mut local_of,
                    &mut global_of,
                    &mut local_off,
                    &mut local_lits,
                );
                stats.largest_component = stats.largest_component.max(global_of.len());
                let result = solve_component(global_of.len(), &local_off, &local_lits, opts);
                stats.decisions += result.decisions;
                let Some((assignment, _)) = result.best else {
                    return Outcome::Unsat;
                };
                if !result.complete {
                    optimal = false;
                }
                for (lv, &gv) in global_of.iter().enumerate() {
                    values[gv as usize] = assignment[lv];
                }
            }
        }
    }

    debug_assert!(cnf.eval(&values), "solver returned a non-model");
    let ones = values.iter().filter(|&&b| b).count();
    Outcome::Sat(Solution {
        values,
        ones,
        optimal,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnf(n: usize, clauses: &[&[Lit]]) -> Cnf {
        let mut f = Cnf::new(n);
        for c in clauses {
            f.add_clause(c);
        }
        f
    }

    fn ones_of(n: usize, clauses: &[&[Lit]]) -> Option<usize> {
        solve_min_ones(&cnf(n, clauses), &MinOnesOptions::default())
            .solution()
            .map(|s| s.ones)
    }

    #[test]
    fn empty_formula_is_all_false() {
        assert_eq!(ones_of(4, &[]), Some(0));
    }

    #[test]
    fn triangle_plus_triangle_decomposes() {
        let l = |v| Lit::pos(v);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![l(0), l(1)],
            vec![l(1), l(2)],
            vec![l(2), l(0)],
            vec![l(3), l(4)],
            vec![l(4), l(5)],
            vec![l(5), l(3)],
        ];
        let refs: Vec<&[Lit]> = clauses.iter().map(Vec::as_slice).collect();
        let f = cnf(6, &refs);
        let sol = solve_min_ones(&f, &MinOnesOptions::default())
            .solution()
            .unwrap();
        assert_eq!(sol.ones, 4);
        assert_eq!(sol.stats.components, 2);
        assert!(sol.optimal);

        // Same answer without decomposition.
        let sol2 = solve_min_ones(
            &f,
            &MinOnesOptions {
                decompose: false,
                ..Default::default()
            },
        )
        .solution()
        .unwrap();
        assert_eq!(sol2.ones, 4);
        assert_eq!(sol2.stats.components, 1);
    }

    #[test]
    fn forced_deletions_via_units() {
        // del(g2) forced; (del(a) ∨ del(ag) ∨ ¬del(g2)) then needs one more.
        let g2: Var = 0;
        let a: Var = 1;
        let ag: Var = 2;
        let sol = solve_min_ones(
            &cnf(
                3,
                &[&[Lit::pos(g2)], &[Lit::pos(a), Lit::pos(ag), Lit::neg(g2)]],
            ),
            &MinOnesOptions::default(),
        )
        .solution()
        .unwrap();
        assert_eq!(sol.ones, 2);
        assert!(sol.values[g2 as usize]);
    }

    #[test]
    fn unsat_detected() {
        assert_eq!(ones_of(1, &[&[Lit::pos(0)], &[Lit::neg(0)]]), None);
    }

    #[test]
    fn pure_negative_vars_cost_nothing() {
        // (¬a ∨ ¬b) with nothing forcing them: 0 ones.
        assert_eq!(ones_of(2, &[&[Lit::neg(0), Lit::neg(1)]]), Some(0));
    }

    #[test]
    fn first_solution_only_is_marked_non_optimal_when_search_is_cut() {
        let l = |v| Lit::pos(v);
        let clauses: Vec<Vec<Lit>> = vec![vec![l(0), l(1)], vec![l(1), l(2)], vec![l(2), l(0)]];
        let refs: Vec<&[Lit]> = clauses.iter().map(Vec::as_slice).collect();
        let sol = solve_min_ones(
            &cnf(3, &refs),
            &MinOnesOptions {
                first_solution_only: true,
                ..Default::default()
            },
        )
        .solution()
        .unwrap();
        // Still a model, possibly not minimal.
        assert!(sol.ones >= 2);
        assert!(!sol.optimal);
    }

    #[test]
    fn unconstrained_variables_default_false() {
        let sol = solve_min_ones(&cnf(10, &[&[Lit::pos(3)]]), &MinOnesOptions::default())
            .solution()
            .unwrap();
        assert_eq!(sol.ones, 1);
        assert!(sol.values[3]);
        assert!(sol.values.iter().enumerate().all(|(i, &v)| v == (i == 3)));
    }

    /// Brute-force reference: minimum ones over all 2^n assignments.
    fn brute_min_ones(f: &Cnf) -> Option<usize> {
        let n = f.num_vars();
        let mut best: Option<usize> = None;
        for bits in 0u32..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if f.eval(&assignment) {
                let ones = assignment.iter().filter(|&&b| b).count();
                best = Some(best.map_or(ones, |b: usize| b.min(ones)));
            }
        }
        best
    }

    #[test]
    fn parallel_component_solving_matches_serial_bit_for_bit() {
        // Random multi-component formulas: the threaded component loop must
        // reproduce the serial solve exactly — assignment, count, verdict
        // and decision statistics.
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..40 {
            let n = 6 + (next() % 12) as usize; // 6..17 vars
            let m = 4 + (next() % 14) as usize; // 4..17 clauses
            let mut f = Cnf::new(n);
            for _ in 0..m {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = (next() % n as u64) as Var;
                        if next() % 3 == 0 {
                            Lit::neg(v)
                        } else {
                            Lit::pos(v)
                        }
                    })
                    .collect();
                f.add_clause(&lits);
            }
            let serial = solve_min_ones(&f, &MinOnesOptions::default());
            for threads in [2usize, 4, 8] {
                let par = solve_min_ones(
                    &f,
                    &MinOnesOptions {
                        threads,
                        ..Default::default()
                    },
                );
                match (&serial, &par) {
                    (Outcome::Unsat, Outcome::Unsat) => {}
                    (Outcome::Sat(a), Outcome::Sat(b)) => {
                        assert_eq!(a.values, b.values, "assignment diverged: {f:?}");
                        assert_eq!(a.ones, b.ones);
                        assert_eq!(a.optimal, b.optimal);
                        assert_eq!(a.stats.decisions, b.stats.decisions);
                        assert_eq!(a.stats.components, b.stats.components);
                        assert_eq!(a.stats.largest_component, b.stats.largest_component);
                        assert_eq!(a.stats.simplified, b.stats.simplified);
                    }
                    (a, b) => panic!("verdict diverged at {threads} threads: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_on_small_formulas() {
        // Deterministic pseudo-random 3-CNF instances.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..60 {
            let n = 3 + (next() % 6) as usize; // 3..8 vars
            let m = 2 + (next() % 10) as usize; // 2..11 clauses
            let mut f = Cnf::new(n);
            for _ in 0..m {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = (next() % n as u64) as Var;
                        if next() % 2 == 0 {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                f.add_clause(&lits);
            }
            let expected = brute_min_ones(&f);
            let got = solve_min_ones(&f, &MinOnesOptions::default());
            match (expected, got) {
                (None, Outcome::Unsat) => {}
                (Some(e), Outcome::Sat(s)) => {
                    assert_eq!(s.ones, e, "formula: {f:?}");
                    assert!(f.eval(&s.values));
                }
                (e, g) => panic!("mismatch: brute={e:?} solver={g:?} formula={f:?}"),
            }
        }
    }
}

//! Branch & bound DPLL core over one (sub)problem.
//!
//! Works on a *local* variable numbering — [`crate::minones`] maps each
//! connected component down to a dense range before calling in here.
//!
//! The search exploits the structure of Min-Ones: `False` costs nothing, so
//! the only clauses that can ever force a `True` are the **critical**
//! clauses — open clauses whose free literals are all positive. Everything
//! else can be satisfied for free by assigning the variable under one of its
//! negative literals `False`:
//!
//! * when no critical clause is open, assigning every remaining variable
//!   `False` is an optimal completion of the current node — the solver
//!   records it and backtracks, never branching further;
//! * **branching** picks the variable that occurs positively in the most
//!   critical clauses (maintained incrementally), trying `True` first, so
//!   the first leaf is the greedy hitting set of the critical core — a
//!   strong incumbent that makes the `ones` pruning bite immediately;
//! * the **lower bound** counts a variable-disjoint set of critical
//!   clauses, each forcing at least one distinct `True`.

use crate::cnf::{Lit, Var};

const UNASSIGNED: i8 = -1;

/// Borrowed CSR clause database used during construction.
#[derive(Clone, Copy)]
struct ClauseView<'c> {
    off: &'c [u32],
    lits: &'c [Lit],
}

impl<'c> ClauseView<'c> {
    #[inline]
    fn len(&self) -> usize {
        self.off.len() - 1
    }

    #[inline]
    fn get(&self, ci: usize) -> &'c [Lit] {
        &self.lits[self.off[ci] as usize..self.off[ci + 1] as usize]
    }
}

/// Search statistics for one subproblem.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Decision nodes explored.
    pub decisions: u64,
    /// Literals assigned by unit propagation.
    pub propagations: u64,
}

/// Result of a subproblem search.
pub struct SearchResult {
    /// Best assignment found, if the subproblem is satisfiable.
    pub best: Option<(Vec<bool>, u32)>,
    /// False when the node budget expired before the search finished.
    pub complete: bool,
    /// Statistics.
    pub stats: SearchStats,
}

/// Counter-based DPLL with a trail, critical-clause branching and pruning on
/// the number of `True` assignments.
pub struct BnB<'c> {
    /// Clause database in CSR form: clause `i` is
    /// `clause_lits[clause_off[i]..clause_off[i+1]]`.
    clause_off: &'c [u32],
    clause_lits: &'c [Lit],
    /// CSR occurrence lists: clause ids of positive occurrences of `v` are
    /// `occ_pos_dat[occ_pos_off[v]..occ_pos_off[v+1]]` (ascending clause
    /// order), likewise for negative. Flat arrays instead of one `Vec` per
    /// variable: no per-variable allocation, sequential memory traffic.
    occ_pos_off: Vec<u32>,
    occ_pos_dat: Vec<u32>,
    occ_neg_off: Vec<u32>,
    occ_neg_dat: Vec<u32>,
    assign: Vec<i8>,
    sat_count: Vec<u32>,
    /// Literals not yet falsified, per clause (0 with `sat_count` 0 is a
    /// conflict).
    unassigned_count: Vec<u32>,
    /// Negative literals not yet falsified, per clause. A clause with
    /// `sat_count == 0 && neg_free == 0` is *critical*: it can only be
    /// satisfied by setting one of its positive variables `True`.
    neg_free: Vec<u32>,
    /// Bitmask of critical clauses, maintained at the same flip points as
    /// `crit_score`. Lets the lower bound visit only critical clauses — in
    /// ascending clause order, i.e. exactly the order the previous
    /// full-scan implementation used, so search behaviour is unchanged.
    crit_bits: Vec<u64>,
    /// Per variable: number of critical clauses in which it occurs
    /// positively. The branching score.
    crit_score: Vec<u32>,
    /// Bitmask of variables with `crit_score > 0` — the only branching
    /// candidates. Ascending-bit iteration matches the previous full
    /// variable scan's order, so the same variable is always picked.
    cand_bits: Vec<u64>,
    trail: Vec<Var>,
    ones: u32,
    lb_stamp: Vec<u32>,
    stamp: u32,
    best_ones: u32,
    best: Option<Vec<bool>>,
    nodes: u64,
    budget: u64,
    aborted: bool,
    first_solution_only: bool,
    stats: SearchStats,
}

impl<'c> BnB<'c> {
    /// Build a solver for `n_vars` local variables over a borrowed CSR
    /// clause database (each clause tautology-free with unique variables,
    /// as produced by [`crate::Cnf::add_clause`]). Borrowing lets the
    /// caller retry a budget-expired component without copying anything.
    pub fn new(
        n_vars: usize,
        clause_off: &'c [u32],
        clause_lits: &'c [Lit],
        budget: u64,
        first_solution_only: bool,
    ) -> BnB<'c> {
        let clauses = ClauseView {
            off: clause_off,
            lits: clause_lits,
        };
        // Occurrence lists in CSR form: count, prefix-sum, fill. Filling in
        // clause order keeps each variable's clause ids ascending.
        let mut pos_cnt = vec![0u32; n_vars + 1];
        let mut neg_cnt = vec![0u32; n_vars + 1];
        let mut neg_free = vec![0u32; clauses.len()];
        for (ci, free) in neg_free.iter_mut().enumerate() {
            for &l in clauses.get(ci) {
                if l.is_neg() {
                    neg_cnt[l.var() as usize + 1] += 1;
                    *free += 1;
                } else {
                    pos_cnt[l.var() as usize + 1] += 1;
                }
            }
        }
        for v in 0..n_vars {
            pos_cnt[v + 1] += pos_cnt[v];
            neg_cnt[v + 1] += neg_cnt[v];
        }
        let (occ_pos_off, occ_neg_off) = (pos_cnt, neg_cnt);
        let mut occ_pos_dat = vec![0u32; *occ_pos_off.last().expect("n+1 offsets") as usize];
        let mut occ_neg_dat = vec![0u32; *occ_neg_off.last().expect("n+1 offsets") as usize];
        let mut pos_fill = occ_pos_off.clone();
        let mut neg_fill = occ_neg_off.clone();
        let mut crit_score = vec![0u32; n_vars];
        let mut crit_bits = vec![0u64; clauses.len().div_ceil(64)];
        let mut cand_bits = vec![0u64; n_vars.div_ceil(64)];
        for ci in 0..clauses.len() {
            for &l in clauses.get(ci) {
                let v = l.var() as usize;
                if l.is_neg() {
                    occ_neg_dat[neg_fill[v] as usize] = ci as u32;
                    neg_fill[v] += 1;
                } else {
                    occ_pos_dat[pos_fill[v] as usize] = ci as u32;
                    pos_fill[v] += 1;
                }
            }
            if neg_free[ci] == 0 {
                crit_bits[ci / 64] |= 1u64 << (ci % 64);
                for &l in clauses.get(ci) {
                    let v = l.var() as usize;
                    crit_score[v] += 1;
                    cand_bits[v / 64] |= 1u64 << (v % 64);
                }
            }
        }
        let unassigned_count = (0..clauses.len())
            .map(|ci| clauses.get(ci).len() as u32)
            .collect();
        BnB {
            sat_count: vec![0; clauses.len()],
            unassigned_count,
            neg_free,
            crit_bits,
            crit_score,
            cand_bits,
            clause_off,
            clause_lits,
            occ_pos_off,
            occ_pos_dat,
            occ_neg_off,
            occ_neg_dat,
            assign: vec![UNASSIGNED; n_vars],
            trail: Vec::new(),
            ones: 0,
            lb_stamp: vec![0; n_vars],
            stamp: 0,
            best_ones: u32::MAX,
            best: None,
            nodes: 0,
            budget,
            aborted: false,
            first_solution_only,
            stats: SearchStats::default(),
        }
    }

    /// Clause `ci` as a literal slice. Returns the `'c` borrow (not tied
    /// to `&self`), so callers can keep it across `&mut self` updates.
    #[inline]
    fn clause(&self, ci: usize) -> &'c [Lit] {
        &self.clause_lits[self.clause_off[ci] as usize..self.clause_off[ci + 1] as usize]
    }

    /// Number of clauses.
    #[inline]
    fn n_clauses(&self) -> usize {
        self.clause_off.len() - 1
    }

    /// Positive-occurrence clause ids of `v`, ascending.
    #[inline]
    fn occ_pos(&self, v: usize) -> &[u32] {
        &self.occ_pos_dat[self.occ_pos_off[v] as usize..self.occ_pos_off[v + 1] as usize]
    }

    /// Negative-occurrence clause ids of `v`, ascending.
    #[inline]
    fn occ_neg(&self, v: usize) -> &[u32] {
        &self.occ_neg_dat[self.occ_neg_off[v] as usize..self.occ_neg_off[v + 1] as usize]
    }

    /// Run the search and return the minimum-ones solution.
    pub fn solve(mut self) -> SearchResult {
        // Seed with the initial unit clauses; a root conflict means UNSAT.
        let mut ok = true;
        for ci in 0..self.n_clauses() {
            if self.clause(ci).len() == 1 && self.sat_count[ci] == 0 {
                let l = self.clause(ci)[0];
                if !self.propagate(l.var(), l.satisfying_value()) {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            self.search();
        }
        SearchResult {
            best: self.best.take().map(|b| (b, self.best_ones)),
            complete: !self.aborted,
            stats: self.stats,
        }
    }

    #[inline]
    fn is_critical(&self, ci: usize) -> bool {
        self.sat_count[ci] == 0 && self.neg_free[ci] == 0
    }

    /// Clause `ci` flipped criticality; shift the scores of its positive
    /// variables by `delta` and keep the critical bitmask in sync.
    #[inline]
    fn shift_crit(&mut self, ci: usize, delta: i32) {
        if delta > 0 {
            self.crit_bits[ci / 64] |= 1u64 << (ci % 64);
        } else {
            self.crit_bits[ci / 64] &= !(1u64 << (ci % 64));
        }
        for k in 0..self.clause(ci).len() {
            let l = self.clause(ci)[k];
            if !l.is_neg() {
                let v = l.var() as usize;
                let s = &mut self.crit_score[v];
                *s = (*s as i32 + delta) as u32;
                if *s == 0 {
                    self.cand_bits[v / 64] &= !(1u64 << (v % 64));
                } else {
                    self.cand_bits[v / 64] |= 1u64 << (v % 64);
                }
            }
        }
    }

    /// Assign `var := val` and propagate; returns `false` on conflict.
    fn propagate(&mut self, var: Var, val: bool) -> bool {
        let mut queue: Vec<(Var, bool)> = vec![(var, val)];
        while let Some((v, val)) = queue.pop() {
            match self.assign[v as usize] {
                UNASSIGNED => {}
                cur => {
                    if (cur == 1) == val {
                        continue;
                    }
                    return false;
                }
            }
            self.assign[v as usize] = val as i8;
            self.trail.push(v);
            if val {
                self.ones += 1;
            }
            self.stats.propagations += 1;
            // Clauses satisfied by this literal.
            let sat_len = if val {
                self.occ_pos(v as usize).len()
            } else {
                self.occ_neg(v as usize).len()
            };
            for i in 0..sat_len {
                let ci = if val {
                    self.occ_pos(v as usize)[i]
                } else {
                    self.occ_neg(v as usize)[i]
                } as usize;
                if self.is_critical(ci) {
                    self.shift_crit(ci, -1);
                }
                self.sat_count[ci] += 1;
            }
            // Clauses losing a falsified literal. On conflict the loop
            // still runs to completion so every counter reflects this
            // assignment — `undo_to` reverses whole trail entries and must
            // never see a half-applied one.
            let mut conflict = false;
            let false_len = if val {
                self.occ_neg(v as usize).len()
            } else {
                self.occ_pos(v as usize).len()
            };
            for i in 0..false_len {
                let ci = if val {
                    self.occ_neg(v as usize)[i]
                } else {
                    self.occ_pos(v as usize)[i]
                } as usize;
                self.unassigned_count[ci] -= 1;
                if val {
                    // A negative literal was falsified.
                    self.neg_free[ci] -= 1;
                    if self.is_critical(ci) {
                        self.shift_crit(ci, 1);
                    }
                }
                if self.sat_count[ci] == 0 && !conflict {
                    match self.unassigned_count[ci] {
                        0 => conflict = true,
                        1 => {
                            let l = self
                                .clause(ci)
                                .iter()
                                .copied()
                                .find(|l| self.assign[l.var() as usize] == UNASSIGNED)
                                .expect("one unassigned literal remains");
                            queue.push((l.var(), l.satisfying_value()));
                        }
                        _ => {}
                    }
                }
            }
            if conflict {
                return false;
            }
        }
        true
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail nonempty");
            let val = self.assign[v as usize] == 1;
            self.assign[v as usize] = UNASSIGNED;
            if val {
                self.ones -= 1;
            }
            // Un-satisfy.
            let sat_len = if val {
                self.occ_pos(v as usize).len()
            } else {
                self.occ_neg(v as usize).len()
            };
            for i in 0..sat_len {
                let ci = if val {
                    self.occ_pos(v as usize)[i]
                } else {
                    self.occ_neg(v as usize)[i]
                } as usize;
                self.sat_count[ci] -= 1;
                if self.is_critical(ci) {
                    self.shift_crit(ci, 1);
                }
            }
            // Restore falsified literals.
            let false_len = if val {
                self.occ_neg(v as usize).len()
            } else {
                self.occ_pos(v as usize).len()
            };
            for i in 0..false_len {
                let ci = if val {
                    self.occ_neg(v as usize)[i]
                } else {
                    self.occ_pos(v as usize)[i]
                } as usize;
                if val {
                    // A negative literal comes back.
                    if self.is_critical(ci) {
                        self.shift_crit(ci, -1);
                    }
                    self.neg_free[ci] += 1;
                }
                self.unassigned_count[ci] += 1;
            }
        }
    }

    /// Greedy lower bound: critical clauses each force at least one `True`;
    /// count a variable-disjoint set of them. Visits only the clauses in
    /// the critical bitmask, in ascending clause order — the same greedy
    /// traversal (hence the same bound) as a full scan, without touching
    /// the non-critical majority.
    fn lower_bound(&mut self) -> u32 {
        self.stamp += 1;
        let stamp = self.stamp;
        let mut lb = 0;
        'clause: for ci in CritIter::new(&self.crit_bits) {
            debug_assert!(self.is_critical(ci));
            for &l in self.clause(ci) {
                if self.assign[l.var() as usize] == UNASSIGNED
                    && self.lb_stamp[l.var() as usize] == stamp
                {
                    continue 'clause;
                }
            }
            for &l in self.clause(ci) {
                if self.assign[l.var() as usize] == UNASSIGNED {
                    self.lb_stamp[l.var() as usize] = stamp;
                }
            }
            lb += 1;
        }
        lb
    }

    /// Unassigned variable covering the most critical clauses; `None` when
    /// no critical clause is open. Scans only the candidate bitmask
    /// (variables with positive score), in ascending order — the same
    /// first-max tie-break as a full variable scan.
    fn pick_var(&self) -> Option<Var> {
        let mut best: Option<(Var, u32)> = None;
        for v in CritIter::new(&self.cand_bits) {
            if self.assign[v] != UNASSIGNED {
                continue;
            }
            let s = self.crit_score[v];
            debug_assert!(s > 0);
            match best {
                Some((_, bs)) if bs >= s => {}
                _ => best = Some((v as Var, s)),
            }
        }
        best.map(|(v, _)| v)
    }

    fn search(&mut self) {
        if self.aborted {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.budget {
            self.aborted = true;
            return;
        }
        if self.ones >= self.best_ones {
            return;
        }
        if self.ones + self.lower_bound() >= self.best_ones {
            return;
        }
        let Some(v) = self.pick_var() else {
            // No critical clause is open: every remaining clause still has a
            // free negative literal, so all-`False` satisfies them at zero
            // cost — an optimal completion of this node.
            self.best_ones = self.ones;
            self.best = Some(self.assign.iter().map(|&a| a == 1).collect());
            if self.first_solution_only {
                self.aborted = true;
            }
            return;
        };
        self.stats.decisions += 1;
        let mark = self.trail.len();
        // Greedy descent: cover the most critical clauses first.
        if self.ones + 1 < self.best_ones && self.propagate(v, true) {
            self.search();
        }
        self.undo_to(mark);
        if self.aborted {
            return;
        }
        if self.propagate(v, false) {
            self.search();
        }
        self.undo_to(mark);
    }
}

/// Iterator over set bits of the critical-clause mask, ascending.
struct CritIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> CritIter<'a> {
    fn new(words: &'a [u64]) -> CritIter<'a> {
        CritIter {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for CritIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(clauses: &[&[Lit]]) -> (Vec<u32>, Vec<Lit>) {
        let mut off = vec![0u32];
        let mut lits = Vec::new();
        for c in clauses {
            lits.extend_from_slice(c);
            off.push(lits.len() as u32);
        }
        (off, lits)
    }

    fn solve(n: usize, clauses: &[&[Lit]]) -> Option<(Vec<bool>, u32)> {
        let (off, lits) = csr(clauses);
        BnB::new(n, &off, &lits, u64::MAX, false).solve().best
    }

    #[test]
    fn triangle_vertex_cover_needs_two() {
        // (a∨b)(b∨c)(c∨a): minimum ones = 2.
        let (a, b, c) = (Lit::pos(0), Lit::pos(1), Lit::pos(2));
        let (_, ones) = solve(3, &[&[a, b], &[b, c], &[c, a]]).unwrap();
        assert_eq!(ones, 2);
    }

    #[test]
    fn star_cover_needs_one() {
        let center = Lit::pos(0);
        let clauses: Vec<Vec<Lit>> = (1..6).map(|i| vec![center, Lit::pos(i)]).collect();
        let refs: Vec<&[Lit]> = clauses.iter().map(Vec::as_slice).collect();
        let (vals, ones) = solve(6, &refs).unwrap();
        assert_eq!(ones, 1);
        assert!(vals[0]);
    }

    #[test]
    fn unit_conflict_is_unsat() {
        assert!(solve(1, &[&[Lit::pos(0)], &[Lit::neg(0)]]).is_none());
    }

    #[test]
    fn negative_literals_allow_zero_ones() {
        // (¬a ∨ ¬b): all-false works.
        let (_, ones) = solve(2, &[&[Lit::neg(0), Lit::neg(1)]]).unwrap();
        assert_eq!(ones, 0);
    }

    #[test]
    fn forced_chain_counts_ones() {
        // a; ¬a∨b; ¬b∨c  → all three true.
        let (vals, ones) = solve(
            3,
            &[
                &[Lit::pos(0)],
                &[Lit::neg(0), Lit::pos(1)],
                &[Lit::neg(1), Lit::pos(2)],
            ],
        )
        .unwrap();
        assert_eq!(ones, 3);
        assert_eq!(vals, vec![true, true, true]);
    }

    #[test]
    fn budget_abort_reported() {
        // A formula needing some search, with budget 1.
        let (a, b, c) = (Lit::pos(0), Lit::pos(1), Lit::pos(2));
        let (off, lits) = csr(&[&[a, b], &[b, c], &[c, a]]);
        let res = BnB::new(3, &off, &lits, 1, false).solve();
        assert!(!res.complete);
    }

    #[test]
    fn greedy_first_leaf_is_cover() {
        // Star + pendant: the greedy descent must pick the hub immediately.
        // Clauses (h∨x1)…(h∨x5), (x5∨y): min ones = 2 (h and one of x5/y).
        let h = Lit::pos(0);
        let mut clauses: Vec<Vec<Lit>> = (1..6).map(|i| vec![h, Lit::pos(i)]).collect();
        clauses.push(vec![Lit::pos(5), Lit::pos(6)]);
        let refs: Vec<&[Lit]> = clauses.iter().map(Vec::as_slice).collect();
        let (vals, ones) = solve(7, &refs).unwrap();
        assert_eq!(ones, 2);
        assert!(vals[0]);
    }

    #[test]
    fn cascade_cost_steers_away_from_hub() {
        // (h∨a)(h∨b) are coverable by h, but h=true forces c,d,e through
        // (¬h∨c)(¬h∨d)(¬h∨e): cost 4 with the hub vs 2 without.
        let (h, a, b, c, d, e) = (
            Lit::pos(0),
            Lit::pos(1),
            Lit::pos(2),
            Lit::pos(3),
            Lit::pos(4),
            Lit::pos(5),
        );
        let nh = Lit::neg(0);
        let (vals, ones) = solve(6, &[&[h, a], &[h, b], &[nh, c], &[nh, d], &[nh, e]]).unwrap();
        assert_eq!(ones, 2);
        assert!(!vals[0] && vals[1] && vals[2]);
    }

    #[test]
    fn bipartite_cover_prefers_small_side() {
        // K_{2,8}: covering the 2-side costs 2, the 8-side costs 8.
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for l in 0..2 {
            for r in 0..8 {
                clauses.push(vec![Lit::pos(l), Lit::pos(2 + r)]);
            }
        }
        let refs: Vec<&[Lit]> = clauses.iter().map(Vec::as_slice).collect();
        let (vals, ones) = solve(10, &refs).unwrap();
        assert_eq!(ones, 2);
        assert!(vals[0] && vals[1]);
    }

    #[test]
    fn non_critical_clauses_complete_for_free() {
        // Every clause has a negative literal: optimum is all-False, found
        // without any branching.
        let clauses: Vec<Vec<Lit>> = (0..8)
            .map(|i| vec![Lit::neg(i), Lit::pos((i + 1) % 8)])
            .collect();
        let refs: Vec<&[Lit]> = clauses.iter().map(Vec::as_slice).collect();
        let (vals, ones) = solve(8, &refs).unwrap();
        assert_eq!(ones, 0);
        assert!(vals.iter().all(|&v| !v));
    }

    #[test]
    fn mixed_hitting_set_with_implication_chain() {
        // Critical core (a∨b)(b∨c) plus chain ¬b∨d: choosing b (greedy)
        // costs 2 (b, d); choosing a and c also costs 2. Minimum is 2.
        let (a, b, c, d) = (Lit::pos(0), Lit::pos(1), Lit::pos(2), Lit::pos(3));
        let (_, ones) = solve(4, &[&[a, b], &[b, c], &[Lit::neg(1), d]]).unwrap();
        assert_eq!(ones, 2);
    }
}

//! Offline stand-in for the `criterion` benchmark harness (the API subset
//! used by `crates/bench/benches`). See `crates/shims/README.md`.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then runs
//! timed iterations until `measurement_time` has elapsed *and* at least
//! `sample_size` iterations have been taken, then reports the mean. One
//! line per benchmark goes to stdout; when `CRITERION_SHIM_JSON` names a
//! file, a JSON record per benchmark is appended there (that is how
//! `BENCH_baseline.json` is produced).

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// The shim's measurement policy as a reusable function: warm up for
/// `warm_up`, then time iterations until `measurement` has elapsed *and*
/// at least `min_iters` iterations ran; returns `(mean_ns, iterations)`.
/// [`Bencher::iter`] and the `repro bench-json` emitter both call this, so
/// committed `BENCH_*.json` records always use criterion-identical timing.
pub fn measure_mean_ns(
    warm_up: Duration,
    measurement: Duration,
    min_iters: u64,
    mut f: impl FnMut(),
) -> (f64, u64) {
    let t0 = Instant::now();
    loop {
        f();
        if t0.elapsed() >= warm_up {
            break;
        }
    }
    let mut iters: u64 = 0;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if start.elapsed() >= measurement && iters >= min_iters {
            break;
        }
    }
    (start.elapsed().as_nanos() as f64 / iters as f64, iters)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sort", 1024)` → `sort/1024`.
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Bare parameter id.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Times one closure; populated by [`Bencher::iter`].
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let (mean_ns, iters) = measure_mean_ns(
            self.warm_up,
            self.measurement,
            self.sample_size as u64,
            || {
                std::hint::black_box(f());
            },
        );
        self.mean_ns = mean_ns;
        self.iters = iters;
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Minimum number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark (skipped entirely — no warm-up, no measurement —
    /// when a CLI filter excludes it, like real criterion).
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.selected(&full) {
            return self;
        }
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        self.criterion.report(&full, b.mean_ns, b.iters);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, In: ?Sized, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &In),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (flushes nothing; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    json_path: Option<String>,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            json_path: std::env::var("CRITERION_SHIM_JSON").ok(),
            filter: None,
        }
    }
}

impl Criterion {
    /// Used by `criterion_main!` to forward a CLI substring filter.
    pub fn with_filter(mut self, filter: Option<String>) -> Criterion {
        self.filter = filter;
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("default").bench_function(id, f);
        self
    }

    /// Does the CLI filter (if any) select this benchmark?
    fn selected(&self, full: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full.contains(f))
    }

    fn report(&mut self, full: &str, mean_ns: f64, iters: u64) {
        let pretty = if mean_ns >= 1e9 {
            format!("{:.3} s", mean_ns / 1e9)
        } else if mean_ns >= 1e6 {
            format!("{:.3} ms", mean_ns / 1e6)
        } else if mean_ns >= 1e3 {
            format!("{:.3} µs", mean_ns / 1e3)
        } else {
            format!("{mean_ns:.0} ns")
        };
        println!("{full:<60} time: {pretty:>12}   ({iters} iterations)");
        if let Some(path) = &self.json_path {
            if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(
                    file,
                    "{{\"bench\": \"{full}\", \"mean_ns\": {mean_ns:.1}, \"iterations\": {iters}}}",
                );
            }
        }
    }
}

/// `black_box` re-export for benches that import it from criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point: runs every group, honoring an optional substring filter as
/// the first non-flag CLI argument (like `cargo bench -- <filter>`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let filter = std::env::args()
                .skip(1)
                .find(|a| !a.starts_with('-'));
            let mut c = $crate::Criterion::default().with_filter(filter);
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            json_path: None,
            filter: None,
        };
        let mut g = c.benchmark_group("shim");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert!(ran >= 5, "at least sample_size iterations must run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).id, "f/12");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
        assert_eq!(BenchmarkId::from("raw").id, "raw");
    }
}

//! Offline stand-in for `proptest` (the API subset used by `tests/`).
//! See `crates/shims/README.md` for scope.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics with the ordinary assertion
//!   message; inputs are not minimized;
//! * **deterministic seeding** — the RNG seed is derived from the test's
//!   module path and name (override with the `PROPTEST_SEED` environment
//!   variable), so failures reproduce exactly across runs and machines;
//! * string strategies support character-class regexes
//!   (`[a-z][a-z0-9]{0,12}`-style: classes, ranges, `{n}`/`{m,n}`
//!   quantifiers and literal characters) — the subset the test suite uses.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The runner's RNG: SplitMix64, seeded per test.
#[derive(Clone, Debug)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Seed from the test identity (or `PROPTEST_SEED` when set).
    pub fn for_test(test_name: &str) -> TestRng {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng { x: seed };
            }
        }
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { x: h }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Sample one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Closure-backed strategy (used by `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wrap a sampling closure as a [`Strategy`].
pub fn strategy_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

// ---------------------------------------------------------------------------
// Character-class regex string strategies.
// ---------------------------------------------------------------------------

/// One regex element: a set of candidate chars and a repetition range.
struct RegexPiece {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => return out,
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let start = prev.take().unwrap();
                let end = chars.next().unwrap();
                for v in (start as u32 + 1)..=(end as u32) {
                    out.push(char::from_u32(v).expect("valid class range"));
                }
            }
            _ => {
                out.push(c);
                prev = Some(c);
            }
        }
    }
    panic!("unterminated character class in regex strategy");
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Option<(usize, usize)> {
    if chars.peek() != Some(&'{') {
        return None;
    }
    chars.next();
    let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
    let (min, max) = match body.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = body.trim().parse().unwrap();
            (n, n)
        }
    };
    Some((min, max))
}

fn parse_regex(pattern: &str) -> Vec<RegexPiece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => parse_class(&mut chars),
            '\\' => vec![chars.next().expect("escape at end of regex strategy")],
            _ => vec![c],
        };
        let (min, max) = parse_quantifier(&mut chars).unwrap_or((1, 1));
        pieces.push(RegexPiece {
            chars: set,
            min,
            max,
        });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_regex(self) {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(piece.chars[rng.below(piece.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collection strategies.
// ---------------------------------------------------------------------------

/// A size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.min < self.max_exclusive, "empty collection size range");
        self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
    }
}

/// `prop::collection` equivalents.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set of *up to* the drawn size (duplicates collapse, as in real
    /// proptest's minimum-size-0 usage here).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A map of *up to* the drawn size (duplicate keys collapse).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert within a property (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Compose argument strategies into a strategy for the function's result.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
                              ($($arg:pat in $strat:expr),+ $(,)?)
                              -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy_fn(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Define property tests: each `fn` runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("shim::ranges");
        for _ in 0..200 {
            let v = Strategy::generate(&(0i64..6), &mut rng);
            assert!((0..6).contains(&v));
            let (a, b) = Strategy::generate(&((0u32..4), any::<bool>()), &mut rng);
            assert!(a < 4);
            let _ = b;
        }
    }

    #[test]
    fn regex_strategy_matches_its_own_class() {
        let mut rng = TestRng::for_test("shim::regex");
        let strat = "[a-zA-Z][a-zA-Z0-9 _.'-]{0,12}";
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic(), "got {s:?}");
            assert!(s
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_alphanumeric() || " _.'-".contains(c)));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::for_test("shim::collections");
        for _ in 0..100 {
            let v = Strategy::generate(&prop::collection::vec(0i64..10, 1..=3), &mut rng);
            assert!((1..=3).contains(&v.len()));
            let s = Strategy::generate(&prop::collection::btree_set(0i64..4, 0..8), &mut rng);
            assert!(s.len() <= 7);
            let m = Strategy::generate(
                &prop::collection::btree_map(0i64..50, "[a-z]{1,4}", 0..20),
                &mut rng,
            );
            assert!(m.len() < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro machinery itself round-trips.
        #[test]
        fn macro_expansion_works(mut xs in prop::collection::vec(0i64..100, 0..10)) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    prop_compose! {
        /// A pair with the first component no larger than the second.
        fn arb_ordered()(a in 0i64..50, b in 0i64..50) -> (i64, i64) {
            (a.min(b), a.max(b))
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn compose_works((lo, hi) in arb_ordered()) {
            prop_assert!(lo <= hi);
        }
    }
}

//! Offline stand-in for the `rand` crate (0.9 API surface used by this
//! workspace). See `crates/shims/README.md` for scope and rationale.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — a fixed, documented algorithm, so every dataset generated
//! from a seed is reproducible across runs, platforms and compiler
//! versions (the real `StdRng` explicitly does *not* promise cross-version
//! stability; for a data-generation workload determinism is the more
//! useful contract).

/// A source of random 64-bit words plus the derived sampling helpers.
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (half-open or inclusive integer
    /// ranges, half-open `f64` ranges). Like the real crate, the output
    /// type is inferred from the use site, not from the literal's default.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform boolean.
    fn random_bool_raw(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: maps a raw word to `[0, n)` without
/// modulo bias beyond 2^-64 (Lemire's method, without the rejection step —
/// the bias is far below anything these generators could observe).
#[inline]
fn bounded(word: u64, n: u64) -> u64 {
    ((word as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
            let f = rng.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let w = rng.random_range(1u32..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}

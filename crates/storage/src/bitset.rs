//! A compact growable bitset.
//!
//! [`crate::State`] keeps two of these per relation (presence and delta
//! membership); semantics clone states freely, so the representation is a
//! plain `Vec<u64>` with no indirection.

/// Fixed-capacity-free bitset over `usize` indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of bits the set was sized for (indices >= len read as 0).
    len: usize,
}

impl BitSet {
    /// An empty bitset sized for `len` bits, all zero.
    pub fn zeros(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A bitset sized for `len` bits, all one.
    pub fn ones(len: usize) -> BitSet {
        let mut b = BitSet {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.trim_tail();
        b
    }

    /// A bitset over exactly `words`, sized for `len` bits. Returns `None`
    /// when the word count doesn't match `len` or a bit beyond `len` is
    /// set — the deserialization guard (snapshots store live bitsets as
    /// raw words; a corrupt file must not smuggle in out-of-range bits).
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<BitSet> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        let tail = len % 64;
        if tail != 0 && words.last().is_some_and(|w| w >> tail != 0) {
            return None;
        }
        Some(BitSet { words, len })
    }

    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits this set was sized for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when sized for zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grow to cover at least `len` bits (new bits are zero).
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(64), 0);
        }
    }

    /// Read bit `i` (bits past `len` read as unset).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self.words.get(i / 64) {
            Some(w) => (w >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    /// Set bit `i` to one, growing if needed. Returns the previous value.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        if i >= self.len {
            self.grow(i + 1);
        }
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let old = *w & mask != 0;
        *w |= mask;
        old
    }

    /// Set bit `i` to zero. Returns the previous value.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        match self.words.get_mut(i / 64) {
            Some(w) => {
                let mask = 1u64 << (i % 64);
                let old = *w & mask != 0;
                *w &= !mask;
                old
            }
            None => false,
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self := self & !other` (remove every bit set in `other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// `self := self | other`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.grow(other.len);
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// True when no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterate over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitSet::zeros(100);
        assert_eq!(z.count_ones(), 0);
        let o = BitSet::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(!o.get(100)); // tail trimmed
    }

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::zeros(10);
        assert!(!b.set(3));
        assert!(b.get(3));
        assert!(b.set(3));
        assert!(b.clear(3));
        assert!(!b.get(3));
        assert!(!b.clear(3));
    }

    #[test]
    fn grows_on_demand() {
        let mut b = BitSet::zeros(0);
        b.set(1000);
        assert!(b.get(1000));
        assert!(!b.get(999));
        assert_eq!(b.len(), 1001);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::zeros(200);
        for i in [0usize, 63, 64, 65, 127, 128, 199] {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![0, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn difference_and_union() {
        let mut a = BitSet::ones(70);
        let mut b = BitSet::zeros(70);
        b.set(0);
        b.set(69);
        a.difference_with(&b);
        assert_eq!(a.count_ones(), 68);
        a.union_with(&b);
        assert_eq!(a.count_ones(), 70);
    }

    #[test]
    fn ones_count_at_word_boundaries() {
        for n in [0usize, 1, 63, 64, 65, 128] {
            assert_eq!(BitSet::ones(n).count_ones(), n, "n={n}");
        }
    }
}

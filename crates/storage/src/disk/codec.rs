//! Byte-level encoding shared by the WAL and the snapshot: little-endian
//! integers, length-prefixed strings, the schema, and a hand-rolled CRC-32
//! (IEEE 802.3, the `crc32fast`/zlib polynomial — the build is offline, so
//! no external crate).

use crate::schema::{AttrType, RelationSchema, Schema};

/// Slicing-by-8 tables: `CRC_TABLES[0]` is the classic byte-at-a-time
/// table; `CRC_TABLES[j][b]` folds byte `b` sitting `j` positions deep in
/// an 8-byte word, so the hot loop consumes 8 bytes per iteration (cold
/// opens CRC whole snapshots, so this is on the recovery critical path).
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        j += 1;
    }
    tables
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked sequential reader; every decode error is a `String`
/// detail that the caller wraps into `StorageError::Corrupt`.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "unexpected end of data at byte {} (wanted {n} more, have {})",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn str(&mut self) -> Result<&'a str, String> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|e| format!("invalid utf-8 string: {e}"))
    }
}

pub fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u16(out, schema.len() as u16);
    for (_, rs) in schema.iter() {
        put_str(out, &rs.name);
        put_u16(out, rs.arity() as u16);
        for attr in &rs.attrs {
            put_str(out, &attr.name);
            out.push(match attr.ty {
                AttrType::Int => 0,
                AttrType::Str => 1,
            });
        }
    }
}

pub fn read_schema(r: &mut Reader<'_>) -> Result<Schema, String> {
    let nrels = r.u16()?;
    let mut schema = Schema::new();
    for _ in 0..nrels {
        let name = r.str()?.to_owned();
        let arity = r.u16()?;
        let mut attrs = Vec::with_capacity(arity as usize);
        for _ in 0..arity {
            let aname = r.str()?.to_owned();
            let ty = match r.u8()? {
                0 => AttrType::Int,
                1 => AttrType::Str,
                t => return Err(format!("unknown attribute type tag {t}")),
            };
            attrs.push((aname, ty));
        }
        let pairs: Vec<(&str, AttrType)> = attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        schema
            .add_relation(RelationSchema::new(&name, &pairs))
            .map_err(|e| format!("schema rejects relation `{name}`: {e}"))?;
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut data = b"length-prefixed wal record payload".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn schema_round_trips() {
        let mut schema = Schema::new();
        schema.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
        schema.relation(
            "AuthGrant",
            &[("aid", AttrType::Int), ("gid", AttrType::Int)],
        );
        let mut buf = Vec::new();
        put_schema(&mut buf, &schema);
        let back = read_schema(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, schema);
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        buf.truncate(6);
        assert!(Reader::new(&buf).str().is_err());
    }
}

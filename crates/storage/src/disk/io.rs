//! The injectable IO boundary of the durable store.
//!
//! Every byte the store reads or writes goes through a [`StorageIo`]
//! implementation, which is what makes crash recovery *testable*: the
//! fault-injection harness swaps [`StdIo`] for an in-memory [`MemIo`]
//! wrapped in a [`FaultIo`] that deterministically fails, short-writes or
//! bit-flips the Nth operation and then behaves like a dead process. The
//! recovery property tests crash at every injection point this way and
//! assert the reopened instance matches a never-crashed reference.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Filesystem primitives the durable store needs, in injectable form.
///
/// Implementations must be usable behind an `Arc` from one thread at a time
/// (the store itself is not concurrent; `Send + Sync` is required so a
/// durable session stays `Send`).
pub trait StorageIo: Send + Sync + fmt::Debug {
    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// File names (not paths) directly inside `dir`. A missing directory is
    /// an empty listing, not an error.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Whole-file read.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create-or-truncate write of the whole file.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Append to the end of the file (which must exist).
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Shrink the file to `len` bytes (recovery chops torn WAL tails).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Force file contents to stable storage.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Atomically replace `to` with `from` (the snapshot commit point).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default)]
pub struct StdIo;

impl StorageIo for StdIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut names = Vec::new();
        for entry in entries {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new().append(true).open(path)?;
        f.write_all(bytes)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)?;
        // Persist the directory entry too; without this a crash can undo
        // the rename even though the data blocks survived. Best-effort:
        // some filesystems refuse to fsync directories.
        if let Some(parent) = to.parent() {
            if let Ok(d) = fs::File::open(parent) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// One in-memory file: contents plus how much of them is "on stable
/// storage" (survives [`MemIo::lose_unsynced`]).
#[derive(Clone, Debug, Default)]
struct MemFile {
    data: Vec<u8>,
    synced: usize,
}

/// A deterministic in-memory filesystem for recovery tests.
///
/// Tracks per file how many bytes have been synced; a simulated crash
/// ([`MemIo::lose_unsynced`]) rolls every file back to its synced prefix,
/// modelling a kernel that never flushed the page cache. Renames and
/// removals are treated as immediately durable — a simplification that
/// matches `StdIo`'s directory-fsync-after-rename behaviour.
#[derive(Debug, Default)]
pub struct MemIo {
    files: Mutex<std::collections::BTreeMap<PathBuf, MemFile>>,
}

impl MemIo {
    /// Empty in-memory filesystem.
    pub fn new() -> MemIo {
        MemIo::default()
    }

    /// Simulate a crash: every file loses bytes written since its last
    /// sync. Files created and never synced disappear entirely.
    pub fn lose_unsynced(&self) {
        let mut files = self.files.lock().unwrap();
        files.retain(|_, f| {
            f.data.truncate(f.synced);
            f.synced > 0
        });
    }

    /// Raw contents of `path`, if present (test corruption helpers).
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        self.files.lock().unwrap().get(path).map(|f| f.data.clone())
    }

    /// Overwrite `path` with `bytes`, marking them synced (test corruption
    /// helpers — this bypasses the op counter of any wrapping `FaultIo`).
    pub fn corrupt(&self, path: &Path, bytes: Vec<u8>) {
        let mut files = self.files.lock().unwrap();
        let synced = bytes.len();
        files.insert(
            path.to_path_buf(),
            MemFile {
                data: bytes,
                synced,
            },
        );
    }
}

impl StorageIo for MemIo {
    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let files = self.files.lock().unwrap();
        Ok(files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name())
            .map(|n| n.to_string_lossy().into_owned())
            .collect())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.contents(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        files.insert(
            path.to_path_buf(),
            MemFile {
                data: bytes.to_vec(),
                synced: 0,
            },
        );
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        let f = files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        f.data.extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        let f = files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        f.data.truncate(len as usize);
        f.synced = f.synced.min(f.data.len());
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        let f = files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        f.synced = f.data.len();
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        let mut f = files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        // Rename is the snapshot commit point: model it (plus StdIo's
        // directory fsync) as durable, contents included.
        f.synced = f.data.len();
        files.insert(to.to_path_buf(), f);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }
}

/// What the Nth operation does instead of succeeding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails outright; nothing reaches the inner IO.
    Fail,
    /// A write/append persists only a prefix, then fails (torn write).
    /// Non-write operations degrade to [`FaultMode::Fail`].
    ShortWrite,
    /// A write/append persists with one bit flipped, then fails (silent
    /// media corruption discovered at the checksum). Non-write operations
    /// degrade to [`FaultMode::Fail`].
    BitFlip,
}

/// Inject `mode` at the `at_op`-th operation (1-based).
#[derive(Clone, Copy, Debug)]
pub struct Fault {
    /// Which operation (counting every `StorageIo` call) misbehaves.
    pub at_op: u64,
    /// How it misbehaves.
    pub mode: FaultMode,
}

/// Wraps another [`StorageIo`], counting operations and injecting one
/// [`Fault`]; after the fault fires every later operation fails, modelling
/// a process that died at the injection point.
#[derive(Debug)]
pub struct FaultIo {
    inner: Arc<dyn StorageIo>,
    fault: Option<Fault>,
    ops: AtomicU64,
    crashed: Mutex<bool>,
}

impl FaultIo {
    /// Wrap `inner`; a `fault` of `None` only counts operations.
    pub fn new(inner: Arc<dyn StorageIo>, fault: Option<Fault>) -> FaultIo {
        FaultIo {
            inner,
            fault,
            ops: AtomicU64::new(0),
            crashed: Mutex::new(false),
        }
    }

    /// Operations issued so far (a no-fault dry run measures the injection
    /// space with this).
    pub fn ops_used(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Has the injected fault fired?
    pub fn has_crashed(&self) -> bool {
        *self.crashed.lock().unwrap()
    }

    fn dead() -> io::Error {
        io::Error::other("injected crash: process is dead")
    }

    /// Count one operation; `Ok(None)` means proceed normally, `Ok(Some)`
    /// means this is the faulted op (caller applies `mode`).
    fn tick(&self) -> io::Result<Option<FaultMode>> {
        let mut crashed = self.crashed.lock().unwrap();
        if *crashed {
            return Err(Self::dead());
        }
        let n = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(f) = self.fault {
            if f.at_op == n {
                *crashed = true;
                return Ok(Some(f.mode));
            }
        }
        Ok(None)
    }

    /// Apply a write-shaped fault: persist a mangled version of `bytes`
    /// through `op`, then report failure.
    fn faulty_write(
        &self,
        mode: FaultMode,
        bytes: &[u8],
        op: impl FnOnce(&[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        match mode {
            FaultMode::Fail => {}
            FaultMode::ShortWrite => {
                let _ = op(&bytes[..bytes.len() / 2]);
            }
            FaultMode::BitFlip => {
                let mut mangled = bytes.to_vec();
                if !mangled.is_empty() {
                    let mid = mangled.len() / 2;
                    mangled[mid] ^= 0x10;
                }
                let _ = op(&mangled);
            }
        }
        Err(io::Error::other("injected fault"))
    }
}

impl StorageIo for FaultIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.tick()? {
            None => self.inner.create_dir_all(dir),
            Some(_) => Err(io::Error::other("injected fault")),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        match self.tick()? {
            None => self.inner.list(dir),
            Some(_) => Err(io::Error::other("injected fault")),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.tick()? {
            None => self.inner.read(path),
            Some(_) => Err(io::Error::other("injected fault")),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.tick()? {
            None => self.inner.write(path, bytes),
            Some(mode) => self.faulty_write(mode, bytes, |b| self.inner.write(path, b)),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.tick()? {
            None => self.inner.append(path, bytes),
            Some(mode) => self.faulty_write(mode, bytes, |b| self.inner.append(path, b)),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.tick()? {
            None => self.inner.truncate(path, len),
            Some(_) => Err(io::Error::other("injected fault")),
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        match self.tick()? {
            None => self.inner.sync(path),
            Some(_) => Err(io::Error::other("injected fault")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.tick()? {
            None => self.inner.rename(from, to),
            Some(_) => Err(io::Error::other("injected fault")),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.tick()? {
            None => self.inner.remove(path),
            Some(_) => Err(io::Error::other("injected fault")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_io_sync_tracking_survives_crash() {
        let io = MemIo::new();
        let p = Path::new("/store/wal-0.drw");
        io.write(p, b"header").unwrap();
        io.sync(p).unwrap();
        io.append(p, b" tail").unwrap();
        io.lose_unsynced();
        assert_eq!(io.read(p).unwrap(), b"header");

        // A never-synced file vanishes at the crash.
        io.write(Path::new("/store/tmp"), b"x").unwrap();
        io.lose_unsynced();
        assert!(io.read(Path::new("/store/tmp")).is_err());
    }

    #[test]
    fn mem_io_rename_is_durable() {
        let io = MemIo::new();
        let tmp = Path::new("/store/snap.tmp");
        let fin = Path::new("/store/snap-1.drs");
        io.write(tmp, b"snapshot").unwrap();
        io.rename(tmp, fin).unwrap();
        io.lose_unsynced();
        assert_eq!(io.read(fin).unwrap(), b"snapshot");
        assert!(io.read(tmp).is_err());
    }

    #[test]
    fn fault_io_fires_once_then_everything_fails() {
        let mem = Arc::new(MemIo::new());
        let io = FaultIo::new(
            mem.clone(),
            Some(Fault {
                at_op: 2,
                mode: FaultMode::Fail,
            }),
        );
        let p = Path::new("/s/f");
        io.write(p, b"a").unwrap(); // op 1: fine
        assert!(io.append(p, b"b").is_err()); // op 2: the fault
        assert!(io.has_crashed());
        assert!(io.read(p).is_err(), "dead process issues no more io");
        assert_eq!(mem.contents(p).unwrap(), b"a");
    }

    #[test]
    fn short_write_persists_a_prefix() {
        let mem = Arc::new(MemIo::new());
        let io = FaultIo::new(
            mem.clone(),
            Some(Fault {
                at_op: 1,
                mode: FaultMode::ShortWrite,
            }),
        );
        assert!(io.write(Path::new("/s/f"), b"abcdef").is_err());
        assert_eq!(mem.contents(Path::new("/s/f")).unwrap(), b"abc");
    }

    #[test]
    fn bit_flip_persists_mangled_bytes() {
        let mem = Arc::new(MemIo::new());
        let io = FaultIo::new(
            mem.clone(),
            Some(Fault {
                at_op: 1,
                mode: FaultMode::BitFlip,
            }),
        );
        assert!(io.write(Path::new("/s/f"), b"abcd").is_err());
        let got = mem.contents(Path::new("/s/f")).unwrap();
        assert_ne!(got, b"abcd");
        assert_eq!(got.len(), 4);
    }
}

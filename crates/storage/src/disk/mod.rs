//! Crash-safe durable storage: a checksummed write-ahead log plus atomic
//! binary snapshots, behind an injectable IO boundary.
//!
//! A store directory holds *generations*. Generation `g` is a snapshot
//! `snap-<g>.drs` (the full instance + session metadata at one instant)
//! and a WAL `wal-<g>.drw` (every acknowledged mutation batch since). A
//! checkpoint writes the next snapshot to a temp file, atomically renames
//! it, starts a fresh WAL, and removes generations older than the previous
//! one — so at least two generations are on disk at all times. GC keeps
//! everything from the newest *known-valid* snapshot generation up (see
//! [`DiskStore`]'s floor), and recovery deletes snapshots that failed
//! validation, so a known-good base is never collected in favor of a
//! corrupt newer file. The recovery fallback ladder walks those
//! generations:
//!
//! 1. newest snapshot that validates, plus the WAL **chain** from its
//!    generation upward (a corrupt newest snapshot costs nothing but the
//!    fallback note — the previous generation's WAL still covers every
//!    batch up to the checkpoint, and the newer WAL continues from there);
//! 2. no snapshot validates: WAL-only replay from generation 0, allowed
//!    only when `wal-0` records an empty base (`base_rows == 0`);
//! 3. otherwise [`StorageError::Corrupt`] naming everything that was
//!    tried. Never a panic, whatever the bytes.
//!
//! Within a WAL, records only count once their batch's closing
//! `Commit`/`Apply`/`Undo` mark is read, so recovery always lands on an
//! acknowledged batch boundary; a torn final record is truncated, not
//! fatal. See `DESIGN.md` ("Durability") for the file formats.

pub mod codec;
pub mod io;
pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use io::{Fault, FaultIo, FaultMode, MemIo, StdIo, StorageIo};
pub use recovery::RecoveryReport;
pub use wal::WalRecord;

use crate::error::StorageError;
use crate::instance::Instance;
use crate::tuple::TupleId;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// When WAL appends reach stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append: an acknowledged batch survives any crash.
    Always,
    /// Fsync every N appends: bounded data loss, amortized cost.
    EveryN(u32),
    /// Fsync only at checkpoints: fastest, loses the tail on crash.
    OnCheckpoint,
}

/// One applied repair in the session's undo history, in persisted form:
/// the semantics as a session-level code plus the full delete set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Session-level semantics code (the session en/decodes it; storage
    /// stays independent of the semantics enum).
    pub semantics: u8,
    /// The repair's delete set — what undo restores.
    pub deleted: Vec<TupleId>,
}

/// Session state persisted alongside the instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionMeta {
    /// Mutation epoch (stale-outcome fencing survives restarts).
    pub epoch: u64,
    /// Undo stack of applied repairs, oldest first.
    pub history: Vec<HistoryEntry>,
}

/// Store configuration: fsync policy, IO implementation, checkpoint cadence.
#[derive(Clone, Debug)]
pub struct DiskOptions {
    /// When appends are fsynced.
    pub fsync: FsyncPolicy,
    /// The IO boundary ([`StdIo`] outside tests).
    pub io: Arc<dyn StorageIo>,
    /// Auto-checkpoint after this many WAL records (`0` = only explicit
    /// checkpoints).
    pub checkpoint_every: u64,
}

impl Default for DiskOptions {
    fn default() -> DiskOptions {
        DiskOptions {
            fsync: FsyncPolicy::Always,
            io: Arc::new(StdIo),
            checkpoint_every: 1 << 16,
        }
    }
}

impl DiskOptions {
    /// Default options over a specific IO implementation.
    pub fn with_io(io: Arc<dyn StorageIo>) -> DiskOptions {
        DiskOptions {
            io,
            ..DiskOptions::default()
        }
    }
}

pub(crate) fn snap_name(gen: u64) -> String {
    format!("snap-{gen}.drs")
}

pub(crate) fn wal_name(gen: u64) -> String {
    format!("wal-{gen}.drw")
}

/// Parse `snap-<g>.drs` / `wal-<g>.drw` names back to generations.
pub(crate) fn parse_gen(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> StorageError {
    StorageError::Io {
        op,
        path: path.display().to_string(),
        error: e.to_string(),
    }
}

/// An open durable store: the append end of the current WAL plus the
/// checkpoint machinery. The in-memory [`Instance`] stays the source of
/// truth; the store only hears about mutations through
/// [`DiskStore::append`] and about full states through
/// [`DiskStore::checkpoint`].
#[derive(Debug)]
pub struct DiskStore {
    io: Arc<dyn StorageIo>,
    dir: PathBuf,
    fsync: FsyncPolicy,
    checkpoint_every: u64,
    gen: u64,
    /// Newest generation whose snapshot is known valid: written by us, or
    /// the one recovery actually loaded from. Checkpoint GC never removes
    /// generations at or above this floor, so a recovery that fell back
    /// past a corrupt newest snapshot cannot have its only valid base
    /// retired before a newer checkpointed pair supersedes it.
    last_valid_snap: u64,
    appends_since_sync: u32,
    records_since_checkpoint: u64,
    wedged: bool,
}

impl DiskStore {
    /// Initialize a fresh store in `dir` (created if missing, refused if it
    /// already holds store files) with `db` + `meta` as generation 0.
    pub fn create(
        dir: &Path,
        opts: DiskOptions,
        db: &Instance,
        meta: &SessionMeta,
    ) -> Result<DiskStore, StorageError> {
        let io = opts.io.clone();
        io.create_dir_all(dir)
            .map_err(|e| io_err("create directory", dir, e))?;
        let names = io.list(dir).map_err(|e| io_err("list", dir, e))?;
        if names.iter().any(|n| {
            parse_gen(n, "snap-", ".drs").is_some() || parse_gen(n, "wal-", ".drw").is_some()
        }) {
            return Err(StorageError::Io {
                op: "create store",
                path: dir.display().to_string(),
                error: "directory already contains a store (open it instead)".into(),
            });
        }
        let store = DiskStore {
            io,
            dir: dir.to_path_buf(),
            fsync: opts.fsync,
            checkpoint_every: opts.checkpoint_every,
            gen: 0,
            last_valid_snap: 0,
            appends_since_sync: 0,
            records_since_checkpoint: 0,
            wedged: false,
        };
        store.write_snapshot(0, db, meta)?;
        store.write_wal_header(0, db)?;
        Ok(store)
    }

    /// Open an existing store, running the recovery ladder. Returns the
    /// store positioned at the newest generation, the recovered instance
    /// and session metadata, and a report of what recovery did.
    pub fn open(
        dir: &Path,
        opts: DiskOptions,
    ) -> Result<(DiskStore, Instance, SessionMeta, RecoveryReport), StorageError> {
        recovery::recover(dir, opts)
    }

    /// Append one acknowledged batch (data records + its closing mark).
    /// On failure the store *wedges*: the in-memory instance has already
    /// moved past what the WAL holds, so every later append is refused
    /// until a [`DiskStore::checkpoint`] re-establishes a full image.
    pub fn append(&mut self, records: &[wal::WalRecord]) -> Result<(), StorageError> {
        if self.wedged {
            return Err(StorageError::Io {
                op: "wal append",
                path: self.wal_path().display().to_string(),
                error: "store is wedged after an earlier write failure; checkpoint to recover"
                    .into(),
            });
        }
        let path = self.wal_path();
        let bytes = wal::frame_records(records);
        if let Err(e) = self.io.append(&path, &bytes) {
            self.wedged = true;
            return Err(io_err("wal append", &path, e));
        }
        self.records_since_checkpoint += records.len() as u64;
        let due = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                self.appends_since_sync >= n
            }
            FsyncPolicy::OnCheckpoint => false,
        };
        if due {
            if let Err(e) = self.io.sync(&path) {
                self.wedged = true;
                return Err(io_err("wal fsync", &path, e));
            }
            self.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Write the next snapshot generation (temp file + fsync + atomic
    /// rename), start its fresh WAL, and drop generations older than the
    /// previous one. Also the recovery path out of a wedged store: a
    /// successful checkpoint persists the full in-memory image, superseding
    /// whatever the broken WAL lost.
    pub fn checkpoint(&mut self, db: &Instance, meta: &SessionMeta) -> Result<u64, StorageError> {
        if !self.wedged {
            // The old WAL stays the fallback for the new snapshot; make
            // sure everything acknowledged is actually in it.
            let path = self.wal_path();
            self.io
                .sync(&path)
                .map_err(|e| io_err("wal fsync", &path, e))?;
        }
        let next = self.gen + 1;
        self.write_snapshot(next, db, meta)?;
        self.write_wal_header(next, db)?;
        // Cleanup is best-effort: at this point the new generation is
        // durable, and stray old files only cost disk space (recovery
        // ignores generations below the newest valid snapshot). The floor
        // keeps the generation recovery loaded from — possibly older than
        // `next - 1` if newer snapshots were corrupt — until this and a
        // later checkpoint have written two valid generations above it.
        let keep_from = self.last_valid_snap.min(next - 1);
        if let Ok(names) = self.io.list(&self.dir) {
            for name in names {
                let stale = parse_gen(&name, "snap-", ".drs")
                    .or_else(|| parse_gen(&name, "wal-", ".drw"))
                    .is_some_and(|g| g < keep_from)
                    || name.ends_with(".tmp");
                if stale {
                    let _ = self.io.remove(&self.dir.join(name));
                }
            }
        }
        self.gen = next;
        self.last_valid_snap = next;
        self.records_since_checkpoint = 0;
        self.appends_since_sync = 0;
        self.wedged = false;
        Ok(next)
    }

    /// Should the session fold in an automatic checkpoint?
    pub fn wants_auto_checkpoint(&self) -> bool {
        self.checkpoint_every > 0 && self.records_since_checkpoint >= self.checkpoint_every
    }

    /// Current generation (the WAL being appended to).
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Has a write failure wedged the store? (See [`DiskStore::append`].)
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// WAL records appended since the last checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join(wal_name(self.gen))
    }

    fn write_snapshot(
        &self,
        gen: u64,
        db: &Instance,
        meta: &SessionMeta,
    ) -> Result<(), StorageError> {
        let bytes = snapshot::encode(gen, db, meta);
        let tmp = self.dir.join(format!("snap-{gen}.tmp"));
        let fin = self.dir.join(snap_name(gen));
        self.io
            .write(&tmp, &bytes)
            .map_err(|e| io_err("snapshot write", &tmp, e))?;
        self.io
            .sync(&tmp)
            .map_err(|e| io_err("snapshot fsync", &tmp, e))?;
        self.io
            .rename(&tmp, &fin)
            .map_err(|e| io_err("snapshot rename", &fin, e))?;
        Ok(())
    }

    fn write_wal_header(&self, gen: u64, db: &Instance) -> Result<(), StorageError> {
        let rows: usize = db
            .schema()
            .iter()
            .map(|(rel, _)| db.relation(rel).num_rows())
            .sum();
        let bytes = wal::encode_header(gen, rows as u64, db.schema());
        let path = self.dir.join(wal_name(gen));
        self.io
            .write(&path, &bytes)
            .map_err(|e| io_err("wal create", &path, e))?;
        self.io
            .sync(&path)
            .map_err(|e| io_err("wal fsync", &path, e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use crate::value::Value;

    fn mem_opts() -> (Arc<MemIo>, DiskOptions) {
        let mem = Arc::new(MemIo::new());
        let opts = DiskOptions {
            fsync: FsyncPolicy::Always,
            io: mem.clone(),
            checkpoint_every: 0,
        };
        (mem, opts)
    }

    fn small_db() -> Instance {
        let mut schema = Schema::new();
        schema.relation("R", &[("x", AttrType::Int)]);
        Instance::new(schema)
    }

    #[test]
    fn create_append_checkpoint_open_round_trip() {
        let (_mem, opts) = mem_opts();
        let dir = Path::new("/store");
        let mut db = small_db();
        let mut store = DiskStore::create(dir, opts.clone(), &db, &SessionMeta::default()).unwrap();

        let t = db.insert_values("R", [Value::Int(1)]).unwrap();
        store
            .append(&[
                WalRecord::Insert {
                    rel: t.rel,
                    values: vec![Value::Int(1)],
                },
                WalRecord::Commit { epoch: 1 },
            ])
            .unwrap();
        assert_eq!(store.records_since_checkpoint(), 2);

        let (reopened, rdb, meta, report) = DiskStore::open(dir, opts.clone()).unwrap();
        assert_eq!(rdb, db);
        assert_eq!(meta.epoch, 1);
        assert_eq!(report.snapshot_gen, Some(0));
        assert_eq!(report.batches_replayed, 1);
        assert_eq!(reopened.generation(), 0);

        let gen = store
            .checkpoint(
                &db,
                &SessionMeta {
                    epoch: 1,
                    history: vec![],
                },
            )
            .unwrap();
        assert_eq!(gen, 1);
        let (_, rdb2, meta2, report2) = DiskStore::open(dir, opts).unwrap();
        assert_eq!(rdb2, db);
        assert_eq!(meta2.epoch, 1);
        assert_eq!(report2.snapshot_gen, Some(1));
        assert_eq!(report2.batches_replayed, 0);
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let (_mem, opts) = mem_opts();
        let dir = Path::new("/store");
        let db = small_db();
        DiskStore::create(dir, opts.clone(), &db, &SessionMeta::default()).unwrap();
        let err = DiskStore::create(dir, opts, &db, &SessionMeta::default()).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "{err}");
    }

    #[test]
    fn failed_append_wedges_until_checkpoint() {
        let mem = Arc::new(MemIo::new());
        let db = small_db();
        let faulty = Arc::new(FaultIo::new(
            mem.clone(),
            Some(Fault {
                at_op: 8,
                mode: FaultMode::Fail,
            }),
        ));
        let dir = Path::new("/store");
        let mut store = DiskStore::create(
            dir,
            DiskOptions {
                fsync: FsyncPolicy::Always,
                io: faulty,
                checkpoint_every: 0,
            },
            &db,
            &SessionMeta::default(),
        )
        .unwrap();
        // create uses 7 ops (create_dir, list, snap write, sync, rename,
        // wal write, sync); op 8 is the first append. Regardless of the
        // exact count, keep appending until the fault fires.
        let mut failed = false;
        for _ in 0..10 {
            if store.append(&[WalRecord::Commit { epoch: 0 }]).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed);
        assert!(store.is_wedged());
        let err = store.append(&[WalRecord::Commit { epoch: 0 }]).unwrap_err();
        assert!(err.to_string().contains("wedged"), "{err}");
        // Checkpointing through a *working* IO clears the wedge. (Swap the
        // store's IO by rebuilding it against the same MemIo.)
        let mut store = DiskStore { io: mem, ..store };
        store.checkpoint(&db, &SessionMeta::default()).unwrap();
        assert!(!store.is_wedged());
        store.append(&[WalRecord::Commit { epoch: 0 }]).unwrap();
    }

    #[test]
    fn checkpoint_retires_old_generations() {
        let (mem, opts) = mem_opts();
        let dir = Path::new("/store");
        let db = small_db();
        let mut store = DiskStore::create(dir, opts, &db, &SessionMeta::default()).unwrap();
        for _ in 0..3 {
            store.checkpoint(&db, &SessionMeta::default()).unwrap();
        }
        assert_eq!(store.generation(), 3);
        let names = mem.list(dir).unwrap();
        let mut gens: Vec<_> = names
            .iter()
            .filter_map(|n| parse_gen(n, "snap-", ".drs"))
            .collect();
        gens.sort_unstable();
        assert_eq!(
            gens,
            vec![2, 3],
            "two newest generations retained: {names:?}"
        );
    }
}

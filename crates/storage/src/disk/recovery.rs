//! Opening a store: the snapshot fallback ladder + WAL chain replay.
//!
//! See the [module docs](super) for the ladder. Replay is *strict*: every
//! data record must do exactly what it did originally (an insert lands on
//! a fresh row, a delete removes exactly one live tuple), so any
//! divergence between the files and a real mutation history surfaces as
//! [`StorageError::Corrupt`] instead of a silently different database.

use super::wal::{self, WalRecord};
use super::{
    io_err, parse_gen, snap_name, snapshot, wal_name, DiskOptions, DiskStore, SessionMeta,
};
use crate::error::StorageError;
use crate::instance::Instance;
use crate::tuple::Tuple;
use std::path::Path;

/// What recovery found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation of the snapshot the rebuild started from; `None` for a
    /// WAL-only replay.
    pub snapshot_gen: Option<u64>,
    /// WAL records applied (data records and marks).
    pub records_replayed: u64,
    /// Acknowledged batches applied.
    pub batches_replayed: u64,
    /// Bytes chopped off the final WAL (torn tail and/or unacknowledged
    /// trailing records).
    pub truncated_bytes: u64,
    /// Whole records discarded because their batch never committed.
    pub discarded_records: u64,
    /// One note per degradation the ladder took (corrupt snapshot skipped,
    /// WAL recreated, …). Empty on a clean open.
    pub fallbacks: Vec<String>,
}

impl RecoveryReport {
    /// Did recovery do anything beyond loading the newest snapshot and
    /// replaying a clean WAL?
    pub fn degraded(&self) -> bool {
        !self.fallbacks.is_empty() || self.truncated_bytes > 0
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        path: path.display().to_string(),
        detail: detail.into(),
    }
}

/// Total rows ever inserted (tombstones included) — what WAL headers
/// record as `base_rows`.
fn ever_rows(db: &Instance) -> u64 {
    db.schema()
        .iter()
        .map(|(rel, _)| db.relation(rel).num_rows() as u64)
        .sum()
}

pub(super) fn recover(
    dir: &Path,
    opts: DiskOptions,
) -> Result<(DiskStore, Instance, SessionMeta, RecoveryReport), StorageError> {
    let io = opts.io.clone();
    let names = io.list(dir).map_err(|e| io_err("list", dir, e))?;
    let mut snap_gens: Vec<u64> = names
        .iter()
        .filter_map(|n| parse_gen(n, "snap-", ".drs"))
        .collect();
    snap_gens.sort_unstable();
    let mut wal_gens: Vec<u64> = names
        .iter()
        .filter_map(|n| parse_gen(n, "wal-", ".drw"))
        .collect();
    wal_gens.sort_unstable();
    if snap_gens.is_empty() && wal_gens.is_empty() {
        return Err(corrupt(dir, "no snapshot or wal files found (not a store)"));
    }

    let mut report = RecoveryReport::default();

    // Rung 1: the newest snapshot that validates.
    let mut base: Option<(u64, Instance, SessionMeta)> = None;
    let mut corrupt_snaps: Vec<u64> = Vec::new();
    for &gen in snap_gens.iter().rev() {
        let path = dir.join(snap_name(gen));
        let attempt = io
            .read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| snapshot::decode(&bytes).map(|s| (s, bytes.len())));
        match attempt {
            Ok((snap, _)) if snap.gen == gen => {
                base = Some((gen, snap.db, snap.meta));
                break;
            }
            Ok((snap, _)) => {
                report
                    .fallbacks
                    .push(format!("snapshot gen {gen}: file claims gen {}", snap.gen));
                corrupt_snaps.push(gen);
            }
            Err(detail) => {
                report
                    .fallbacks
                    .push(format!("snapshot gen {gen}: {detail}"));
                corrupt_snaps.push(gen);
            }
        }
    }

    // Rung 2: WAL-only replay from an empty generation-0 base.
    let wal_only = base.is_none();
    let (base_gen, mut db, mut meta) = match base {
        Some(b) => b,
        None => {
            let path = dir.join(wal_name(0));
            if !wal_gens.contains(&0) {
                return Err(corrupt(
                    dir,
                    format!(
                        "no valid snapshot and no wal-0 for a wal-only replay; tried: {}",
                        report.fallbacks.join("; ")
                    ),
                ));
            }
            let bytes = io.read(&path).map_err(|e| io_err("read", &path, e))?;
            let parsed = wal::parse(&bytes).map_err(|d| corrupt(&path, d))?;
            if parsed.base_rows != 0 {
                return Err(corrupt(
                    &path,
                    format!(
                        "wal-only replay needs an empty base, but wal-0 extends a \
                         {}-row snapshot; tried: {}",
                        parsed.base_rows,
                        report.fallbacks.join("; ")
                    ),
                ));
            }
            report
                .fallbacks
                .push("no valid snapshot; wal-only replay from empty base".into());
            (0, Instance::new(parsed.schema), SessionMeta::default())
        }
    };
    report.snapshot_gen = (!wal_only).then_some(base_gen);

    // Replay the WAL chain from the base generation upward.
    let newest = wal_gens.last().copied().unwrap_or(base_gen).max(base_gen);
    let mut final_wal_ok = false;
    for gen in base_gen..=newest {
        let is_final = gen == newest;
        let path = dir.join(wal_name(gen));
        if !wal_gens.contains(&gen) {
            if is_final {
                // Crash between the snapshot rename and the WAL creation:
                // the generation simply has no mutations yet.
                report
                    .fallbacks
                    .push(format!("wal gen {gen} missing; recreated empty"));
                continue;
            }
            return Err(corrupt(
                &path,
                "wal missing from the middle of the chain; later generations \
                 depend on its records",
            ));
        }
        let bytes = io.read(&path).map_err(|e| io_err("read", &path, e))?;
        let parsed = match wal::parse(&bytes) {
            Ok(p) => p,
            Err(detail) if is_final && gen == base_gen => {
                // The final WAL's header never made it to disk whole. The
                // base snapshot of the *same* generation is the complete
                // state at that WAL's birth, so nothing acknowledged is
                // lost by starting it over.
                report
                    .fallbacks
                    .push(format!("wal gen {gen}: {detail}; recreated empty"));
                continue;
            }
            Err(detail) => return Err(corrupt(&path, detail)),
        };
        if parsed.gen != gen {
            return Err(corrupt(&path, format!("file claims gen {}", parsed.gen)));
        }
        if parsed.schema != *db.schema() {
            return Err(corrupt(&path, "schema differs from the recovered instance"));
        }
        if parsed.base_rows != ever_rows(&db) {
            return Err(corrupt(
                &path,
                format!(
                    "wal expects a {}-row base but the chain reconstructed {} rows",
                    parsed.base_rows,
                    ever_rows(&db)
                ),
            ));
        }

        if is_final {
            final_wal_ok = true;
        }

        // Apply batches: data records buffer until their closing mark.
        let mut pending: Vec<WalRecord> = Vec::new();
        let mut committed_end = parsed.header_end;
        let (records, file_len, tail_error) = (parsed.records, parsed.file_len, parsed.tail_error);
        for (rec, end) in records {
            if rec.is_mark() {
                let batch = std::mem::take(&mut pending);
                let n = batch.len() as u64 + 1;
                apply_batch(&mut db, &mut meta, batch, &rec).map_err(|d| corrupt(&path, d))?;
                report.records_replayed += n;
                report.batches_replayed += 1;
                committed_end = end;
            } else {
                pending.push(rec);
            }
        }
        let dangling = pending.len() as u64;
        if !is_final {
            if tail_error.is_some() || dangling > 0 {
                return Err(corrupt(
                    &path,
                    "mid-chain wal ends in unacknowledged records; later \
                     generations were built on state this chain cannot reproduce",
                ));
            }
            continue;
        }
        // Final WAL: chop the torn/unacknowledged tail so the next append
        // starts at a clean record boundary.
        if committed_end < file_len {
            io.truncate(&path, committed_end as u64)
                .map_err(|e| io_err("truncate torn tail", &path, e))?;
            io.sync(&path).map_err(|e| io_err("wal fsync", &path, e))?;
            report.truncated_bytes += (file_len - committed_end) as u64;
            report.discarded_records += dangling;
            if let Some(detail) = tail_error {
                report
                    .fallbacks
                    .push(format!("wal gen {gen}: torn tail ({detail})"));
            }
        }
    }

    let store = DiskStore {
        io,
        dir: dir.to_path_buf(),
        fsync: opts.fsync,
        checkpoint_every: opts.checkpoint_every,
        gen: newest,
        last_valid_snap: base_gen,
        appends_since_sync: 0,
        records_since_checkpoint: 0,
        wedged: false,
    };
    // Recreate the newest WAL if it was missing or unreadable.
    if !final_wal_ok {
        store.write_wal_header(newest, &db)?;
    }
    // Quarantine the snapshots that failed validation. Left in place, the
    // next checkpoint's GC could retire the generation recovery actually
    // loaded from while a known-corrupt file stayed behind as the newest
    // fallback. Removal is best-effort and runs only once recovery has
    // succeeded — a failed open leaves every byte on disk for forensics.
    for gen in corrupt_snaps {
        let path = dir.join(snap_name(gen));
        if store.io.remove(&path).is_ok() {
            report
                .fallbacks
                .push(format!("snapshot gen {gen}: removed corrupt file"));
        }
    }

    Ok((store, db, meta, report))
}

/// Apply one acknowledged batch. Strict: every record must replay exactly
/// as it originally happened.
fn apply_batch(
    db: &mut Instance,
    meta: &mut SessionMeta,
    data: Vec<WalRecord>,
    mark: &WalRecord,
) -> Result<(), String> {
    for rec in data {
        match rec {
            WalRecord::Insert { rel, values } => {
                if rel.idx() >= db.schema().len() {
                    return Err(format!("insert into unknown relation {}", rel.0));
                }
                let expected_row = db.relation(rel).num_rows() as u32;
                let tid = db
                    .insert(rel, Tuple::new(values))
                    .map_err(|e| format!("replayed insert rejected: {e}"))?;
                if tid.row != expected_row {
                    return Err(format!(
                        "replayed insert deduplicated into existing row {} \
                         (wal out of step with its base)",
                        tid.row
                    ));
                }
            }
            WalRecord::Delete { tid } => {
                let n = db
                    .delete_tuples([tid])
                    .map_err(|e| format!("replayed delete rejected: {e}"))?;
                if n != 1 {
                    return Err(format!("replayed delete of {tid} was a no-op"));
                }
            }
            WalRecord::Restore { tid } => {
                let n = db
                    .restore_tuples([tid])
                    .map_err(|e| format!("replayed restore rejected: {e}"))?;
                if n != 1 {
                    return Err(format!("replayed restore of {tid} was a no-op"));
                }
            }
            other => return Err(format!("mark {other:?} inside a batch body")),
        }
    }
    match mark {
        WalRecord::Commit { epoch } => meta.epoch = *epoch,
        WalRecord::Apply {
            epoch,
            semantics,
            deleted,
        } => {
            meta.history.push(super::HistoryEntry {
                semantics: *semantics,
                deleted: deleted.clone(),
            });
            meta.epoch = *epoch;
        }
        WalRecord::Undo { epoch } => {
            if meta.history.pop().is_none() {
                return Err("undo mark with an empty history".into());
            }
            meta.epoch = *epoch;
        }
        _ => unreachable!("caller only passes marks"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::{
        DiskOptions, DiskStore, FsyncPolicy, MemIo, SessionMeta, StorageIo, WalRecord,
    };
    use super::*;
    use crate::schema::{AttrType, Schema};
    use crate::value::Value;
    use std::sync::Arc;

    fn mem_opts() -> (Arc<MemIo>, DiskOptions) {
        let mem = Arc::new(MemIo::new());
        let opts = DiskOptions {
            fsync: FsyncPolicy::Always,
            io: mem.clone(),
            checkpoint_every: 0,
        };
        (mem, opts)
    }

    fn db_with_rows(n: i64) -> Instance {
        let mut schema = Schema::new();
        schema.relation("R", &[("x", AttrType::Int)]);
        let mut db = Instance::new(schema);
        for i in 0..n {
            db.insert_values("R", [Value::Int(i)]).unwrap();
        }
        db
    }

    /// Build a two-generation store with one batch in each WAL.
    fn two_gen_store(opts: &DiskOptions) -> (Instance, SessionMeta) {
        let dir = Path::new("/store");
        let mut db = db_with_rows(3);
        let mut store = DiskStore::create(dir, opts.clone(), &db, &SessionMeta::default()).unwrap();
        let rel = db.schema().rel_id("R").unwrap();
        let t = db.insert_values("R", [Value::Int(100)]).unwrap();
        store
            .append(&[
                WalRecord::Insert {
                    rel,
                    values: vec![Value::Int(100)],
                },
                WalRecord::Commit { epoch: 1 },
            ])
            .unwrap();
        let meta = SessionMeta {
            epoch: 1,
            history: vec![],
        };
        store.checkpoint(&db, &meta).unwrap();
        db.delete_tuples([t]).unwrap();
        store
            .append(&[WalRecord::Delete { tid: t }, WalRecord::Commit { epoch: 2 }])
            .unwrap();
        (
            db,
            SessionMeta {
                epoch: 2,
                history: vec![],
            },
        )
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_across_the_wal_chain() {
        let (mem, opts) = mem_opts();
        let dir = Path::new("/store");
        let (db, meta) = two_gen_store(&opts);
        // Trash the newest snapshot.
        let snap1 = dir.join(snap_name(1));
        let mut bytes = mem.contents(&snap1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        mem.corrupt(&snap1, bytes);

        let (_, rdb, rmeta, report) = DiskStore::open(dir, opts).unwrap();
        assert_eq!(
            rdb, db,
            "gen-0 snapshot + wal-0 + wal-1 reproduce the state"
        );
        assert_eq!(rmeta, meta);
        assert_eq!(report.snapshot_gen, Some(0));
        assert!(report.degraded());
        assert!(report.fallbacks[0].contains("snapshot gen 1"), "{report:?}");
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_survives_the_next_checkpoint() {
        let (mem, opts) = mem_opts();
        let dir = Path::new("/store");
        let (db, meta) = two_gen_store(&opts);
        let snap1 = dir.join(snap_name(1));
        mem.corrupt(&snap1, b"garbage".to_vec());

        let (mut store, rdb, rmeta, report) = DiskStore::open(dir, opts.clone()).unwrap();
        assert_eq!(rdb, db);
        assert!(
            mem.contents(&snap1).is_none(),
            "the snapshot that failed validation is removed: {report:?}"
        );
        assert!(
            report.fallbacks.iter().any(|f| f.contains("removed")),
            "{report:?}"
        );

        // The first checkpoint must keep generation 0 — the snapshot
        // recovery actually loaded from and still the only valid one
        // below the checkpoint being written.
        store.checkpoint(&rdb, &rmeta).unwrap();
        assert!(mem.contents(&dir.join(snap_name(0))).is_some());
        let (_, rdb2, rmeta2, _) = DiskStore::open(dir, opts.clone()).unwrap();
        assert_eq!(rdb2, db);
        assert_eq!(rmeta2, meta);

        // A second checkpoint gives two self-written valid generations;
        // normal two-generation retirement resumes.
        store.checkpoint(&rdb, &rmeta).unwrap();
        let gens: Vec<u64> = mem
            .list(dir)
            .unwrap()
            .iter()
            .filter_map(|n| super::parse_gen(n, "snap-", ".drs"))
            .collect();
        assert!(mem.contents(&dir.join(snap_name(0))).is_none());
        assert_eq!(gens.iter().copied().max(), Some(3));
    }

    #[test]
    fn all_snapshots_corrupt_with_nonempty_base_is_typed_corruption() {
        let (mem, opts) = mem_opts();
        let dir = Path::new("/store");
        let (_db, _meta) = two_gen_store(&opts);
        for gen in [0, 1] {
            let p = dir.join(snap_name(gen));
            mem.corrupt(&p, b"not a snapshot at all".to_vec());
        }
        let err = DiskStore::open(dir, opts).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("wal-only"), "{err}");
    }

    #[test]
    fn wal_only_replay_recovers_an_empty_base_store() {
        let (mem, opts) = mem_opts();
        let dir = Path::new("/store");
        let mut db = db_with_rows(0);
        let mut store = DiskStore::create(dir, opts.clone(), &db, &SessionMeta::default()).unwrap();
        let rel = db.schema().rel_id("R").unwrap();
        for i in 0..4 {
            db.insert_values("R", [Value::Int(i)]).unwrap();
            store
                .append(&[
                    WalRecord::Insert {
                        rel,
                        values: vec![Value::Int(i)],
                    },
                    WalRecord::Commit {
                        epoch: (i + 1) as u64,
                    },
                ])
                .unwrap();
        }
        mem.corrupt(&dir.join(snap_name(0)), vec![0xAB; 64]);
        let (_, rdb, rmeta, report) = DiskStore::open(dir, opts).unwrap();
        assert_eq!(rdb, db);
        assert_eq!(rmeta.epoch, 4);
        assert_eq!(report.snapshot_gen, None);
        assert_eq!(report.batches_replayed, 4);
    }

    #[test]
    fn torn_tail_and_unacked_records_are_truncated() {
        let (mem, opts) = mem_opts();
        let dir = Path::new("/store");
        let mut db = db_with_rows(2);
        let mut store = DiskStore::create(dir, opts.clone(), &db, &SessionMeta::default()).unwrap();
        let rel = db.schema().rel_id("R").unwrap();
        db.insert_values("R", [Value::Int(50)]).unwrap();
        store
            .append(&[
                WalRecord::Insert {
                    rel,
                    values: vec![Value::Int(50)],
                },
                WalRecord::Commit { epoch: 1 },
            ])
            .unwrap();
        // A complete-but-unacknowledged record, then garbage.
        let wal = dir.join(wal_name(0));
        let mut bytes = mem.contents(&wal).unwrap();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&wal::frame_records(&[WalRecord::Insert {
            rel,
            values: vec![Value::Int(51)],
        }]));
        bytes.extend_from_slice(&[0x77; 9]);
        mem.corrupt(&wal, bytes);

        let (_, rdb, rmeta, report) = DiskStore::open(dir, opts).unwrap();
        assert_eq!(rdb, db, "the unacknowledged insert is not replayed");
        assert_eq!(rmeta.epoch, 1);
        assert!(report.truncated_bytes > 0);
        assert_eq!(report.discarded_records, 1);
        assert_eq!(
            mem.contents(&wal).unwrap().len(),
            clean_len,
            "file physically truncated back to the last acknowledged batch"
        );
    }

    #[test]
    fn missing_final_wal_is_recreated() {
        let (mem, opts) = mem_opts();
        let dir = Path::new("/store");
        let (db, meta) = two_gen_store(&opts);
        // As if the crash hit between snapshot rename and WAL creation —
        // but the delete batch of wal-1 must survive for state parity, so
        // first fold it into a newer snapshot via a fresh checkpoint.
        let (mut store, rdb, rmeta, _) = DiskStore::open(dir, opts.clone()).unwrap();
        store.checkpoint(&rdb, &rmeta).unwrap();
        StorageIo::remove(&*mem, &dir.join(wal_name(2))).unwrap();
        let (store, rdb, rmeta, report) = DiskStore::open(dir, opts).unwrap();
        assert_eq!(rdb, db);
        assert_eq!(rmeta, meta);
        assert_eq!(store.generation(), 2);
        assert!(
            report.fallbacks.iter().any(|f| f.contains("recreated")),
            "{report:?}"
        );
        assert!(mem.contents(&dir.join(wal_name(2))).is_some());
    }

    #[test]
    fn garbage_everywhere_errors_and_never_panics() {
        let (mem, opts) = mem_opts();
        let dir = Path::new("/store");
        mem.corrupt(&dir.join(snap_name(3)), vec![0x00; 200]);
        mem.corrupt(&dir.join(wal_name(3)), vec![0xFF; 200]);
        let err = DiskStore::open(dir, opts.clone()).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");

        // An empty directory is "not a store", also typed.
        let err = DiskStore::open(Path::new("/elsewhere"), opts).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }
}

//! Binary snapshots: a full, checksummed image of an [`Instance`] plus the
//! session metadata (epoch + undo history) and the journal cursor.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic "DRSNAP01" | gen u64 | epoch u64 | journal_head u64 | schema
//! symtab: count u32 | string*          interned strings, referenced by index
//! per relation (schema order):
//!     rows u64
//!     row*                             arity × value (0 i64 | 1 symref u32)
//!     live bitset: words u64 | word*   packed u64s, one bit per row
//! history: count u32 | (semantics u8 | n u32 | (rel u16, row u32)*)*
//! crc u32                              crc32 of everything before it
//! ```
//!
//! Every row ever inserted is serialized — tombstones included — because
//! [`crate::TupleId`]s are row indexes and must survive the round-trip (the
//! undo history refers to them). Interned symbol ids are process-local, so
//! strings go through a per-file symbol table and are re-interned on load.

use super::codec::{self, Reader};
use super::{HistoryEntry, SessionMeta};
use crate::bitset::BitSet;
use crate::instance::Instance;
use crate::relation::Relation;
use crate::schema::RelId;
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;
use crate::FxHashMap;

/// File magic + format version of snapshots.
pub const SNAP_MAGIC: &[u8; 8] = b"DRSNAP01";

/// Everything a snapshot holds.
#[derive(Debug)]
pub struct SnapshotData {
    pub gen: u64,
    pub db: Instance,
    pub meta: SessionMeta,
}

/// Serialize `db` + `meta` as snapshot generation `gen`.
pub fn encode(gen: u64, db: &Instance, meta: &SessionMeta) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAP_MAGIC);
    codec::put_u64(&mut out, gen);
    codec::put_u64(&mut out, meta.epoch);
    codec::put_u64(&mut out, db.journal().head());
    codec::put_schema(&mut out, db.schema());

    // Symbol table: every distinct string, in first-appearance order.
    let mut sym_index: FxHashMap<u32, u32> = FxHashMap::default();
    let mut symbols: Vec<&'static str> = Vec::new();
    for (rel, _) in db.schema().iter() {
        for (_, t) in db.relation(rel).iter() {
            for v in t.values() {
                if let Value::Str(s) = v {
                    sym_index.entry(s.id()).or_insert_with(|| {
                        symbols.push(s.as_str());
                        (symbols.len() - 1) as u32
                    });
                }
            }
        }
    }
    codec::put_u32(&mut out, symbols.len() as u32);
    for s in &symbols {
        codec::put_str(&mut out, s);
    }

    for (rel, _) in db.schema().iter() {
        let r = db.relation(rel);
        codec::put_u64(&mut out, r.num_rows() as u64);
        for (_, t) in r.iter() {
            for v in t.values() {
                match v {
                    Value::Int(i) => {
                        out.push(0);
                        codec::put_i64(&mut out, *i);
                    }
                    Value::Str(s) => {
                        out.push(1);
                        codec::put_u32(&mut out, sym_index[&s.id()]);
                    }
                }
            }
        }
        let nwords = r.num_rows().div_ceil(64);
        codec::put_u64(&mut out, nwords as u64);
        let mut words = vec![0u64; nwords];
        for row in 0..r.num_rows() {
            if r.is_live(row as u32) {
                words[row / 64] |= 1 << (row % 64);
            }
        }
        for w in words {
            codec::put_u64(&mut out, w);
        }
    }

    codec::put_u32(&mut out, meta.history.len() as u32);
    for entry in &meta.history {
        out.push(entry.semantics);
        codec::put_u32(&mut out, entry.deleted.len() as u32);
        for tid in &entry.deleted {
            codec::put_u16(&mut out, tid.rel.0);
            codec::put_u32(&mut out, tid.row);
        }
    }

    let crc = codec::crc32(&out);
    codec::put_u32(&mut out, crc);
    out
}

/// Decode and fully validate a snapshot file. Any failure — bad magic,
/// checksum mismatch, impossible contents — is a `String` detail for the
/// recovery ladder to report; this function never panics on garbage.
pub fn decode(bytes: &[u8]) -> Result<SnapshotData, String> {
    if bytes.len() < SNAP_MAGIC.len() + 4 {
        return Err("file too short for a snapshot".into());
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if codec::crc32(body) != stored_crc {
        return Err("file checksum mismatch".into());
    }

    let mut r = Reader::new(body);
    if r.take(SNAP_MAGIC.len())? != SNAP_MAGIC {
        return Err("bad magic (not a snapshot file)".into());
    }
    let gen = r.u64()?;
    let epoch = r.u64()?;
    let journal_head = r.u64()?;
    let schema = codec::read_schema(&mut r)?;

    let nsyms = r.u32()? as usize;
    let mut symbols = Vec::with_capacity(nsyms);
    for _ in 0..nsyms {
        symbols.push(Value::str(r.str()?));
    }

    let mut relations = Vec::with_capacity(schema.len());
    for (rel, rs) in schema.iter() {
        let rows = r.u64()? as usize;
        let mut tuples = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut values = Vec::with_capacity(rs.arity());
            for attr in &rs.attrs {
                let v = match r.u8()? {
                    0 => Value::Int(r.i64()?),
                    1 => {
                        let idx = r.u32()? as usize;
                        *symbols
                            .get(idx)
                            .ok_or_else(|| format!("symbol index {idx} out of range"))?
                    }
                    t => return Err(format!("unknown value tag {t}")),
                };
                if !attr.ty.admits(&v) {
                    return Err(format!("value breaks the `{}.{}` type", rs.name, attr.name));
                }
                values.push(v);
            }
            tuples.push(Tuple::new(values));
        }
        let nwords = r.u64()? as usize;
        if nwords != rows.div_ceil(64) {
            return Err(format!(
                "relation `{}`: live bitset has {nwords} words for {rows} rows",
                rs.name
            ));
        }
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(r.u64()?);
        }
        let live = BitSet::from_words(words, rows)
            .ok_or_else(|| format!("relation `{}`: live bit set beyond row count", rs.name))?;
        let relation = Relation::from_saved_rows(tuples, live)
            .map_err(|e| format!("relation `{}`: {e}", rs.name))?;
        debug_assert_eq!(rel.idx(), relations.len());
        relations.push(relation);
    }

    let nhist = r.u32()? as usize;
    let mut history = Vec::with_capacity(nhist);
    for _ in 0..nhist {
        let semantics = r.u8()?;
        let n = r.u32()? as usize;
        let mut deleted = Vec::with_capacity(n);
        for _ in 0..n {
            let rel = RelId(r.u16()?);
            let row = r.u32()?;
            if rel.idx() >= relations.len() || row as usize >= relations[rel.idx()].num_rows() {
                return Err(format!("history refers to unknown tuple t{}.{row}", rel.0));
            }
            deleted.push(TupleId::new(rel, row));
        }
        history.push(HistoryEntry { semantics, deleted });
    }
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after history", r.remaining()));
    }

    Ok(SnapshotData {
        gen,
        db: Instance::from_saved_parts(schema, relations, journal_head),
        meta: SessionMeta { epoch, history },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};

    fn sample_db() -> Instance {
        let mut schema = Schema::new();
        schema.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
        schema.relation("Author", &[("aid", AttrType::Int)]);
        let mut db = Instance::new(schema);
        let t0 = db
            .insert_values("Grant", [Value::Int(1), Value::str("NSF")])
            .unwrap();
        db.insert_values("Grant", [Value::Int(2), Value::str("ERC")])
            .unwrap();
        db.insert_values("Grant", [Value::Int(3), Value::str("NSF")])
            .unwrap();
        db.insert_values("Author", [Value::Int(9)]).unwrap();
        // A tombstone in the middle: row ids must survive the round-trip.
        db.delete_tuples([t0]).unwrap();
        db
    }

    #[test]
    fn snapshot_round_trips_tombstones_and_history() {
        let db = sample_db();
        let meta = SessionMeta {
            epoch: 7,
            history: vec![HistoryEntry {
                semantics: 3,
                deleted: vec![TupleId::new(RelId(0), 0)],
            }],
        };
        let bytes = encode(4, &db, &meta);
        let snap = decode(&bytes).unwrap();
        assert_eq!(snap.gen, 4);
        assert_eq!(snap.meta, meta);
        assert_eq!(snap.db, db);
        assert_eq!(snap.db.journal().head(), db.journal().head());
        let rel = snap.db.schema().rel_id("Grant").unwrap();
        assert_eq!(snap.db.relation(rel).num_rows(), 3);
        assert_eq!(snap.db.relation(rel).live_count(), 2);
        assert!(!snap.db.relation(rel).is_live(0));
        assert!(snap.db.indexes_consistent());
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let db = sample_db();
        let meta = SessionMeta::default();
        let clean = encode(0, &db, &meta);
        // Exhaustive over the whole (small) file: no flipped byte may
        // decode successfully, and none may panic.
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x04;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
        // Truncations neither.
        for len in 0..clean.len() {
            assert!(decode(&clean[..len]).is_err());
        }
    }

    #[test]
    fn duplicate_live_rows_are_rejected() {
        // Hand-craft a snapshot whose relation holds two live copies of
        // the same tuple — impossible for a real instance, so decode must
        // refuse rather than rebuild a broken dedup map.
        let mut schema = Schema::new();
        schema.relation("R", &[("x", AttrType::Int)]);
        let mut db = Instance::new(schema);
        let t = db.insert_values("R", [Value::Int(5)]).unwrap();
        db.delete_tuples([t]).unwrap();
        db.insert_values("R", [Value::Int(5)]).unwrap();
        let mut bytes = encode(0, &db, &SessionMeta::default());
        // Flip the dead row live: the bitset word for R starts right after
        // its two 9-byte rows; patch via full re-encode instead — easier:
        // decode-modify is impossible (decode refuses), so locate the live
        // word. Layout: ...rows u64 | row0 | row1 | nwords u64 | word.
        let word_pos = bytes.len() - 4 /*crc*/ - 4 /*hist count*/ - 8 /*word*/;
        bytes[word_pos] = 0b11; // both rows live
        let body_len = bytes.len() - 4;
        let crc = codec::crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.contains("duplicates"), "{err}");
    }
}

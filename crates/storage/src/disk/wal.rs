//! The write-ahead log: a header followed by length-prefixed,
//! CRC-checksummed records.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic "DRWAL001" | gen u64 | base_rows u64 | schema | header_crc u32
//! record*                      where record = len u32 | crc32(payload) u32 | payload
//! ```
//!
//! `gen` ties the file to the snapshot generation it extends; `base_rows`
//! is the total row count of that snapshot (recovery refuses a WAL-only
//! replay unless the chain starts at an empty base). The first payload byte
//! is the record kind; insert records carry the tuple's **values** (the
//! mutation journal records only ids), so replaying the raw sequence
//! against the reconstructed instance reproduces the exact row ids.
//!
//! A record whose length or checksum does not match ends the scan: if
//! nothing but zero-or-more whole records follows, that is a *torn tail*
//! (the crash interrupted an append) and recovery truncates it; the
//! records of a batch only count once the scan reaches the batch's
//! closing `Commit`/`Apply`/`Undo` mark, so recovery always lands on an
//! acknowledged batch boundary.

use super::codec::{self, Reader};
use crate::schema::{RelId, Schema};
use crate::tuple::TupleId;
use crate::value::Value;

/// File magic + format version of the WAL.
pub const WAL_MAGIC: &[u8; 8] = b"DRWAL001";

/// Upper bound on one record payload; a length field above this is treated
/// as corruption rather than attempted as an allocation.
const MAX_RECORD_LEN: u32 = 1 << 30;

/// One WAL record. Data records mirror [`crate::MutationKind`] (plus the
/// values the journal does not carry); mark records close a batch and make
/// it recoverable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A fresh row appended to `rel` (row id = the relation's next row).
    Insert { rel: RelId, values: Vec<Value> },
    /// A live row tombstoned.
    Delete { tid: TupleId },
    /// A tombstoned row revived.
    Restore { tid: TupleId },
    /// Plain mutation batch acknowledged; `epoch` is the session epoch
    /// after it.
    Commit { epoch: u64 },
    /// A repair was applied: the semantics (session-level code) and the
    /// full delete set, which is what the undo history stores — the
    /// preceding `Delete` records cover only rows that were actually live.
    Apply {
        epoch: u64,
        semantics: u8,
        deleted: Vec<TupleId>,
    },
    /// The newest applied repair was undone (preceded by its `Restore`s).
    Undo { epoch: u64 },
}

impl WalRecord {
    /// Is this a batch-closing mark?
    pub fn is_mark(&self) -> bool {
        matches!(
            self,
            WalRecord::Commit { .. } | WalRecord::Apply { .. } | WalRecord::Undo { .. }
        )
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            codec::put_i64(out, *i);
        }
        Value::Str(s) => {
            out.push(1);
            codec::put_str(out, s.as_str());
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, String> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => Ok(Value::str(r.str()?)),
        t => Err(format!("unknown value tag {t}")),
    }
}

fn put_tid(out: &mut Vec<u8>, tid: TupleId) {
    codec::put_u16(out, tid.rel.0);
    codec::put_u32(out, tid.row);
}

fn read_tid(r: &mut Reader<'_>) -> Result<TupleId, String> {
    let rel = RelId(r.u16()?);
    let row = r.u32()?;
    Ok(TupleId::new(rel, row))
}

/// Encode one record's payload (kind byte + body, no framing).
pub fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        WalRecord::Insert { rel, values } => {
            out.push(0);
            codec::put_u16(&mut out, rel.0);
            codec::put_u16(&mut out, values.len() as u16);
            for v in values {
                put_value(&mut out, v);
            }
        }
        WalRecord::Delete { tid } => {
            out.push(1);
            put_tid(&mut out, *tid);
        }
        WalRecord::Restore { tid } => {
            out.push(2);
            put_tid(&mut out, *tid);
        }
        WalRecord::Commit { epoch } => {
            out.push(3);
            codec::put_u64(&mut out, *epoch);
        }
        WalRecord::Apply {
            epoch,
            semantics,
            deleted,
        } => {
            out.push(4);
            codec::put_u64(&mut out, *epoch);
            out.push(*semantics);
            codec::put_u32(&mut out, deleted.len() as u32);
            for tid in deleted {
                put_tid(&mut out, *tid);
            }
        }
        WalRecord::Undo { epoch } => {
            out.push(5);
            codec::put_u64(&mut out, *epoch);
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
    let mut r = Reader::new(payload);
    let rec = match r.u8()? {
        0 => {
            let rel = RelId(r.u16()?);
            let arity = r.u16()?;
            let mut values = Vec::with_capacity(arity as usize);
            for _ in 0..arity {
                values.push(read_value(&mut r)?);
            }
            WalRecord::Insert { rel, values }
        }
        1 => WalRecord::Delete {
            tid: read_tid(&mut r)?,
        },
        2 => WalRecord::Restore {
            tid: read_tid(&mut r)?,
        },
        3 => WalRecord::Commit { epoch: r.u64()? },
        4 => {
            let epoch = r.u64()?;
            let semantics = r.u8()?;
            let n = r.u32()?;
            let mut deleted = Vec::with_capacity(n as usize);
            for _ in 0..n {
                deleted.push(read_tid(&mut r)?);
            }
            WalRecord::Apply {
                epoch,
                semantics,
                deleted,
            }
        }
        5 => WalRecord::Undo { epoch: r.u64()? },
        k => return Err(format!("unknown record kind {k}")),
    };
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after record", r.remaining()));
    }
    Ok(rec)
}

/// Frame records for appending: `len | crc | payload` each.
pub fn frame_records(records: &[WalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for rec in records {
        let payload = encode_payload(rec);
        codec::put_u32(&mut out, payload.len() as u32);
        codec::put_u32(&mut out, codec::crc32(&payload));
        out.extend_from_slice(&payload);
    }
    out
}

/// Encode the file header for a fresh WAL.
pub fn encode_header(gen: u64, base_rows: u64, schema: &Schema) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(WAL_MAGIC);
    codec::put_u64(&mut out, gen);
    codec::put_u64(&mut out, base_rows);
    codec::put_schema(&mut out, schema);
    let crc = codec::crc32(&out);
    codec::put_u32(&mut out, crc);
    out
}

/// A parsed WAL file: the header fields plus every whole, checksummed
/// record with the byte offset of its end (for torn-tail truncation).
#[derive(Debug)]
pub struct WalFile {
    pub gen: u64,
    pub base_rows: u64,
    pub schema: Schema,
    /// Offset just past the header (where the first record starts).
    pub header_end: usize,
    /// `(record, end_offset)` in file order.
    pub records: Vec<(WalRecord, usize)>,
    /// Total file length scanned.
    pub file_len: usize,
    /// Offset where the record scan stopped (== `file_len` on a clean
    /// file; earlier when a torn or corrupt tail follows).
    pub scanned_to: usize,
    /// Why the scan stopped early, when it did.
    pub tail_error: Option<String>,
}

/// Parse a WAL file. An unreadable *header* fails the whole file (the
/// caller falls back down the recovery ladder); an unreadable *record*
/// merely ends the scan, reported via `scanned_to`/`tail_error`.
pub fn parse(bytes: &[u8]) -> Result<WalFile, String> {
    let mut r = Reader::new(bytes);
    let magic = r
        .take(WAL_MAGIC.len())
        .map_err(|e| format!("header: {e}"))?;
    if magic != WAL_MAGIC {
        return Err("bad magic (not a WAL file)".into());
    }
    let gen = r.u64().map_err(|e| format!("header: {e}"))?;
    let base_rows = r.u64().map_err(|e| format!("header: {e}"))?;
    let schema = codec::read_schema(&mut r).map_err(|e| format!("header: {e}"))?;
    let header_end = r.pos();
    let stored_crc = r.u32().map_err(|e| format!("header: {e}"))?;
    if stored_crc != codec::crc32(&bytes[..header_end]) {
        return Err("header checksum mismatch".into());
    }
    let header_end = r.pos();

    let mut records = Vec::new();
    let mut tail_error = None;
    let scanned_to = loop {
        let record_start = r.pos();
        if r.remaining() == 0 {
            break record_start;
        }
        let frame = (|| -> Result<(WalRecord, usize), String> {
            let mut r2 = Reader::new(bytes);
            let _ = r2.take(record_start).unwrap();
            let len = r2.u32()?;
            if len > MAX_RECORD_LEN {
                return Err(format!("record length {len} exceeds limit"));
            }
            let crc = r2.u32()?;
            let payload = r2.take(len as usize)?;
            if codec::crc32(payload) != crc {
                return Err("record checksum mismatch".into());
            }
            Ok((decode_payload(payload)?, r2.pos()))
        })();
        match frame {
            Ok((rec, end)) => {
                let _ = r.take(end - record_start).unwrap();
                records.push((rec, end));
            }
            Err(e) => {
                tail_error = Some(format!("at byte {record_start}: {e}"));
                break record_start;
            }
        }
    };

    Ok(WalFile {
        gen,
        base_rows,
        schema,
        header_end,
        records,
        file_len: bytes.len(),
        scanned_to,
        tail_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.relation("R", &[("x", AttrType::Int), ("s", AttrType::Str)]);
        s
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                rel: RelId(0),
                values: vec![Value::Int(-7), Value::str("hello\tworld")],
            },
            WalRecord::Delete {
                tid: TupleId::new(RelId(0), 3),
            },
            WalRecord::Restore {
                tid: TupleId::new(RelId(0), 3),
            },
            WalRecord::Commit { epoch: 42 },
            WalRecord::Apply {
                epoch: 43,
                semantics: 3,
                deleted: vec![TupleId::new(RelId(0), 1), TupleId::new(RelId(0), 9)],
            },
            WalRecord::Undo { epoch: 44 },
        ]
    }

    #[test]
    fn records_round_trip_through_framing() {
        let recs = sample_records();
        let mut file = encode_header(5, 13, &schema());
        file.extend_from_slice(&frame_records(&recs));
        let parsed = parse(&file).unwrap();
        assert_eq!(parsed.gen, 5);
        assert_eq!(parsed.base_rows, 13);
        assert_eq!(parsed.schema, schema());
        let back: Vec<WalRecord> = parsed.records.into_iter().map(|(r, _)| r).collect();
        assert_eq!(back, recs);
        assert_eq!(parsed.scanned_to, file.len());
        assert!(parsed.tail_error.is_none());
    }

    #[test]
    fn torn_tail_stops_the_scan_at_the_last_whole_record() {
        let recs = sample_records();
        let mut file = encode_header(0, 0, &schema());
        file.extend_from_slice(&frame_records(&recs));
        let clean_len = file.len();
        // Half a record of garbage at the end.
        file.extend_from_slice(&[0x22; 5]);
        let parsed = parse(&file).unwrap();
        assert_eq!(parsed.records.len(), recs.len());
        assert_eq!(parsed.scanned_to, clean_len);
        assert!(parsed.tail_error.is_some());
    }

    #[test]
    fn flipped_record_byte_fails_its_checksum_only() {
        let recs = sample_records();
        let header = encode_header(0, 0, &schema());
        let mut file = header.clone();
        file.extend_from_slice(&frame_records(&recs));
        // Flip one byte inside the *first* record's payload.
        file[header.len() + 9] ^= 0x01;
        let parsed = parse(&file).unwrap();
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.scanned_to, header.len());
        assert!(parsed.tail_error.unwrap().contains("checksum"));
    }

    #[test]
    fn flipped_header_byte_fails_the_whole_file() {
        let mut file = encode_header(1, 0, &schema());
        file.extend_from_slice(&frame_records(&sample_records()));
        file[10] ^= 0x40;
        assert!(parse(&file).is_err());
        assert!(parse(b"short").is_err());
        assert!(parse(b"DRSNAP01not a wal").is_err());
    }

    #[test]
    fn insane_record_length_is_corruption_not_an_allocation() {
        let mut file = encode_header(0, 0, &schema());
        codec::put_u32(&mut file, u32::MAX);
        codec::put_u32(&mut file, 0);
        let parsed = parse(&file).unwrap();
        assert!(parsed.tail_error.unwrap().contains("length"));
    }
}

//! Error type shared by the storage layer.

use std::fmt;

/// Errors raised while building schemas or loading data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A relation name was declared twice in one schema.
    DuplicateRelation(String),
    /// A relation name was referenced but never declared.
    UnknownRelation(String),
    /// An attribute name was referenced but does not exist on the relation.
    UnknownAttribute { relation: String, attribute: String },
    /// A tuple had the wrong number of values for its relation. `line` is
    /// the 1-based input line when the tuple came from a parsed document.
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
        line: Option<usize>,
    },
    /// A value did not match the declared attribute type.
    TypeMismatch {
        relation: String,
        attribute: String,
        expected: &'static str,
        got: &'static str,
    },
    /// A tuple id referenced a row that was never inserted.
    UnknownTuple { relation: String, row: u32 },
    /// Malformed TSV input.
    Parse(String),
    /// A durable-store file failed validation (bad magic, checksum mismatch,
    /// impossible replay) and no fallback could recover it.
    Corrupt { path: String, detail: String },
    /// An IO operation against the durable store failed. The underlying
    /// `std::io::Error` is flattened to a string so the error stays
    /// `Clone + PartialEq`.
    Io {
        op: &'static str,
        path: String,
        error: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` declared more than once")
            }
            StorageError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            StorageError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation `{relation}` has no attribute `{attribute}`"),
            StorageError::ArityMismatch {
                relation,
                expected,
                got,
                line,
            } => {
                if let Some(line) = line {
                    write!(f, "line {line}: ")?;
                }
                write!(
                    f,
                    "relation `{relation}` expects {expected} values, got {got}"
                )
            }
            StorageError::TypeMismatch {
                relation,
                attribute,
                expected,
                got,
            } => write!(
                f,
                "attribute `{relation}.{attribute}` expects {expected}, got {got}"
            ),
            StorageError::UnknownTuple { relation, row } => {
                write!(f, "relation `{relation}` has no row {row}")
            }
            StorageError::Parse(msg) => write!(f, "parse error: {msg}"),
            StorageError::Corrupt { path, detail } => {
                write!(f, "corrupt store file `{path}`: {detail}")
            }
            StorageError::Io { op, path, error } => {
                write!(f, "io error ({op} `{path}`): {error}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

//! Error type shared by the storage layer.

use std::fmt;

/// Errors raised while building schemas or loading data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A relation name was declared twice in one schema.
    DuplicateRelation(String),
    /// A relation name was referenced but never declared.
    UnknownRelation(String),
    /// An attribute name was referenced but does not exist on the relation.
    UnknownAttribute { relation: String, attribute: String },
    /// A tuple had the wrong number of values for its relation.
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// A value did not match the declared attribute type.
    TypeMismatch {
        relation: String,
        attribute: String,
        expected: &'static str,
        got: &'static str,
    },
    /// A tuple id referenced a row that was never inserted.
    UnknownTuple { relation: String, row: u32 },
    /// Malformed TSV input.
    Parse(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` declared more than once")
            }
            StorageError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            StorageError::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation `{relation}` has no attribute `{attribute}`"),
            StorageError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation `{relation}` expects {expected} values, got {got}"
            ),
            StorageError::TypeMismatch {
                relation,
                attribute,
                expected,
                got,
            } => write!(
                f,
                "attribute `{relation}.{attribute}` expects {expected}, got {got}"
            ),
            StorageError::UnknownTuple { relation, row } => {
                write!(f, "relation `{relation}` has no row {row}")
            }
            StorageError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

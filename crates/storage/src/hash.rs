//! A fast, non-cryptographic hasher for the engine's hot hash maps.
//!
//! The standard library's default SipHash is DoS-resistant but costs ~1ns
//! per word plus setup; every `Relation::dedup` probe, index lookup and
//! intern hit pays it. The engine hashes only trusted, internally generated
//! keys (tuples of interned values, tuple ids, provenance clauses), so a
//! multiplicative FxHash-style mix — the same scheme rustc uses for its
//! interning tables — is safe here and measurably faster. The build is
//! offline (no `rustc-hash` crate), hence this ~60-line reimplementation.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Multiplier from the golden-ratio family (the constant `rustc-hash` used
/// for years); any odd constant with well-mixed bits works.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiplicative hasher (FxHash).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.add(i as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.add(i as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add(i as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("hello"), hash_of("hello"));
        assert_eq!(hash_of((7i64, "x")), hash_of((7i64, "x")));
    }

    #[test]
    fn different_values_differ() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of("ab"), hash_of("ba"));
        // Same bytes, different split across writes must still differ from
        // unrelated input (not a strict requirement, but catches a no-op
        // write implementation).
        assert_ne!(hash_of("abcdefgh"), hash_of("abcdefgi"));
    }

    #[test]
    fn tail_bytes_affect_the_hash() {
        // 9 bytes: one full chunk plus a 1-byte tail.
        assert_ne!(hash_of(&b"12345678a"[..]), hash_of(&b"12345678b"[..]));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..1000 {
            assert_eq!(m[&format!("key-{i}")], i);
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }
}

//! The extensional database instance.

use crate::error::StorageError;
use crate::journal::{DeltaBatch, MutationJournal, MutationKind};
use crate::relation::Relation;
use crate::schema::{RelId, Schema};
use crate::state::State;
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;

/// A database instance: a [`Schema`] plus one [`Relation`] store per declared
/// relation.
///
/// An `Instance` is the durable substrate of every repair computation; the
/// *transient* part (presence bits and delta membership during one
/// evaluation) lives in [`State`]. This split lets the four semantics of the
/// paper evaluate over the same data without copying tuples. Durable
/// mutation — committing a repair, batch ingest — goes through
/// [`Instance::delete_tuples`] / [`Instance::restore_tuples`] / inserts,
/// which maintain every composite index incrementally **and** append to the
/// [`MutationJournal`], so downstream consumers (the incremental repair
/// engine) can see exactly what changed since any cursor they remember.
#[derive(Clone, Debug)]
pub struct Instance {
    schema: Schema,
    relations: Vec<Relation>,
    journal: MutationJournal,
}

/// Two instances are equal when they hold the same data: schema, tuples,
/// liveness, dedup maps and index contents. The mutation journal is
/// bookkeeping *about* past edits, not part of the database value — an
/// instance that deleted and restored a tuple equals one that never touched
/// it.
impl PartialEq for Instance {
    fn eq(&self, other: &Instance) -> bool {
        self.schema == other.schema && self.relations == other.relations
    }
}

impl Eq for Instance {}

impl Instance {
    /// Fresh instance for `schema`.
    pub fn new(schema: Schema) -> Instance {
        let relations = schema
            .iter()
            .map(|(_, rs)| Relation::new(rs.arity()))
            .collect();
        Instance {
            schema,
            relations,
            journal: MutationJournal::default(),
        }
    }

    /// Rebuild an instance from persisted parts (snapshot recovery). The
    /// relations must be in schema order; the journal resumes at
    /// `journal_head` with an empty retention window.
    pub(crate) fn from_saved_parts(
        schema: Schema,
        relations: Vec<Relation>,
        journal_head: u64,
    ) -> Instance {
        Instance {
            schema,
            relations,
            journal: MutationJournal::resumed_at(journal_head),
        }
    }

    /// Cap the mutation journal's retention window (tests and
    /// memory-constrained embeddings; see [`MutationJournal::set_capacity`]).
    pub fn set_journal_capacity(&mut self, cap: usize) {
        self.journal.set_capacity(cap);
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Storage of relation `rel`.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.idx()]
    }

    /// Insert a tuple (validated against the schema); returns its id.
    pub fn insert(&mut self, rel: RelId, t: Tuple) -> Result<TupleId, StorageError> {
        let rs = self.schema.rel(rel);
        let (row, fresh) = self.relations[rel.idx()].insert_checked(rs, t)?;
        let tid = TupleId::new(rel, row);
        if fresh {
            self.journal.record(MutationKind::Insert, tid);
        }
        Ok(tid)
    }

    /// Insert by relation name with `Into<Value>` items.
    pub fn insert_values<V: Into<Value>>(
        &mut self,
        rel_name: &str,
        values: impl IntoIterator<Item = V>,
    ) -> Result<TupleId, StorageError> {
        let rel = self.schema.require(rel_name)?;
        let t = Tuple::new(values.into_iter().map(Into::into).collect::<Vec<_>>());
        self.insert(rel, t)
    }

    /// The tuple behind `tid` (live or tombstoned).
    pub fn tuple(&self, tid: TupleId) -> &Tuple {
        self.relations[tid.rel.idx()].tuple(tid.row)
    }

    /// Is `tid` a live member of the instance (inserted and not deleted)?
    pub fn is_live(&self, tid: TupleId) -> bool {
        self.relations
            .get(tid.rel.idx())
            .is_some_and(|r| r.is_live(tid.row))
    }

    /// Batch-delete tuples from the instance, updating every composite
    /// index incrementally (no rebuild). Tuple ids stay valid — rows are
    /// tombstoned, never moved — so provenance and repair results keep
    /// working. Ids already deleted are skipped; an id that was never
    /// inserted is an error, and the whole batch is validated **before**
    /// anything is touched, so an error means the instance is unchanged.
    /// Returns the number of tuples removed.
    pub fn delete_tuples(
        &mut self,
        ids: impl IntoIterator<Item = TupleId> + Clone,
    ) -> Result<usize, StorageError> {
        for tid in ids.clone() {
            self.check_bounds(tid)?;
        }
        let mut removed = 0;
        for tid in ids {
            if self.relations[tid.rel.idx()].remove_row(tid.row) {
                self.journal.record(MutationKind::Delete, tid);
                removed += 1;
            }
        }
        debug_assert!(
            self.indexes_consistent(),
            "delete_tuples left an index inconsistent with the live rows"
        );
        debug_assert!(
            self.stats_consistent(),
            "delete_tuples left column statistics inconsistent with the live rows"
        );
        Ok(removed)
    }

    /// Batch-revive tombstoned tuples (the undo path of an applied repair),
    /// re-entering them into the dedup map and every index at their sorted
    /// position. Ids that are already live, or whose value has since been
    /// re-inserted under a new row, are skipped. Like
    /// [`Instance::delete_tuples`], validation happens before any mutation.
    /// Returns the number revived.
    pub fn restore_tuples(
        &mut self,
        ids: impl IntoIterator<Item = TupleId> + Clone,
    ) -> Result<usize, StorageError> {
        for tid in ids.clone() {
            self.check_bounds(tid)?;
        }
        let mut restored = 0;
        for tid in ids {
            if self.relations[tid.rel.idx()].restore_row(tid.row) {
                self.journal.record(MutationKind::Restore, tid);
                restored += 1;
            }
        }
        debug_assert!(
            self.indexes_consistent(),
            "restore_tuples left an index inconsistent with the live rows"
        );
        debug_assert!(
            self.stats_consistent(),
            "restore_tuples left column statistics inconsistent with the live rows"
        );
        Ok(restored)
    }

    /// The mutation journal: cursors for consumers that maintain derived
    /// state, net [`DeltaBatch`]es between cursors.
    pub fn journal(&self) -> &MutationJournal {
        &self.journal
    }

    /// Convenience for [`MutationJournal::changes_since`].
    pub fn changes_since(&self, cursor: u64) -> Option<DeltaBatch> {
        self.journal.changes_since(cursor)
    }

    /// Drop journal history before `cursor` (every consumer has drained it).
    pub fn truncate_journal_before(&mut self, cursor: u64) {
        self.journal.truncate_before(cursor);
    }

    /// Fraction of ever-inserted rows that are tombstones, across the whole
    /// instance (`0.0` for an empty instance).
    pub fn dead_ratio(&self) -> f64 {
        let total: usize = self.relations.iter().map(Relation::num_rows).sum();
        if total == 0 {
            return 0.0;
        }
        (total - self.total_rows()) as f64 / total as f64
    }

    /// Compact every relation whose dead ratio is at least `threshold`
    /// (see [`Relation::compact`]): dedup maps and index maps are rebuilt
    /// from the live rows, dropping the hash-table bloat tombstone churn
    /// leaves behind. Tuple ids, index ids and all probe results are
    /// unchanged — compaction is invisible to readers and to incremental
    /// consumers (nothing is journaled). Returns the number of relations
    /// compacted.
    pub fn compact(&mut self, threshold: f64) -> usize {
        let mut compacted = 0;
        for r in &mut self.relations {
            if r.num_rows() > 0 && r.dead_ratio() >= threshold {
                r.compact();
                compacted += 1;
            }
        }
        debug_assert!(
            self.indexes_consistent(),
            "compact left an index inconsistent with the live rows"
        );
        debug_assert!(
            self.stats_consistent(),
            "compact left column statistics inconsistent with the live rows"
        );
        compacted
    }

    /// Are all composite indexes and dedup maps of every relation
    /// bit-identical to a from-scratch rebuild over the live rows? Test and
    /// debugging support; `O(total rows × indexes)`.
    pub fn indexes_consistent(&self) -> bool {
        self.relations.iter().all(Relation::indexes_consistent)
    }

    /// Are every relation's per-column statistics bit-identical to a
    /// from-scratch recount over the live rows? Checked (in debug builds)
    /// after every mutating batch, exactly like
    /// [`Instance::indexes_consistent`].
    pub fn stats_consistent(&self) -> bool {
        self.relations.iter().all(Relation::stats_consistent)
    }

    fn check_bounds(&self, tid: TupleId) -> Result<usize, StorageError> {
        let idx = tid.rel.idx();
        match self.relations.get(idx) {
            Some(r) if (tid.row as usize) < r.num_rows() => Ok(idx),
            _ => Err(StorageError::UnknownTuple {
                relation: self
                    .schema
                    .iter()
                    .nth(idx)
                    .map(|(_, rs)| rs.name.clone())
                    .unwrap_or_else(|| format!("#{}", tid.rel.0)),
                row: tid.row,
            }),
        }
    }

    /// Find the id of `t` in `rel` (whether or not any state deleted it).
    pub fn find(&self, rel: RelId, t: &Tuple) -> Option<TupleId> {
        self.relations[rel.idx()]
            .find(t)
            .map(|row| TupleId::new(rel, row))
    }

    /// Build the per-column hash index for `rel.col`.
    pub fn ensure_index(&mut self, rel: RelId, col: usize) {
        self.relations[rel.idx()].ensure_index(col);
    }

    /// Build (or fetch) the composite index of `rel` over `cols` (strictly
    /// ascending); returns the id to pass to [`Relation::probe`].
    pub fn ensure_composite_index(&mut self, rel: RelId, cols: &[usize]) -> crate::IndexId {
        self.relations[rel.idx()].ensure_composite_index(cols)
    }

    /// Build every index on every column (used by benches and tests; the
    /// evaluator requests only the indexes its plans need).
    pub fn index_all(&mut self) {
        for r in &mut self.relations {
            let arity = r.iter().next().map(|(_, t)| t.arity()).unwrap_or(0);
            for c in 0..arity {
                r.ensure_index(c);
            }
        }
    }

    /// Total number of live tuples across relations.
    pub fn total_rows(&self) -> usize {
        self.relations.iter().map(Relation::live_count).sum()
    }

    /// Rows ever inserted into `rel` (live and tombstoned) — the bound for
    /// row-indexed structures such as [`State`] bitsets.
    pub fn rows(&self, rel: RelId) -> usize {
        self.relations[rel.idx()].num_rows()
    }

    /// Live tuples in `rel`.
    pub fn live_rows(&self, rel: RelId) -> usize {
        self.relations[rel.idx()].live_count()
    }

    /// A fresh [`State`] in which every inserted tuple is present and all
    /// delta relations are empty (stage/step/end time `t = 0`).
    pub fn initial_state(&self) -> State {
        State::initial(self)
    }

    /// Iterate every live tuple id of `rel`.
    pub fn tuple_ids(&self, rel: RelId) -> impl Iterator<Item = TupleId> + '_ {
        self.relations[rel.idx()]
            .live_rows()
            .map(move |row| TupleId::new(rel, row))
    }

    /// Iterate every live tuple id in the instance. Allocation-free:
    /// callers like the stability check hit this once per round.
    pub fn all_tuple_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.relations.iter().enumerate().flat_map(|(i, r)| {
            let rel = RelId(i as u16);
            r.live_rows().map(move |row| TupleId::new(rel, row))
        })
    }

    /// Render `tid` as `Relation(v1, …, vn)` for messages and examples.
    pub fn display_tuple(&self, tid: TupleId) -> String {
        format!("{}{}", self.schema.rel(tid.rel).name, self.tuple(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn grant_instance() -> Instance {
        let mut s = Schema::new();
        s.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
        let mut db = Instance::new(s);
        db.insert_values("Grant", [Value::Int(1), Value::str("NSF")])
            .unwrap();
        db.insert_values("Grant", [Value::Int(2), Value::str("ERC")])
            .unwrap();
        db
    }

    #[test]
    fn insert_and_fetch() {
        let db = grant_instance();
        let rel = db.schema().rel_id("Grant").unwrap();
        assert_eq!(db.rows(rel), 2);
        let tid = TupleId::new(rel, 1);
        assert_eq!(db.tuple(tid).get(1), &Value::str("ERC"));
        assert_eq!(db.display_tuple(tid), "Grant(2, ERC)");
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let mut db = grant_instance();
        assert!(db.insert_values("Nope", [Value::Int(1)]).is_err());
    }

    #[test]
    fn find_round_trips() {
        let db = grant_instance();
        let rel = db.schema().rel_id("Grant").unwrap();
        let t = Tuple::new(vec![Value::Int(2), Value::str("ERC")]);
        assert_eq!(db.find(rel, &t), Some(TupleId::new(rel, 1)));
    }

    #[test]
    fn all_tuple_ids_covers_everything() {
        let db = grant_instance();
        assert_eq!(db.all_tuple_ids().count(), db.total_rows());
    }

    #[test]
    fn initial_state_sees_all_tuples() {
        let db = grant_instance();
        let st = db.initial_state();
        let rel = db.schema().rel_id("Grant").unwrap();
        assert_eq!(st.present_count(rel), 2);
        assert_eq!(st.delta_count(rel), 0);
    }

    #[test]
    fn delete_tuples_batch_and_counts() {
        let mut db = grant_instance();
        let rel = db.schema().rel_id("Grant").unwrap();
        db.ensure_composite_index(rel, &[0]);
        let erc = TupleId::new(rel, 1);
        assert_eq!(db.delete_tuples([erc]).unwrap(), 1);
        assert_eq!(db.delete_tuples([erc]).unwrap(), 0, "already dead");
        assert_eq!(db.total_rows(), 1);
        assert_eq!(db.rows(rel), 2, "storage keeps the tombstone");
        assert!(!db.is_live(erc));
        assert_eq!(db.all_tuple_ids().count(), 1);
        assert_eq!(
            db.relation(rel).lookup(0, &Value::Int(2)).unwrap(),
            &[] as &[u32]
        );
        // Fresh states no longer see the deleted tuple, in any view.
        let st = db.initial_state();
        assert!(!st.is_present(erc));
        assert_eq!(st.present_count(rel), 1);
    }

    #[test]
    fn restore_tuples_round_trips_instance_equality() {
        let mut db = grant_instance();
        let rel = db.schema().rel_id("Grant").unwrap();
        db.ensure_composite_index(rel, &[1]);
        let before = db.clone();
        let ids = [TupleId::new(rel, 0), TupleId::new(rel, 1)];
        assert_eq!(db.delete_tuples(ids).unwrap(), 2);
        assert_ne!(db, before);
        assert_eq!(db.restore_tuples(ids).unwrap(), 2);
        assert_eq!(db, before, "tuple ids, indexes and live bits restored");
    }

    #[test]
    fn journal_records_net_changes_and_ignores_dedup_hits() {
        let mut db = grant_instance();
        let rel = db.schema().rel_id("Grant").unwrap();
        let cursor = db.journal().head();
        // Dedup hit: no journal entry.
        db.insert_values("Grant", [Value::Int(1), Value::str("NSF")])
            .unwrap();
        assert!(db.changes_since(cursor).unwrap().is_empty());
        // Fresh insert + delete + restore cycle nets out to one insert.
        let tid = db
            .insert_values("Grant", [Value::Int(3), Value::str("DFG")])
            .unwrap();
        let erc = TupleId::new(rel, 1);
        db.delete_tuples([erc]).unwrap();
        db.restore_tuples([erc]).unwrap();
        let batch = db.changes_since(cursor).unwrap();
        assert_eq!(batch.inserted, vec![tid]);
        assert!(batch.deleted.is_empty());
        // Truncation invalidates the old cursor but not the new one.
        let now = db.journal().head();
        db.truncate_journal_before(now);
        assert!(db.changes_since(cursor).is_none());
        assert!(db.changes_since(now).unwrap().is_empty());
    }

    #[test]
    fn journal_is_not_part_of_instance_equality() {
        let mut a = grant_instance();
        let b = a.clone();
        let rel = a.schema().rel_id("Grant").unwrap();
        let erc = TupleId::new(rel, 1);
        a.delete_tuples([erc]).unwrap();
        a.restore_tuples([erc]).unwrap();
        assert_eq!(a, b, "same data, different journals");
    }

    #[test]
    fn compact_preserves_behavior_and_resets_dead_ratio_accounting() {
        let mut db = grant_instance();
        let rel = db.schema().rel_id("Grant").unwrap();
        db.ensure_composite_index(rel, &[0]);
        db.ensure_composite_index(rel, &[0, 1]);
        for i in 10..20 {
            db.insert_values("Grant", [Value::Int(i), Value::str("X")])
                .unwrap();
        }
        let doomed: Vec<TupleId> = (2..12).map(|row| TupleId::new(rel, row)).collect();
        db.delete_tuples(doomed.iter().copied()).unwrap();
        assert!(db.dead_ratio() > 0.5);
        let before = db.clone();
        assert_eq!(db.compact(0.5), 1);
        assert_eq!(db, before, "compaction is invisible to readers");
        assert!(db.indexes_consistent());
        assert_eq!(db.compact(2.0), 0, "threshold above 1 never triggers");
    }

    #[test]
    fn out_of_range_ids_are_errors_and_batches_are_atomic() {
        let mut db = grant_instance();
        let rel = db.schema().rel_id("Grant").unwrap();
        let bogus = TupleId::new(rel, 99);
        let valid = TupleId::new(rel, 0);
        let before = db.clone();
        // A bad id anywhere in the batch rejects the whole batch — the
        // valid prefix must NOT have been deleted.
        assert!(matches!(
            db.delete_tuples([valid, bogus]),
            Err(StorageError::UnknownTuple { .. })
        ));
        assert_eq!(db, before, "failed delete batch leaves no trace");
        assert!(matches!(
            db.restore_tuples([valid, bogus]),
            Err(StorageError::UnknownTuple { .. })
        ));
        assert_eq!(db, before, "failed restore batch leaves no trace");
    }
}

//! The extensional database instance.

use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::{RelId, Schema};
use crate::state::State;
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;

/// A database instance: a [`Schema`] plus one [`Relation`] store per declared
/// relation.
///
/// An `Instance` is the immutable substrate of every repair computation; the
/// mutable part (presence bits and delta membership) lives in [`State`]. This
/// split lets the four semantics of the paper evaluate over the same data
/// without copying tuples.
#[derive(Clone, Debug)]
pub struct Instance {
    schema: Schema,
    relations: Vec<Relation>,
}

impl Instance {
    /// Fresh instance for `schema`.
    pub fn new(schema: Schema) -> Instance {
        let relations = schema
            .iter()
            .map(|(_, rs)| Relation::new(rs.arity()))
            .collect();
        Instance { schema, relations }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Storage of relation `rel`.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.idx()]
    }

    /// Insert a tuple (validated against the schema); returns its id.
    pub fn insert(&mut self, rel: RelId, t: Tuple) -> Result<TupleId, StorageError> {
        let rs = self.schema.rel(rel);
        let (row, _) = self.relations[rel.idx()].insert_checked(rs, t)?;
        Ok(TupleId::new(rel, row))
    }

    /// Insert by relation name with `Into<Value>` items.
    pub fn insert_values<V: Into<Value>>(
        &mut self,
        rel_name: &str,
        values: impl IntoIterator<Item = V>,
    ) -> Result<TupleId, StorageError> {
        let rel = self.schema.require(rel_name)?;
        let t = Tuple::new(values.into_iter().map(Into::into).collect::<Vec<_>>());
        self.insert(rel, t)
    }

    /// The tuple behind `tid`.
    pub fn tuple(&self, tid: TupleId) -> &Tuple {
        self.relations[tid.rel.idx()].tuple(tid.row)
    }

    /// Find the id of `t` in `rel` (whether or not any state deleted it).
    pub fn find(&self, rel: RelId, t: &Tuple) -> Option<TupleId> {
        self.relations[rel.idx()]
            .find(t)
            .map(|row| TupleId::new(rel, row))
    }

    /// Build the per-column hash index for `rel.col`.
    pub fn ensure_index(&mut self, rel: RelId, col: usize) {
        self.relations[rel.idx()].ensure_index(col);
    }

    /// Build (or fetch) the composite index of `rel` over `cols` (strictly
    /// ascending); returns the id to pass to [`Relation::probe`].
    pub fn ensure_composite_index(&mut self, rel: RelId, cols: &[usize]) -> crate::IndexId {
        self.relations[rel.idx()].ensure_composite_index(cols)
    }

    /// Build every index on every column (used by benches and tests; the
    /// evaluator requests only the indexes its plans need).
    pub fn index_all(&mut self) {
        for r in &mut self.relations {
            let arity = r.iter().next().map(|(_, t)| t.arity()).unwrap_or(0);
            for c in 0..arity {
                r.ensure_index(c);
            }
        }
    }

    /// Total number of rows ever inserted across relations.
    pub fn total_rows(&self) -> usize {
        self.relations.iter().map(Relation::num_rows).sum()
    }

    /// Rows ever inserted into `rel`.
    pub fn rows(&self, rel: RelId) -> usize {
        self.relations[rel.idx()].num_rows()
    }

    /// A fresh [`State`] in which every inserted tuple is present and all
    /// delta relations are empty (stage/step/end time `t = 0`).
    pub fn initial_state(&self) -> State {
        State::initial(self)
    }

    /// Iterate every tuple id of `rel`.
    pub fn tuple_ids(&self, rel: RelId) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.relations[rel.idx()].num_rows() as u32).map(move |row| TupleId::new(rel, row))
    }

    /// Iterate every tuple id in the instance. Allocation-free: callers
    /// like the stability check hit this once per round.
    pub fn all_tuple_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.relations.iter().enumerate().flat_map(|(i, r)| {
            let rel = RelId(i as u16);
            (0..r.num_rows() as u32).map(move |row| TupleId::new(rel, row))
        })
    }

    /// Render `tid` as `Relation(v1, …, vn)` for messages and examples.
    pub fn display_tuple(&self, tid: TupleId) -> String {
        format!("{}{}", self.schema.rel(tid.rel).name, self.tuple(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn grant_instance() -> Instance {
        let mut s = Schema::new();
        s.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
        let mut db = Instance::new(s);
        db.insert_values("Grant", [Value::Int(1), Value::str("NSF")])
            .unwrap();
        db.insert_values("Grant", [Value::Int(2), Value::str("ERC")])
            .unwrap();
        db
    }

    #[test]
    fn insert_and_fetch() {
        let db = grant_instance();
        let rel = db.schema().rel_id("Grant").unwrap();
        assert_eq!(db.rows(rel), 2);
        let tid = TupleId::new(rel, 1);
        assert_eq!(db.tuple(tid).get(1), &Value::str("ERC"));
        assert_eq!(db.display_tuple(tid), "Grant(2, ERC)");
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let mut db = grant_instance();
        assert!(db.insert_values("Nope", [Value::Int(1)]).is_err());
    }

    #[test]
    fn find_round_trips() {
        let db = grant_instance();
        let rel = db.schema().rel_id("Grant").unwrap();
        let t = Tuple::new(vec![Value::Int(2), Value::str("ERC")]);
        assert_eq!(db.find(rel, &t), Some(TupleId::new(rel, 1)));
    }

    #[test]
    fn all_tuple_ids_covers_everything() {
        let db = grant_instance();
        assert_eq!(db.all_tuple_ids().count(), db.total_rows());
    }

    #[test]
    fn initial_state_sees_all_tuples() {
        let db = grant_instance();
        let st = db.initial_state();
        let rel = db.schema().rel_id("Grant").unwrap();
        assert_eq!(st.present_count(rel), 2);
        assert_eq!(st.delta_count(rel), 0);
    }
}

//! Process-wide string interning.
//!
//! All string values in the engine are interned once and referred to by a
//! 4-byte [`Sym`]. Interning makes tuple equality, hashing and join probes on
//! string columns as cheap as on integer columns, which matters because the
//! MAS workload joins on author/organization names.
//!
//! The table leaks the interned strings (via `Box::leak`) so `Sym::as_str`
//! can hand out `&'static str`. The leak is bounded by the number of
//! *distinct* strings ever interned — for the workloads in this repository
//! that is a few hundred thousand short names.
//!
//! **Read path.** `Sym::as_str` sits under [`crate::value::Value`]'s
//! lexicographic ordering, so comparison-heavy denial constraints call it
//! once per comparison; taking the intern mutex there serializes otherwise
//! independent evaluation threads. Reads therefore go through a lock-free
//! append-only table: a spine of doubling buckets (bucket `b` holds
//! `64 << b` entries, so 27 buckets cover the full `u32` id space without
//! ever moving an entry), each entry an `AtomicPtr` to a leaked
//! `&'static str` cell. Writers (interning, rare) still serialize on the
//! mutex and publish each entry with `Release` before the `Sym` escapes;
//! readers do two dependent `Acquire` loads and never block.

use crate::hash::FxHashMap;
use std::fmt;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, compare and hash.
///
/// Ordering of `Sym` values is *interning order*, not lexicographic; use
/// [`Sym::as_str`] when lexicographic comparison is needed (the engine's
/// [`crate::value::Value`] ordering does this).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

/// Capacity of bucket 0; bucket `b` holds `FIRST_BUCKET << b` entries.
const FIRST_BUCKET: usize = 64;
/// `64 * (2^27 - 1) > u32::MAX`: 27 buckets cover every possible id.
const NUM_BUCKETS: usize = 27;

/// Bucket spine of the lock-free read table. A bucket, once allocated, is a
/// leaked slice of `AtomicPtr<&'static str>` cells and never moves.
struct ReadTable {
    buckets: [AtomicPtr<AtomicPtr<&'static str>>; NUM_BUCKETS],
}

/// `(bucket, offset, bucket_len)` of entry `id`.
#[inline]
fn locate(id: u32) -> (usize, usize, usize) {
    let v = id as usize / FIRST_BUCKET + 1;
    let b = (usize::BITS - 1 - v.leading_zeros()) as usize;
    let start = FIRST_BUCKET * ((1 << b) - 1);
    (b, id as usize - start, FIRST_BUCKET << b)
}

impl ReadTable {
    fn new() -> ReadTable {
        ReadTable {
            buckets: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }

    /// Publish `s` as entry `id`. Called only under the intern mutex (one
    /// writer at a time), *before* the `Sym` is returned to any caller.
    fn publish(&self, id: u32, s: &'static str) {
        let (b, off, len) = locate(id);
        let mut bucket = self.buckets[b].load(Ordering::Acquire);
        if bucket.is_null() {
            let fresh: Box<[AtomicPtr<&'static str>]> = (0..len)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect();
            bucket = Box::leak(fresh).as_mut_ptr();
            self.buckets[b].store(bucket, Ordering::Release);
        }
        let cell_value = Box::into_raw(Box::new(s));
        // SAFETY: `off < len` by `locate`, and the bucket is a live leaked
        // slice of `len` cells.
        unsafe { (*bucket.add(off)).store(cell_value, Ordering::Release) };
    }

    /// Read entry `id`. Sound only for ids previously returned by
    /// [`Sym::new`]: the `Release` stores in `publish` happen-before the
    /// `Sym` ever escapes the interner.
    #[inline]
    fn read(&self, id: u32) -> &'static str {
        let (b, off, _) = locate(id);
        let bucket = self.buckets[b].load(Ordering::Acquire);
        debug_assert!(!bucket.is_null(), "read of unpublished Sym");
        // SAFETY: the bucket and the cell were published with `Release`
        // before this id existed as a `Sym`; the cell pointer is non-null
        // and points at a leaked `&'static str`.
        unsafe { *(*bucket.add(off)).load(Ordering::Acquire) }
    }
}

struct Table {
    map: FxHashMap<&'static str, u32>,
    len: u32,
}

struct Interner {
    writer: Mutex<Table>,
    reader: ReadTable,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        writer: Mutex::new(Table {
            map: FxHashMap::default(),
            len: 0,
        }),
        reader: ReadTable::new(),
    })
}

impl Sym {
    /// Intern `s`, returning its symbol. Idempotent.
    pub fn new(s: &str) -> Sym {
        let it = interner();
        let mut t = it.writer.lock().expect("interner poisoned");
        if let Some(&id) = t.map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = t.len;
        t.len = id.checked_add(1).expect("interner overflow");
        it.reader.publish(id, leaked);
        t.map.insert(leaked, id);
        Sym(id)
    }

    /// The interned string. Lock-free: a `Sym` only exists after its entry
    /// was published, so this never observes a missing slot.
    #[inline]
    pub fn as_str(self) -> &'static str {
        interner().reader.read(self.0)
    }

    /// The raw symbol id (stable within one process run).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("hello");
        let b = Sym::new("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Sym::new("alpha-x");
        let b = Sym::new("beta-x");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha-x");
        assert_eq!(b.as_str(), "beta-x");
    }

    #[test]
    fn display_round_trips() {
        let s = Sym::new("ERC");
        assert_eq!(s.to_string(), "ERC");
    }

    #[test]
    fn empty_string_interns() {
        let s = Sym::new("");
        assert_eq!(s.as_str(), "");
    }

    #[test]
    fn locate_covers_bucket_boundaries() {
        assert_eq!(locate(0), (0, 0, 64));
        assert_eq!(locate(63), (0, 63, 64));
        assert_eq!(locate(64), (1, 0, 128));
        assert_eq!(locate(191), (1, 127, 128));
        assert_eq!(locate(192), (2, 0, 256));
        let (b, off, len) = locate(u32::MAX);
        assert!(b < NUM_BUCKETS);
        assert!(off < len);
    }

    #[test]
    fn reads_cross_bucket_boundaries() {
        // Intern enough distinct strings to spill into later buckets; every
        // id must read back its own string.
        let syms: Vec<(Sym, String)> = (0..500)
            .map(|i| {
                let s = format!("bucket-spill-{i}");
                (Sym::new(&s), s)
            })
            .collect();
        for (sym, s) in &syms {
            assert_eq!(sym.as_str(), s);
        }
    }

    #[test]
    fn concurrent_reads_and_interns() {
        let base: Vec<Sym> = (0..64).map(|i| Sym::new(&format!("conc-{i}"))).collect();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let base = &base;
                scope.spawn(move || {
                    for round in 0..200 {
                        for (i, s) in base.iter().enumerate() {
                            assert_eq!(s.as_str(), format!("conc-{i}"));
                        }
                        let fresh = Sym::new(&format!("conc-new-{t}-{round}"));
                        assert_eq!(fresh.as_str(), format!("conc-new-{t}-{round}"));
                    }
                });
            }
        });
    }
}

//! Process-wide string interning.
//!
//! All string values in the engine are interned once and referred to by a
//! 4-byte [`Sym`]. Interning makes tuple equality, hashing and join probes on
//! string columns as cheap as on integer columns, which matters because the
//! MAS workload joins on author/organization names.
//!
//! The table leaks the interned strings (via `Box::leak`) so `Sym::as_str`
//! can hand out `&'static str` without holding any lock. The leak is bounded
//! by the number of *distinct* strings ever interned — for the workloads in
//! this repository that is a few hundred thousand short names.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, compare and hash.
///
/// Ordering of `Sym` values is *interning order*, not lexicographic; use
/// [`Sym::as_str`] when lexicographic comparison is needed (the engine's
/// [`crate::value::Value`] ordering does this).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Table {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn table() -> &'static Mutex<Table> {
    static TABLE: OnceLock<Mutex<Table>> = OnceLock::new();
    TABLE.get_or_init(|| {
        Mutex::new(Table {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Sym {
    /// Intern `s`, returning its symbol. Idempotent.
    pub fn new(s: &str) -> Sym {
        let mut t = table().lock().expect("interner poisoned");
        if let Some(&id) = t.map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(t.strings.len()).expect("interner overflow");
        t.strings.push(leaked);
        t.map.insert(leaked, id);
        Sym(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        let t = table().lock().expect("interner poisoned");
        t.strings[self.0 as usize]
    }

    /// The raw symbol id (stable within one process run).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("hello");
        let b = Sym::new("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Sym::new("alpha-x");
        let b = Sym::new("beta-x");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha-x");
        assert_eq!(b.as_str(), "beta-x");
    }

    #[test]
    fn display_round_trips() {
        let s = Sym::new("ERC");
        assert_eq!(s.to_string(), "ERC");
    }

    #[test]
    fn empty_string_interns() {
        let s = Sym::new("");
        assert_eq!(s.as_str(), "");
    }
}

//! The instance mutation journal: what changed, for whom.
//!
//! Every durable mutation of an [`crate::Instance`] — a fresh insert, a
//! tombstone, a revival — appends one [`JournalEntry`]. Consumers that
//! maintain state derived from the instance (the incremental repair engine,
//! caches of provenance formulas) remember the journal *cursor* they last
//! synchronized at and ask for [`MutationJournal::changes_since`] that
//! cursor: the answer is a **net** [`DeltaBatch`] — tuples that are live now
//! but were not at the cursor, and tuples that were live then but are gone
//! now. Flickers inside the range (insert then delete, delete then restore)
//! cancel out, so consumers never see work that has no net effect.
//!
//! The journal is bounded: entries older than every consumer are dropped by
//! [`MutationJournal::truncate_before`] (the session does this after each
//! drain), and a hard cap evicts the oldest entries regardless, so an
//! instance without consumers cannot leak. A consumer whose cursor falls
//! behind the retained window gets `None` from `changes_since` and must
//! rebuild from scratch — the documented fallback of the incremental
//! engine.

use crate::tuple::TupleId;
use std::collections::VecDeque;

/// What a journal entry records about one tuple.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationKind {
    /// A fresh row was inserted (it did not exist before).
    Insert,
    /// A live row was tombstoned.
    Delete,
    /// A tombstoned row was revived.
    Restore,
}

/// One recorded mutation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JournalEntry {
    /// The tuple that changed.
    pub tid: TupleId,
    /// How it changed.
    pub kind: MutationKind,
}

/// The net change between two journal cursors.
///
/// Both sides are sorted ascending and disjoint; a tuple whose liveness is
/// the same at both cursors appears in neither.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    /// Tuples live now that were not live at the cursor (fresh inserts and
    /// net revivals).
    pub inserted: Vec<TupleId>,
    /// Tuples live at the cursor that are tombstoned now.
    pub deleted: Vec<TupleId>,
}

impl DeltaBatch {
    /// No net change?
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Total net changes, both directions.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }
}

/// Append-only record of instance mutations with a bounded retention
/// window. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct MutationJournal {
    /// Total entries ever recorded; the cursor returned to new consumers.
    head: u64,
    /// Cursor of the oldest retained entry.
    tail: u64,
    events: VecDeque<JournalEntry>,
    cap: usize,
}

impl Default for MutationJournal {
    fn default() -> MutationJournal {
        MutationJournal::with_capacity(MutationJournal::DEFAULT_CAP)
    }
}

impl MutationJournal {
    /// Default retention cap: enough for any realistic sync gap, small
    /// enough (a few MB) that an unconsumed journal cannot leak.
    pub const DEFAULT_CAP: usize = 1 << 18;

    /// Journal retaining at most `cap` entries.
    pub fn with_capacity(cap: usize) -> MutationJournal {
        MutationJournal {
            head: 0,
            tail: 0,
            events: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Journal resuming at `cursor`: an empty window with `head == tail ==
    /// cursor`. Recovery uses this so the persisted cursor stays comparable
    /// to cursors handed out before the restart.
    pub fn resumed_at(cursor: u64) -> MutationJournal {
        MutationJournal {
            head: cursor,
            tail: cursor,
            events: VecDeque::new(),
            cap: MutationJournal::DEFAULT_CAP,
        }
    }

    /// Change the retention cap, evicting oldest entries if over it.
    pub fn set_capacity(&mut self, cap: usize) {
        self.cap = cap.max(1);
        while self.events.len() > self.cap {
            self.events.pop_front();
            self.tail += 1;
        }
    }

    /// The cursor one past the newest entry. A consumer that synchronizes
    /// *now* should remember this value.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// The cursor of the oldest retained entry; `changes_since` answers
    /// cursors in `tail()..=head()` only.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// No retained entries?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Record one mutation, evicting the oldest entry when the cap is hit.
    pub fn record(&mut self, kind: MutationKind, tid: TupleId) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.tail += 1;
        }
        self.events.push_back(JournalEntry { tid, kind });
        self.head += 1;
    }

    /// Drop all entries before `cursor` (no-op when already past it).
    pub fn truncate_before(&mut self, cursor: u64) {
        let cursor = cursor.min(self.head);
        while self.tail < cursor {
            self.events.pop_front();
            self.tail += 1;
        }
    }

    /// The raw retained entries from `cursor` to now, **in recording
    /// order** (no flicker coalescing), or `None` when `cursor` falls
    /// outside the retained window. The write-ahead log drains the journal
    /// through this: replaying the raw sequence reproduces the exact row
    /// ids, whereas a net batch would not.
    pub fn entries_since(&self, cursor: u64) -> Option<impl Iterator<Item = JournalEntry> + '_> {
        if cursor < self.tail || cursor > self.head {
            return None;
        }
        let start = (cursor - self.tail) as usize;
        Some(self.events.iter().skip(start).copied())
    }

    /// The net change from `cursor` to now, or `None` when `cursor` falls
    /// outside the retained window (history truncated, or a cursor from
    /// some other journal) — the consumer must rebuild from scratch.
    pub fn changes_since(&self, cursor: u64) -> Option<DeltaBatch> {
        if cursor < self.tail || cursor > self.head {
            return None;
        }
        // Per tuple: was it live at `cursor`, is it live now? The first
        // entry for a tuple reveals its prior state (you can only delete a
        // live tuple, only insert an absent one, only restore a dead one);
        // the last entry gives the current state.
        let mut net: crate::FxHashMap<TupleId, (bool, bool)> = crate::FxHashMap::default();
        let start = (cursor - self.tail) as usize;
        for e in self.events.iter().skip(start) {
            let live_now = !matches!(e.kind, MutationKind::Delete);
            net.entry(e.tid)
                .or_insert((matches!(e.kind, MutationKind::Delete), live_now))
                .1 = live_now;
        }
        let mut batch = DeltaBatch::default();
        for (tid, (was_live, live_now)) in net {
            match (was_live, live_now) {
                (false, true) => batch.inserted.push(tid),
                (true, false) => batch.deleted.push(tid),
                _ => {}
            }
        }
        batch.inserted.sort_unstable();
        batch.deleted.sort_unstable();
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;

    fn t(row: u32) -> TupleId {
        TupleId::new(RelId(0), row)
    }

    #[test]
    fn net_changes_coalesce_flickers() {
        let mut j = MutationJournal::default();
        let c0 = j.head();
        j.record(MutationKind::Insert, t(0)); // net insert
        j.record(MutationKind::Delete, t(1)); // net delete
        j.record(MutationKind::Insert, t(2)); // insert…
        j.record(MutationKind::Delete, t(2)); // …then delete: net nothing
        j.record(MutationKind::Delete, t(3)); // delete…
        j.record(MutationKind::Restore, t(3)); // …then restore: net nothing
        let b = j.changes_since(c0).unwrap();
        assert_eq!(b.inserted, vec![t(0)]);
        assert_eq!(b.deleted, vec![t(1)]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn restores_count_as_insertions() {
        let mut j = MutationJournal::default();
        let c0 = j.head();
        j.record(MutationKind::Restore, t(7));
        let b = j.changes_since(c0).unwrap();
        assert_eq!(b.inserted, vec![t(7)]);
        assert!(b.deleted.is_empty());
    }

    #[test]
    fn mid_stream_cursors_see_only_later_entries() {
        let mut j = MutationJournal::default();
        j.record(MutationKind::Insert, t(0));
        let mid = j.head();
        j.record(MutationKind::Insert, t(1));
        let b = j.changes_since(mid).unwrap();
        assert_eq!(b.inserted, vec![t(1)]);
        assert!(j.changes_since(j.head()).unwrap().is_empty());
    }

    #[test]
    fn truncation_invalidates_old_cursors() {
        let mut j = MutationJournal::default();
        let c0 = j.head();
        j.record(MutationKind::Insert, t(0));
        let c1 = j.head();
        j.record(MutationKind::Insert, t(1));
        j.truncate_before(c1);
        assert!(j.changes_since(c0).is_none(), "history before c1 is gone");
        assert_eq!(j.changes_since(c1).unwrap().inserted, vec![t(1)]);
        assert!(j.changes_since(j.head() + 1).is_none(), "future cursor");
    }

    #[test]
    fn cap_evicts_oldest() {
        let mut j = MutationJournal::with_capacity(2);
        let c0 = j.head();
        for i in 0..5 {
            j.record(MutationKind::Insert, t(i));
        }
        assert_eq!(j.len(), 2);
        assert!(j.changes_since(c0).is_none(), "evicted history");
        assert_eq!(j.changes_since(j.tail()).unwrap().inserted.len(), 2);
    }

    #[test]
    fn cursor_beyond_head_is_rejected_not_clamped() {
        let mut j = MutationJournal::default();
        j.record(MutationKind::Insert, t(0));
        for ahead in [1u64, 7, u64::MAX - j.head()] {
            assert!(j.changes_since(j.head() + ahead).is_none());
            assert!(j.entries_since(j.head() + ahead).is_none());
        }
        // head() itself is the newest valid cursor and yields emptiness.
        assert!(j.changes_since(j.head()).unwrap().is_empty());
        assert_eq!(j.entries_since(j.head()).unwrap().count(), 0);
    }

    #[test]
    fn cursor_inside_truncated_window_is_rejected() {
        let mut j = MutationJournal::default();
        let c0 = j.head();
        for i in 0..6 {
            j.record(MutationKind::Insert, t(i));
        }
        let mid = c0 + 3; // strictly between old tail and the new tail below
        j.truncate_before(c0 + 4);
        assert!(mid < j.tail());
        assert!(
            j.changes_since(mid).is_none(),
            "cursor points at dropped history"
        );
        assert!(j.entries_since(mid).is_none());
        // The surviving window still answers.
        assert_eq!(
            j.changes_since(j.tail()).unwrap().inserted,
            vec![t(4), t(5)]
        );
    }

    #[test]
    fn truncate_before_past_tail_clamps_to_head() {
        let mut j = MutationJournal::default();
        j.record(MutationKind::Insert, t(0));
        j.record(MutationKind::Delete, t(1));
        let head = j.head();
        j.truncate_before(head + 100);
        assert_eq!(j.tail(), head, "clamped to head, not beyond");
        assert!(j.is_empty());
        // The journal keeps working: head is still a valid cursor…
        assert!(j.changes_since(head).unwrap().is_empty());
        j.record(MutationKind::Restore, t(1));
        // …and sees entries recorded after the over-eager truncation.
        assert_eq!(j.changes_since(head).unwrap().inserted, vec![t(1)]);
    }

    #[test]
    fn flicker_cancellation_across_truncation_boundary() {
        // The two halves of a flicker (insert then delete of t(0)) land on
        // opposite sides of a truncation. The retained half must report the
        // net change relative to the *cursor* state, inferring prior
        // liveness from the first retained entry — not resurrect the
        // cancelled pair.
        let mut j = MutationJournal::default();
        j.record(MutationKind::Insert, t(0));
        let cut = j.head();
        j.record(MutationKind::Delete, t(0)); // flicker completes after the cut
        j.record(MutationKind::Insert, t(1));
        j.truncate_before(cut);
        let b = j.changes_since(cut).unwrap();
        // At `cut` t(0) was live, so the retained delete is a net delete.
        assert_eq!(b.deleted, vec![t(0)]);
        assert_eq!(b.inserted, vec![t(1)]);
        // A full flicker inside the retained window still cancels.
        j.record(MutationKind::Restore, t(0));
        let b = j.changes_since(cut).unwrap();
        assert_eq!(b.deleted, Vec::<TupleId>::new());
        assert_eq!(b.inserted, vec![t(1)]);
    }

    #[test]
    fn entries_since_preserves_raw_order_and_flickers() {
        let mut j = MutationJournal::default();
        let c0 = j.head();
        j.record(MutationKind::Insert, t(2));
        j.record(MutationKind::Delete, t(2));
        j.record(MutationKind::Restore, t(2));
        let kinds: Vec<MutationKind> = j.entries_since(c0).unwrap().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                MutationKind::Insert,
                MutationKind::Delete,
                MutationKind::Restore
            ],
            "raw drain must not coalesce"
        );
        let mid = c0 + 1;
        assert_eq!(j.entries_since(mid).unwrap().count(), 2);
    }

    #[test]
    fn delete_then_reinsert_of_same_id_nets_out() {
        // An undo-style cycle seen in one drain: delete then restore the
        // same id, interleaved with an unrelated insert.
        let mut j = MutationJournal::default();
        let c0 = j.head();
        j.record(MutationKind::Delete, t(4));
        j.record(MutationKind::Insert, t(9));
        j.record(MutationKind::Restore, t(4));
        let b = j.changes_since(c0).unwrap();
        assert_eq!(b.inserted, vec![t(9)]);
        assert!(b.deleted.is_empty());
    }
}

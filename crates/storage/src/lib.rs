//! # storage — in-memory relational substrate
//!
//! The storage layer that replaces PostgreSQL in the original prototype of
//! *"On Multiple Semantics for Declarative Database Repairs"* (SIGMOD 2020).
//!
//! The design is split in two:
//!
//! * [`Instance`] — the extensional database. An append-only, deduplicated
//!   tuple store with per-column hash indexes. Tuples are identified by a
//!   stable [`TupleId`] that never changes once assigned, so provenance and
//!   repair results can refer to tuples across arbitrarily many evaluation
//!   states.
//! * [`State`] — a lightweight view over an instance holding two bitsets per
//!   relation: which tuples are still *present* in `R_i`, and which tuples are
//!   members of the delta relation `Δ_i`. Cloning a `State` is O(#tuples/64),
//!   which is what makes evaluating four different semantics over the same
//!   124K-tuple instance cheap.
//!
//! The separation mirrors the paper's model (Section 3.1): a delta rule head
//! `Δ_i(X)` always has the atom `R_i(X)` in its body, hence every delta tuple
//! *is* an existing base tuple and `Δ_i` can be represented as a set of base
//! tuple ids rather than a second tuple store.

pub mod bitset;
pub mod disk;
pub mod error;
pub mod hash;
pub mod instance;
pub mod intern;
pub mod journal;
pub mod relation;
pub mod schema;
pub mod state;
pub mod stats;
pub mod tsv;
pub mod tuple;
pub mod value;

pub use bitset::BitSet;
pub use disk::{
    DiskOptions, DiskStore, Fault, FaultIo, FaultMode, FsyncPolicy, HistoryEntry, MemIo,
    RecoveryReport, SessionMeta, StdIo, StorageIo, WalRecord,
};
pub use error::StorageError;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use instance::Instance;
pub use intern::Sym;
pub use journal::{DeltaBatch, JournalEntry, MutationJournal, MutationKind};
pub use relation::{IndexId, Relation};
pub use schema::{Attr, AttrType, RelId, RelationSchema, Schema};
pub use state::State;
pub use stats::ColumnStats;
pub use tuple::{Tuple, TupleId};
pub use value::Value;

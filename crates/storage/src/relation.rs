//! Deduplicated tuple storage with composite hash indexes.
//!
//! Rows are appended and never moved, so [`crate::TupleId`]s stay stable
//! forever; deletion marks a row *dead* (a tombstone) and removes it from
//! the dedup map and every index posting list incrementally — no rebuild.
//! Dead rows can later be revived by [`Relation::restore_row`] (the undo
//! path of an applied repair).

use crate::bitset::BitSet;
use crate::error::StorageError;
use crate::hash::FxHashMap;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A hash index over one set of columns.
///
/// Keys are the tuple's values at `cols` (ascending column order); the entry
/// lists every live row holding that key, in ascending row order — the
/// property the evaluator's deterministic enumeration relies on. Removal and
/// revival keep the order by binary-searching the posting list.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CompositeIndex {
    /// Indexed columns, strictly ascending.
    cols: Box<[usize]>,
    /// Key (values at `cols`) → live rows, ascending.
    map: FxHashMap<Box<[Value]>, Vec<u32>>,
}

impl CompositeIndex {
    fn key_of(&self, t: &Tuple) -> Box<[Value]> {
        self.cols.iter().map(|&c| *t.get(c)).collect()
    }

    fn add(&mut self, row: u32, t: &Tuple) {
        self.map.entry(self.key_of(t)).or_default().push(row);
    }

    /// Insert `row` into the posting list at its sorted position (revival
    /// of a tombstoned row; plain `add` covers append-order inserts).
    fn add_sorted(&mut self, row: u32, t: &Tuple) {
        let rows = self.map.entry(self.key_of(t)).or_default();
        if let Err(pos) = rows.binary_search(&row) {
            rows.insert(pos, row);
        }
    }

    /// Remove `row` from the posting list; drops the entry when it empties
    /// so probing a fully-deleted key costs one lookup, not a scan.
    fn remove(&mut self, row: u32, t: &Tuple) {
        let key = self.key_of(t);
        if let Some(rows) = self.map.get_mut(&key) {
            if let Ok(pos) = rows.binary_search(&row) {
                rows.remove(pos);
            }
            if rows.is_empty() {
                self.map.remove(&key);
            }
        }
    }
}

/// Identifier of a composite index within one [`Relation`], as returned by
/// [`Relation::ensure_composite_index`]. Probe plans store these so lookups
/// skip the columns→index resolution entirely.
pub type IndexId = u32;

/// Storage for one relation.
///
/// Tuples are appended once and never moved; transient *presence* during a
/// repair evaluation is tracked outside this type by [`crate::State`]
/// bitsets, while durable membership (rows never deleted from the instance)
/// lives in the `live` tombstone bitset here. The store deduplicates
/// (relations are sets, per Section 2 of the paper) and maintains composite
/// hash indexes — requested by the evaluator's probe plans, one per
/// distinct set of bound columns — incrementally on insert, delete and
/// restore.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Relation {
    tuples: Vec<Tuple>,
    dedup: FxHashMap<Tuple, u32>,
    indexes: Vec<CompositeIndex>,
    /// Columns signature → position in `indexes`.
    by_cols: FxHashMap<Box<[usize]>, IndexId>,
    /// One bit per row ever inserted: is the row still a member?
    live: BitSet,
    /// Number of set bits in `live`, maintained incrementally.
    live_count: usize,
}

impl Relation {
    /// Empty storage for a relation of the given arity. (The arity is
    /// implied by the inserted tuples; the parameter is kept for call-site
    /// clarity.)
    pub fn new(_arity: usize) -> Relation {
        Relation::default()
    }

    /// Number of rows ever inserted (live and tombstoned; the bound for
    /// row-indexed structures like [`crate::State`] bitsets).
    pub fn num_rows(&self) -> usize {
        self.tuples.len()
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Is `row` still a member of the relation?
    #[inline]
    pub fn is_live(&self, row: u32) -> bool {
        self.live.get(row as usize)
    }

    /// The live/tombstone bitset, one bit per row ever inserted.
    pub fn live_bits(&self) -> &BitSet {
        &self.live
    }

    /// Iterate the live rows, ascending.
    pub fn live_rows(&self) -> impl Iterator<Item = u32> + '_ {
        self.live.iter_ones().map(|r| r as u32)
    }

    /// The tuple stored at `row`.
    #[inline]
    pub fn tuple(&self, row: u32) -> &Tuple {
        &self.tuples[row as usize]
    }

    /// Insert `t`, returning its row and whether it was new.
    ///
    /// Re-inserting an existing live tuple returns the original row (set
    /// semantics).
    pub fn insert(&mut self, t: Tuple) -> (u32, bool) {
        if let Some(&row) = self.dedup.get(&t) {
            return (row, false);
        }
        let row = u32::try_from(self.tuples.len()).expect("relation too large");
        for idx in &mut self.indexes {
            idx.add(row, &t);
        }
        self.dedup.insert(t.clone(), row);
        self.tuples.push(t);
        self.live.set(row as usize);
        self.live_count += 1;
        (row, true)
    }

    /// Tombstone `row`: drop it from the dedup map and from every composite
    /// index posting list (incremental — no index rebuild). The tuple's
    /// storage and id survive so provenance and repair results referring to
    /// it stay valid. Returns `false` when the row was already dead.
    pub fn remove_row(&mut self, row: u32) -> bool {
        if !self.live.get(row as usize) {
            return false;
        }
        self.live.clear(row as usize);
        self.live_count -= 1;
        let t = &self.tuples[row as usize];
        self.dedup.remove(t);
        for idx in &mut self.indexes {
            idx.remove(row, t);
        }
        true
    }

    /// Revive a tombstoned `row`: re-enter it into the dedup map and every
    /// index at its sorted posting position. Returns `false` when the row is
    /// already live or when an equal live tuple was inserted in the meantime
    /// (reviving it would break set semantics).
    pub fn restore_row(&mut self, row: u32) -> bool {
        if row as usize >= self.tuples.len() || self.live.get(row as usize) {
            return false;
        }
        let t = self.tuples[row as usize].clone();
        if self.dedup.contains_key(&t) {
            return false;
        }
        self.live.set(row as usize);
        self.live_count += 1;
        self.dedup.insert(t.clone(), row);
        for idx in &mut self.indexes {
            idx.add_sorted(row, &t);
        }
        true
    }

    /// Validate `t` against `schema` and insert it.
    pub fn insert_checked(
        &mut self,
        schema: &RelationSchema,
        t: Tuple,
    ) -> Result<(u32, bool), StorageError> {
        if t.arity() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: schema.name.clone(),
                expected: schema.arity(),
                got: t.arity(),
            });
        }
        for (attr, v) in schema.attrs.iter().zip(t.values()) {
            if !attr.ty.admits(v) {
                return Err(StorageError::TypeMismatch {
                    relation: schema.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.ty.name(),
                    got: v.type_name(),
                });
            }
        }
        Ok(self.insert(t))
    }

    /// Row of `t`, if stored.
    pub fn find(&self, t: &Tuple) -> Option<u32> {
        self.dedup.get(t).copied()
    }

    /// Build (or fetch) the composite index over `cols` and return its id.
    ///
    /// `cols` must be strictly ascending. Idempotent: requesting the same
    /// column set twice returns the same id.
    pub fn ensure_composite_index(&mut self, cols: &[usize]) -> IndexId {
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]) && !cols.is_empty(),
            "index columns must be non-empty and strictly ascending"
        );
        if let Some(&id) = self.by_cols.get(cols) {
            return id;
        }
        let mut idx = CompositeIndex {
            cols: cols.into(),
            map: FxHashMap::default(),
        };
        for row in self.live.iter_ones() {
            idx.add(row as u32, &self.tuples[row]);
        }
        let id = u32::try_from(self.indexes.len()).expect("too many indexes");
        self.by_cols.insert(cols.into(), id);
        self.indexes.push(idx);
        id
    }

    /// Rows whose values at the index's columns equal `key`, ascending.
    /// Returns the empty slice when no row matches.
    #[inline]
    pub fn probe(&self, index: IndexId, key: &[Value]) -> &[u32] {
        self.indexes[index as usize]
            .map
            .get(key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Build the single-column hash index for `col` if absent. Convenience
    /// wrapper over [`Relation::ensure_composite_index`] for tools and
    /// tests; the evaluator's probe plans request composite indexes
    /// directly.
    pub fn ensure_index(&mut self, col: usize) {
        self.ensure_composite_index(&[col]);
    }

    /// Is an index over exactly `{col}` built?
    pub fn has_index(&self, col: usize) -> bool {
        self.by_cols.contains_key(&[col][..])
    }

    /// Rows whose column `col` equals `v`, via the single-column index;
    /// `None` when that index has not been built. Single-column
    /// convenience for ad-hoc queries — the evaluator itself resolves
    /// plans to index ids once and calls [`Relation::probe`].
    pub fn lookup(&self, col: usize, v: &Value) -> Option<&[u32]> {
        let &id = self.by_cols.get(&[col][..])?;
        Some(self.probe(id, std::slice::from_ref(v)))
    }

    /// Fraction of ever-inserted rows that are tombstones (`0.0` when no
    /// row was ever inserted).
    pub fn dead_ratio(&self) -> f64 {
        if self.tuples.is_empty() {
            return 0.0;
        }
        (self.tuples.len() - self.live_count) as f64 / self.tuples.len() as f64
    }

    /// Rebuild the dedup map and every composite index from the live rows.
    ///
    /// Incremental removal keeps postings and dedup entries *correct* under
    /// tombstones, but the hash tables themselves only ever grow: capacity
    /// sized for the high-water mark, posting vectors holding freed slack.
    /// Long-lived sessions that mutate continuously call this once the
    /// [`Relation::dead_ratio`] crosses a threshold. Row ids, index ids and
    /// every probe result are unchanged — only the memory layout is rebuilt
    /// — so the operation is invisible to readers, evaluation states and
    /// incremental consumers.
    pub fn compact(&mut self) {
        let mut dedup = FxHashMap::with_capacity_and_hasher(self.live_count, Default::default());
        for idx in &mut self.indexes {
            idx.map = FxHashMap::default();
        }
        for row in self.live.iter_ones() {
            let t = &self.tuples[row];
            dedup.insert(t.clone(), row as u32);
            for idx in &mut self.indexes {
                idx.add(row as u32, t);
            }
        }
        self.dedup = dedup;
    }

    /// The column sets of the built composite indexes, in index-id order.
    pub fn index_specs(&self) -> impl Iterator<Item = &[usize]> {
        self.indexes.iter().map(|i| &*i.cols)
    }

    /// Are the dedup map and every composite index bit-identical to a
    /// from-scratch rebuild over the live rows — same keys, same postings,
    /// same order? Test and debugging support, `O(rows × indexes)`.
    pub fn indexes_consistent(&self) -> bool {
        let mut rebuilt = self.clone();
        rebuilt.compact();
        // `FxHashMap` equality compares contents, not capacity, so this is
        // exactly "every key and every posting list matches the live truth"
        // — including the absence of stale keys.
        rebuilt == *self
    }

    /// Iterate all rows `(row, tuple)` ever inserted, dead ones included.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Tuple)> {
        self.tuples.iter().enumerate().map(|(i, t)| (i as u32, t))
    }

    /// Iterate the live rows `(row, tuple)`, ascending.
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, &Tuple)> {
        self.live.iter_ones().map(|r| (r as u32, &self.tuples[r]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, RelationSchema};

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>())
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        let (a, fresh_a) = r.insert(t(&[1, 2]));
        let (b, fresh_b) = r.insert(t(&[1, 2]));
        assert_eq!(a, b);
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(r.num_rows(), 1);
    }

    #[test]
    fn index_before_and_after_insert() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 10]));
        r.ensure_index(0);
        r.insert(t(&[1, 20]));
        r.insert(t(&[2, 30]));
        assert_eq!(r.lookup(0, &Value::Int(1)).unwrap(), &[0, 1]);
        assert_eq!(r.lookup(0, &Value::Int(2)).unwrap(), &[2]);
        assert_eq!(r.lookup(0, &Value::Int(9)).unwrap(), &[] as &[u32]);
        assert!(r.lookup(1, &Value::Int(10)).is_none()); // not built
    }

    #[test]
    fn composite_index_matches_all_key_columns() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 10, 100]));
        let idx = r.ensure_composite_index(&[0, 2]);
        r.insert(t(&[1, 20, 100]));
        r.insert(t(&[1, 30, 999]));
        r.insert(t(&[2, 40, 100]));
        assert_eq!(r.probe(idx, &[Value::Int(1), Value::Int(100)]), &[0, 1]);
        assert_eq!(r.probe(idx, &[Value::Int(2), Value::Int(100)]), &[3]);
        assert_eq!(r.probe(idx, &[Value::Int(9), Value::Int(9)]), &[] as &[u32]);
    }

    #[test]
    fn composite_index_ids_are_stable_and_deduped() {
        let mut r = Relation::new(2);
        let a = r.ensure_composite_index(&[0]);
        let b = r.ensure_composite_index(&[0, 1]);
        assert_ne!(a, b);
        assert_eq!(r.ensure_composite_index(&[0]), a);
        assert_eq!(r.ensure_composite_index(&[0, 1]), b);
        assert!(r.has_index(0));
        assert!(!r.has_index(1));
    }

    #[test]
    fn probe_rows_stay_ascending_across_inserts() {
        let mut r = Relation::new(2);
        let idx = r.ensure_composite_index(&[1]);
        for i in 0..50 {
            r.insert(t(&[i, i % 3]));
        }
        for k in 0..3 {
            let rows = r.probe(idx, &[Value::Int(k)]);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "ascending: {rows:?}");
        }
    }

    #[test]
    fn insert_checked_validates() {
        let schema = RelationSchema::new("R", &[("a", AttrType::Int), ("b", AttrType::Str)]);
        let mut r = Relation::new(2);
        assert!(r
            .insert_checked(&schema, Tuple::new(vec![Value::Int(1), Value::str("x")]))
            .is_ok());
        let arity_err = r.insert_checked(&schema, t(&[1])).unwrap_err();
        assert!(matches!(arity_err, StorageError::ArityMismatch { .. }));
        let type_err = r.insert_checked(&schema, t(&[1, 2])).unwrap_err();
        assert!(matches!(type_err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn find_locates_rows() {
        let mut r = Relation::new(1);
        r.insert(t(&[5]));
        assert_eq!(r.find(&t(&[5])), Some(0));
        assert_eq!(r.find(&t(&[6])), None);
    }

    #[test]
    fn remove_row_updates_indexes_incrementally() {
        let mut r = Relation::new(2);
        let idx = r.ensure_composite_index(&[0]);
        for i in 0..4 {
            r.insert(t(&[1, i]));
        }
        assert!(r.remove_row(1));
        assert!(!r.remove_row(1), "already dead");
        assert_eq!(r.probe(idx, &[Value::Int(1)]), &[0, 2, 3]);
        assert_eq!(r.num_rows(), 4, "storage keeps the tombstoned row");
        assert_eq!(r.live_count(), 3);
        assert!(!r.is_live(1));
        assert_eq!(r.find(&t(&[1, 1])), None, "dead rows leave the set");
        assert_eq!(r.live_rows().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn restore_row_round_trips_exactly() {
        let mut r = Relation::new(2);
        let idx = r.ensure_composite_index(&[0]);
        for i in 0..4 {
            r.insert(t(&[7, i]));
        }
        let before = r.clone();
        assert!(r.remove_row(2));
        assert_ne!(r, before);
        assert!(r.restore_row(2));
        assert_eq!(r, before, "dedup, indexes and live bits all restored");
        assert_eq!(r.probe(idx, &[Value::Int(7)]), &[0, 1, 2, 3]);
        assert!(!r.restore_row(2), "already live");
        assert!(!r.restore_row(99), "out of range");
    }

    #[test]
    fn restore_refuses_when_a_live_duplicate_exists() {
        let mut r = Relation::new(1);
        r.insert(t(&[5]));
        assert!(r.remove_row(0));
        let (row2, fresh) = r.insert(t(&[5]));
        assert!(fresh, "dead rows don't block re-insertion");
        assert_eq!(row2, 1);
        assert!(!r.restore_row(0), "value now lives at row 1");
        assert_eq!(r.live_count(), 1);
    }

    #[test]
    fn indexes_built_after_removal_skip_dead_rows() {
        let mut r = Relation::new(2);
        for i in 0..3 {
            r.insert(t(&[i, 0]));
        }
        r.remove_row(1);
        let idx = r.ensure_composite_index(&[1]);
        assert_eq!(r.probe(idx, &[Value::Int(0)]), &[0, 2]);
        r.restore_row(1);
        assert_eq!(r.probe(idx, &[Value::Int(0)]), &[0, 1, 2]);
    }
}

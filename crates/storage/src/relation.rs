//! Append-only, deduplicated tuple storage with per-column hash indexes.

use crate::error::StorageError;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Storage for one relation.
///
/// Tuples are appended once and never moved; *presence* is tracked outside
/// this type by [`crate::State`] bitsets. The store deduplicates (relations
/// are sets, per Section 2 of the paper) and maintains optional per-column
/// hash indexes used by the join evaluator.
#[derive(Clone, Debug)]
pub struct Relation {
    tuples: Vec<Tuple>,
    dedup: HashMap<Tuple, u32>,
    /// `indexes[col]` maps a value to the rows holding it in column `col`.
    indexes: Vec<Option<HashMap<Value, Vec<u32>>>>,
}

impl Relation {
    /// Empty storage for a relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            tuples: Vec::new(),
            dedup: HashMap::new(),
            indexes: vec![None; arity],
        }
    }

    /// Number of rows ever inserted (including ones later deleted by states).
    pub fn num_rows(&self) -> usize {
        self.tuples.len()
    }

    /// The tuple stored at `row`.
    #[inline]
    pub fn tuple(&self, row: u32) -> &Tuple {
        &self.tuples[row as usize]
    }

    /// Insert `t`, returning its row and whether it was new.
    ///
    /// Re-inserting an existing tuple returns the original row (set
    /// semantics).
    pub fn insert(&mut self, t: Tuple) -> (u32, bool) {
        if let Some(&row) = self.dedup.get(&t) {
            return (row, false);
        }
        let row = u32::try_from(self.tuples.len()).expect("relation too large");
        for (col, idx) in self.indexes.iter_mut().enumerate() {
            if let Some(map) = idx {
                map.entry(*t.get(col)).or_default().push(row);
            }
        }
        self.dedup.insert(t.clone(), row);
        self.tuples.push(t);
        (row, true)
    }

    /// Validate `t` against `schema` and insert it.
    pub fn insert_checked(
        &mut self,
        schema: &RelationSchema,
        t: Tuple,
    ) -> Result<(u32, bool), StorageError> {
        if t.arity() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: schema.name.clone(),
                expected: schema.arity(),
                got: t.arity(),
            });
        }
        for (attr, v) in schema.attrs.iter().zip(t.values()) {
            if !attr.ty.admits(v) {
                return Err(StorageError::TypeMismatch {
                    relation: schema.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.ty.name(),
                    got: v.type_name(),
                });
            }
        }
        Ok(self.insert(t))
    }

    /// Row of `t`, if stored.
    pub fn find(&self, t: &Tuple) -> Option<u32> {
        self.dedup.get(t).copied()
    }

    /// Build the hash index for `col` if absent.
    pub fn ensure_index(&mut self, col: usize) {
        if self.indexes[col].is_some() {
            return;
        }
        let mut map: HashMap<Value, Vec<u32>> = HashMap::new();
        for (row, t) in self.tuples.iter().enumerate() {
            map.entry(*t.get(col)).or_default().push(row as u32);
        }
        self.indexes[col] = Some(map);
    }

    /// Is the index for `col` built?
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes[col].is_some()
    }

    /// Rows whose column `col` equals `v`, via the index.
    ///
    /// Returns `None` when the index has not been built — callers fall back
    /// to a scan (the evaluator builds indexes up front, so this is rare).
    pub fn lookup(&self, col: usize, v: &Value) -> Option<&[u32]> {
        self.indexes[col]
            .as_ref()
            .map(|m| m.get(v).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Iterate all rows `(row, tuple)` ever inserted.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Tuple)> {
        self.tuples.iter().enumerate().map(|(i, t)| (i as u32, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, RelationSchema};

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>())
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        let (a, fresh_a) = r.insert(t(&[1, 2]));
        let (b, fresh_b) = r.insert(t(&[1, 2]));
        assert_eq!(a, b);
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(r.num_rows(), 1);
    }

    #[test]
    fn index_before_and_after_insert() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 10]));
        r.ensure_index(0);
        r.insert(t(&[1, 20]));
        r.insert(t(&[2, 30]));
        assert_eq!(r.lookup(0, &Value::Int(1)).unwrap(), &[0, 1]);
        assert_eq!(r.lookup(0, &Value::Int(2)).unwrap(), &[2]);
        assert_eq!(r.lookup(0, &Value::Int(9)).unwrap(), &[] as &[u32]);
        assert!(r.lookup(1, &Value::Int(10)).is_none()); // not built
    }

    #[test]
    fn insert_checked_validates() {
        let schema = RelationSchema::new("R", &[("a", AttrType::Int), ("b", AttrType::Str)]);
        let mut r = Relation::new(2);
        assert!(r
            .insert_checked(&schema, Tuple::new(vec![Value::Int(1), Value::str("x")]))
            .is_ok());
        let arity_err = r.insert_checked(&schema, t(&[1])).unwrap_err();
        assert!(matches!(arity_err, StorageError::ArityMismatch { .. }));
        let type_err = r.insert_checked(&schema, t(&[1, 2])).unwrap_err();
        assert!(matches!(type_err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn find_locates_rows() {
        let mut r = Relation::new(1);
        r.insert(t(&[5]));
        assert_eq!(r.find(&t(&[5])), Some(0));
        assert_eq!(r.find(&t(&[6])), None);
    }
}

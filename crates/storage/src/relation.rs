//! Deduplicated tuple storage with composite hash indexes.
//!
//! Rows are appended and never moved, so [`crate::TupleId`]s stay stable
//! forever; deletion marks a row *dead* (a tombstone) and removes it from
//! the dedup map and every index posting list incrementally — no rebuild.
//! Dead rows can later be revived by [`Relation::restore_row`] (the undo
//! path of an applied repair).

use crate::bitset::BitSet;
use crate::error::StorageError;
use crate::hash::FxHashMap;
use crate::schema::RelationSchema;
use crate::stats::ColumnStats;
use crate::tuple::Tuple;
use crate::value::Value;

/// A hash index over one set of columns.
///
/// Keys are the tuple's values at `cols` (ascending column order); the entry
/// lists every live row holding that key, in ascending row order — the
/// property the evaluator's deterministic enumeration relies on. Removal and
/// revival keep the order by binary-searching the posting list.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CompositeIndex {
    /// Indexed columns, strictly ascending.
    cols: Box<[usize]>,
    /// Key (values at `cols`) → live rows, ascending.
    map: FxHashMap<Box<[Value]>, Vec<u32>>,
}

impl CompositeIndex {
    fn key_of(&self, t: &Tuple) -> Box<[Value]> {
        self.cols.iter().map(|&c| *t.get(c)).collect()
    }

    fn add(&mut self, row: u32, t: &Tuple) {
        self.map.entry(self.key_of(t)).or_default().push(row);
    }

    /// Insert `row` into the posting list at its sorted position (revival
    /// of a tombstoned row; plain `add` covers append-order inserts).
    fn add_sorted(&mut self, row: u32, t: &Tuple) {
        let rows = self.map.entry(self.key_of(t)).or_default();
        if let Err(pos) = rows.binary_search(&row) {
            rows.insert(pos, row);
        }
    }

    /// Remove `row` from the posting list; drops the entry when it empties
    /// so probing a fully-deleted key costs one lookup, not a scan.
    fn remove(&mut self, row: u32, t: &Tuple) {
        let key = self.key_of(t);
        if let Some(rows) = self.map.get_mut(&key) {
            if let Ok(pos) = rows.binary_search(&row) {
                rows.remove(pos);
            }
            if rows.is_empty() {
                self.map.remove(&key);
            }
        }
    }
}

/// Identifier of a composite index within one [`Relation`], as returned by
/// [`Relation::ensure_composite_index`]. Probe plans store these so lookups
/// skip the columns→index resolution entirely.
pub type IndexId = u32;

/// The relation's dedup set, keyed by row index over the relation's own
/// tuple storage: linear-probed open addressing where a slot holds `row +
/// 1` (`0` = empty) and comparisons read `tuples[row]` directly. Replaces
/// a `Tuple → row` hash map whose owned keys cost one boxed-slice clone
/// per fresh insert — the dominant cost of rebuilding the set when a
/// snapshot is decoded (cold open) or a TSV dump is ingested.
///
/// Every mutator takes the `tuples` slice it indexes into; the caller
/// (always [`Relation`]) guarantees slot rows are valid indexes. Removal
/// uses backward-shift deletion, so there are no tombstones and lookup
/// chains never rot.
#[derive(Clone, Debug, Default)]
struct RowDedup {
    /// Slot → `row + 1`; `0` is empty. Power-of-two length.
    slots: Box<[u32]>,
    /// Occupied slots.
    len: usize,
}

impl RowDedup {
    fn hash(t: &Tuple) -> u64 {
        use std::hash::BuildHasher;
        crate::FxBuildHasher::default().hash_one(t)
    }

    /// Table sized for `n` entries without growing (load ≤ 3/4).
    fn with_capacity(n: usize) -> RowDedup {
        let slots = ((n * 4 / 3) + 1).next_power_of_two().max(8);
        RowDedup {
            slots: vec![0; slots].into_boxed_slice(),
            len: 0,
        }
    }

    /// Row of the live tuple equal to `t`, if present.
    fn get(&self, t: &Tuple, tuples: &[Tuple]) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(t) as usize) & mask;
        loop {
            match self.slots[i] {
                0 => return None,
                s => {
                    let row = s - 1;
                    if tuples[row as usize] == *t {
                        return Some(row);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert `row`, whose tuple must not equal any entered row's tuple
    /// (check with [`RowDedup::get`] first, or use
    /// [`RowDedup::insert_unique`] for the combined single probe).
    fn insert(&mut self, row: u32, tuples: &[Tuple]) {
        let dup = self.insert_unique(row, tuples);
        debug_assert!(dup.is_none(), "duplicate live tuple for row {row}");
    }

    /// Insert `row` unless an entered row already holds an equal tuple, in
    /// which case nothing changes and that row is returned. One probe pass:
    /// equal tuples share a hash, hence a home slot, so any duplicate sits
    /// on the probe chain before the first empty slot.
    fn insert_unique(&mut self, row: u32, tuples: &[Tuple]) -> Option<u32> {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow(tuples);
        }
        let t = &tuples[row as usize];
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(t) as usize) & mask;
        loop {
            match self.slots[i] {
                0 => {
                    self.slots[i] = row + 1;
                    self.len += 1;
                    return None;
                }
                s => {
                    let r = s - 1;
                    if tuples[r as usize] == *t {
                        return Some(r);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Remove `row` (no-op if absent). Backward-shift deletion: entries
    /// displaced past the hole are walked forward and any whose probe chain
    /// passes through the hole is moved into it, preserving the invariant
    /// that every entry is reachable from its home slot.
    fn remove(&mut self, row: u32, tuples: &[Tuple]) {
        if self.len == 0 {
            return;
        }
        let mask = self.slots.len() - 1;
        let mut i = (Self::hash(&tuples[row as usize]) as usize) & mask;
        loop {
            match self.slots[i] {
                0 => return,
                s if s - 1 == row => break,
                _ => i = (i + 1) & mask,
            }
        }
        let mut hole = i;
        let mut j = (i + 1) & mask;
        loop {
            let s = self.slots[j];
            if s == 0 {
                break;
            }
            let home = (Self::hash(&tuples[(s - 1) as usize]) as usize) & mask;
            // Move j's entry into the hole iff its probe chain (home → j)
            // passes through the hole, measured cyclically.
            if hole.wrapping_sub(home) & mask <= j.wrapping_sub(home) & mask {
                self.slots[hole] = s;
                hole = j;
            }
            j = (j + 1) & mask;
        }
        self.slots[hole] = 0;
        self.len -= 1;
    }

    fn grow(&mut self, tuples: &[Tuple]) {
        let new_slots = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![0; new_slots].into_boxed_slice());
        let mask = new_slots - 1;
        for s in old.iter().copied().filter(|&s| s != 0) {
            let mut i = (Self::hash(&tuples[(s - 1) as usize]) as usize) & mask;
            while self.slots[i] != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }
}

/// Content equality (same set of rows), independent of table layout — an
/// incrementally built set must equal its compacted rebuild, exactly like
/// the hash map it replaced.
impl PartialEq for RowDedup {
    fn eq(&self, other: &RowDedup) -> bool {
        let rows = |d: &RowDedup| {
            let mut v: Vec<u32> = d.slots.iter().copied().filter(|&s| s != 0).collect();
            v.sort_unstable();
            v
        };
        self.len == other.len && rows(self) == rows(other)
    }
}

impl Eq for RowDedup {}

/// Storage for one relation.
///
/// Tuples are appended once and never moved; transient *presence* during a
/// repair evaluation is tracked outside this type by [`crate::State`]
/// bitsets, while durable membership (rows never deleted from the instance)
/// lives in the `live` tombstone bitset here. The store deduplicates
/// (relations are sets, per Section 2 of the paper) and maintains composite
/// hash indexes — requested by the evaluator's probe plans, one per
/// distinct set of bound columns — incrementally on insert, delete and
/// restore.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    tuples: Vec<Tuple>,
    dedup: RowDedup,
    indexes: Vec<CompositeIndex>,
    /// Columns signature → position in `indexes`.
    by_cols: FxHashMap<Box<[usize]>, IndexId>,
    /// One bit per row ever inserted: is the row still a member?
    live: BitSet,
    /// Number of set bits in `live`, maintained incrementally.
    live_count: usize,
    /// Exact per-column live-value frequencies, one entry per column,
    /// sized lazily from the first inserted tuple and maintained alongside
    /// the indexes on every mutation (see [`crate::stats`]).
    stats: Vec<ColumnStats>,
}

/// Logical-content equality: same rows, tombstones, dedup set and column
/// statistics. *Which* composite indexes have been built is excluded —
/// indexes are demand-driven caches whose set depends on the plans that
/// requested them (and, with cost-based planning, on the statistics at
/// planning time), not on the data. Index *correctness* is checked
/// separately by [`Relation::indexes_consistent`].
impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.tuples == other.tuples
            && self.live == other.live
            && self.live_count == other.live_count
            && self.dedup == other.dedup
            && self.stats == other.stats
    }
}

impl Eq for Relation {}

impl Relation {
    /// Empty storage for a relation of the given arity. (The arity is
    /// implied by the inserted tuples; the parameter is kept for call-site
    /// clarity.)
    pub fn new(_arity: usize) -> Relation {
        Relation::default()
    }

    /// Rebuild a relation from its persisted parts: every row ever
    /// inserted (append order, tombstones included — row ids must survive
    /// the round-trip) plus the live bitset. The dedup map is rebuilt over
    /// live rows only; indexes start empty and are re-requested by the
    /// evaluator's probe plans. Errs with a description when the parts
    /// cannot have come from a real relation (two live duplicate rows).
    pub(crate) fn from_saved_rows(
        tuples: Vec<Tuple>,
        mut live: BitSet,
    ) -> Result<Relation, String> {
        live.grow(tuples.len());
        let live_count = live.count_ones();
        let mut dedup = RowDedup::with_capacity(live_count);
        let mut stats = Self::sized_stats(&tuples);
        for row in live.iter_ones() {
            if dedup.insert_unique(row as u32, &tuples).is_some() {
                return Err(format!("row {row} duplicates another live row"));
            }
            for (s, v) in stats.iter_mut().zip(tuples[row].values()) {
                s.add(*v);
            }
        }
        Ok(Relation {
            tuples,
            dedup,
            indexes: Vec::new(),
            by_cols: FxHashMap::default(),
            live,
            live_count,
            stats,
        })
    }

    /// One empty [`ColumnStats`] per column, sized from the first row ever
    /// inserted (all rows share the schema's arity; a relation that never
    /// held a row has no columns to track).
    fn sized_stats(tuples: &[Tuple]) -> Vec<ColumnStats> {
        vec![ColumnStats::default(); tuples.first().map_or(0, Tuple::arity)]
    }

    /// Number of rows ever inserted (live and tombstoned; the bound for
    /// row-indexed structures like [`crate::State`] bitsets).
    pub fn num_rows(&self) -> usize {
        self.tuples.len()
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Is `row` still a member of the relation?
    #[inline]
    pub fn is_live(&self, row: u32) -> bool {
        self.live.get(row as usize)
    }

    /// The live/tombstone bitset, one bit per row ever inserted.
    pub fn live_bits(&self) -> &BitSet {
        &self.live
    }

    /// Iterate the live rows, ascending.
    pub fn live_rows(&self) -> impl Iterator<Item = u32> + '_ {
        self.live.iter_ones().map(|r| r as u32)
    }

    /// The tuple stored at `row`.
    #[inline]
    pub fn tuple(&self, row: u32) -> &Tuple {
        &self.tuples[row as usize]
    }

    /// Insert `t`, returning its row and whether it was new.
    ///
    /// Re-inserting an existing live tuple returns the original row (set
    /// semantics).
    pub fn insert(&mut self, t: Tuple) -> (u32, bool) {
        if let Some(row) = self.dedup.get(&t, &self.tuples) {
            return (row, false);
        }
        let row = u32::try_from(self.tuples.len()).expect("relation too large");
        for idx in &mut self.indexes {
            idx.add(row, &t);
        }
        if self.stats.len() < t.arity() {
            self.stats.resize(t.arity(), ColumnStats::default());
        }
        for (s, v) in self.stats.iter_mut().zip(t.values()) {
            s.add(*v);
        }
        self.tuples.push(t);
        self.dedup.insert(row, &self.tuples);
        self.live.set(row as usize);
        self.live_count += 1;
        (row, true)
    }

    /// Tombstone `row`: drop it from the dedup map and from every composite
    /// index posting list (incremental — no index rebuild). The tuple's
    /// storage and id survive so provenance and repair results referring to
    /// it stay valid. Returns `false` when the row was already dead.
    pub fn remove_row(&mut self, row: u32) -> bool {
        if !self.live.get(row as usize) {
            return false;
        }
        self.live.clear(row as usize);
        self.live_count -= 1;
        self.dedup.remove(row, &self.tuples);
        let t = &self.tuples[row as usize];
        for idx in &mut self.indexes {
            idx.remove(row, t);
        }
        for (s, v) in self.stats.iter_mut().zip(t.values()) {
            s.remove(v);
        }
        true
    }

    /// Revive a tombstoned `row`: re-enter it into the dedup map and every
    /// index at its sorted posting position. Returns `false` when the row is
    /// already live or when an equal live tuple was inserted in the meantime
    /// (reviving it would break set semantics).
    pub fn restore_row(&mut self, row: u32) -> bool {
        if row as usize >= self.tuples.len() || self.live.get(row as usize) {
            return false;
        }
        if self
            .dedup
            .get(&self.tuples[row as usize], &self.tuples)
            .is_some()
        {
            return false;
        }
        self.live.set(row as usize);
        self.live_count += 1;
        self.dedup.insert(row, &self.tuples);
        let t = &self.tuples[row as usize];
        for idx in &mut self.indexes {
            idx.add_sorted(row, t);
        }
        for (s, v) in self.stats.iter_mut().zip(t.values()) {
            s.add(*v);
        }
        true
    }

    /// Validate `t` against `schema` and insert it.
    pub fn insert_checked(
        &mut self,
        schema: &RelationSchema,
        t: Tuple,
    ) -> Result<(u32, bool), StorageError> {
        if t.arity() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: schema.name.clone(),
                expected: schema.arity(),
                got: t.arity(),
                line: None,
            });
        }
        for (attr, v) in schema.attrs.iter().zip(t.values()) {
            if !attr.ty.admits(v) {
                return Err(StorageError::TypeMismatch {
                    relation: schema.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.ty.name(),
                    got: v.type_name(),
                });
            }
        }
        Ok(self.insert(t))
    }

    /// Row of `t`, if stored.
    pub fn find(&self, t: &Tuple) -> Option<u32> {
        self.dedup.get(t, &self.tuples)
    }

    /// Build (or fetch) the composite index over `cols` and return its id.
    ///
    /// `cols` must be strictly ascending. Idempotent: requesting the same
    /// column set twice returns the same id.
    pub fn ensure_composite_index(&mut self, cols: &[usize]) -> IndexId {
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]) && !cols.is_empty(),
            "index columns must be non-empty and strictly ascending"
        );
        if let Some(&id) = self.by_cols.get(cols) {
            return id;
        }
        let mut idx = CompositeIndex {
            cols: cols.into(),
            map: FxHashMap::default(),
        };
        for row in self.live.iter_ones() {
            idx.add(row as u32, &self.tuples[row]);
        }
        let id = u32::try_from(self.indexes.len()).expect("too many indexes");
        self.by_cols.insert(cols.into(), id);
        self.indexes.push(idx);
        id
    }

    /// Rows whose values at the index's columns equal `key`, ascending.
    /// Returns the empty slice when no row matches.
    #[inline]
    pub fn probe(&self, index: IndexId, key: &[Value]) -> &[u32] {
        self.indexes[index as usize]
            .map
            .get(key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Build the single-column hash index for `col` if absent. Convenience
    /// wrapper over [`Relation::ensure_composite_index`] for tools and
    /// tests; the evaluator's probe plans request composite indexes
    /// directly.
    pub fn ensure_index(&mut self, col: usize) {
        self.ensure_composite_index(&[col]);
    }

    /// Is an index over exactly `{col}` built?
    pub fn has_index(&self, col: usize) -> bool {
        self.by_cols.contains_key(&[col][..])
    }

    /// Rows whose column `col` equals `v`, via the single-column index;
    /// `None` when that index has not been built. Single-column
    /// convenience for ad-hoc queries — the evaluator itself resolves
    /// plans to index ids once and calls [`Relation::probe`].
    pub fn lookup(&self, col: usize, v: &Value) -> Option<&[u32]> {
        let &id = self.by_cols.get(&[col][..])?;
        Some(self.probe(id, std::slice::from_ref(v)))
    }

    /// Fraction of ever-inserted rows that are tombstones (`0.0` when no
    /// row was ever inserted).
    pub fn dead_ratio(&self) -> f64 {
        if self.tuples.is_empty() {
            return 0.0;
        }
        (self.tuples.len() - self.live_count) as f64 / self.tuples.len() as f64
    }

    /// Rebuild the dedup map and every composite index from the live rows.
    ///
    /// Incremental removal keeps postings and dedup entries *correct* under
    /// tombstones, but the hash tables themselves only ever grow: capacity
    /// sized for the high-water mark, posting vectors holding freed slack.
    /// Long-lived sessions that mutate continuously call this once the
    /// [`Relation::dead_ratio`] crosses a threshold. Row ids, index ids and
    /// every probe result are unchanged — only the memory layout is rebuilt
    /// — so the operation is invisible to readers, evaluation states and
    /// incremental consumers.
    pub fn compact(&mut self) {
        let mut dedup = RowDedup::with_capacity(self.live_count);
        for idx in &mut self.indexes {
            idx.map = FxHashMap::default();
        }
        // Rebuild the column statistics alongside: their *contents* are
        // already exact under tombstones (zero-count entries are dropped
        // eagerly), but a fresh recount sheds the hash-table capacity the
        // churn accumulated, like the index maps.
        let mut stats = Self::sized_stats(&self.tuples);
        for row in self.live.iter_ones() {
            dedup.insert(row as u32, &self.tuples);
            for idx in &mut self.indexes {
                idx.add(row as u32, &self.tuples[row]);
            }
            for (s, v) in stats.iter_mut().zip(self.tuples[row].values()) {
                s.add(*v);
            }
        }
        self.dedup = dedup;
        self.stats = stats;
    }

    /// The column sets of the built composite indexes, in index-id order.
    pub fn index_specs(&self) -> impl Iterator<Item = &[usize]> {
        self.indexes.iter().map(|i| &*i.cols)
    }

    /// Are the dedup map and every composite index bit-identical to a
    /// from-scratch rebuild over the live rows — same keys, same postings,
    /// same order? Test and debugging support, `O(rows × indexes)`.
    pub fn indexes_consistent(&self) -> bool {
        let mut rebuilt = self.clone();
        rebuilt.compact();
        // `RowDedup` and `FxHashMap` equality compare contents, not
        // capacity or layout, so this is exactly "every entry and every
        // posting list matches the live truth" — including the absence of
        // stale entries. The clone shares the index *set*, so comparing
        // `indexes` here checks postings even though logical equality
        // excludes them.
        rebuilt == *self && rebuilt.indexes == self.indexes && rebuilt.by_cols == self.by_cols
    }

    /// The exact live-value statistics of column `col`, or `None` when the
    /// relation never held a row (or `col` is out of range).
    pub fn column_stats(&self, col: usize) -> Option<&ColumnStats> {
        self.stats.get(col)
    }

    /// Number of distinct live values in column `col` (0 when the relation
    /// never held a row).
    pub fn distinct_count(&self, col: usize) -> usize {
        self.stats.get(col).map_or(0, ColumnStats::distinct)
    }

    /// Exact number of live rows whose column `col` holds `v`.
    pub fn value_count(&self, col: usize, v: &Value) -> usize {
        self.stats.get(col).map_or(0, |s| s.count_of(v))
    }

    /// Are the per-column statistics bit-identical to a from-scratch
    /// recount over the live rows? Test and debugging support, `O(rows ×
    /// arity)` — checked next to [`Relation::indexes_consistent`] wherever
    /// the instance mutates.
    pub fn stats_consistent(&self) -> bool {
        let mut recount = Self::sized_stats(&self.tuples);
        for row in self.live.iter_ones() {
            for (s, v) in recount.iter_mut().zip(self.tuples[row].values()) {
                s.add(*v);
            }
        }
        recount == self.stats
    }

    /// Iterate all rows `(row, tuple)` ever inserted, dead ones included.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Tuple)> {
        self.tuples.iter().enumerate().map(|(i, t)| (i as u32, t))
    }

    /// Iterate the live rows `(row, tuple)`, ascending.
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, &Tuple)> {
        self.live.iter_ones().map(|r| (r as u32, &self.tuples[r]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, RelationSchema};

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>())
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        let (a, fresh_a) = r.insert(t(&[1, 2]));
        let (b, fresh_b) = r.insert(t(&[1, 2]));
        assert_eq!(a, b);
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(r.num_rows(), 1);
    }

    #[test]
    fn index_before_and_after_insert() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 10]));
        r.ensure_index(0);
        r.insert(t(&[1, 20]));
        r.insert(t(&[2, 30]));
        assert_eq!(r.lookup(0, &Value::Int(1)).unwrap(), &[0, 1]);
        assert_eq!(r.lookup(0, &Value::Int(2)).unwrap(), &[2]);
        assert_eq!(r.lookup(0, &Value::Int(9)).unwrap(), &[] as &[u32]);
        assert!(r.lookup(1, &Value::Int(10)).is_none()); // not built
    }

    #[test]
    fn composite_index_matches_all_key_columns() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 10, 100]));
        let idx = r.ensure_composite_index(&[0, 2]);
        r.insert(t(&[1, 20, 100]));
        r.insert(t(&[1, 30, 999]));
        r.insert(t(&[2, 40, 100]));
        assert_eq!(r.probe(idx, &[Value::Int(1), Value::Int(100)]), &[0, 1]);
        assert_eq!(r.probe(idx, &[Value::Int(2), Value::Int(100)]), &[3]);
        assert_eq!(r.probe(idx, &[Value::Int(9), Value::Int(9)]), &[] as &[u32]);
    }

    #[test]
    fn composite_index_ids_are_stable_and_deduped() {
        let mut r = Relation::new(2);
        let a = r.ensure_composite_index(&[0]);
        let b = r.ensure_composite_index(&[0, 1]);
        assert_ne!(a, b);
        assert_eq!(r.ensure_composite_index(&[0]), a);
        assert_eq!(r.ensure_composite_index(&[0, 1]), b);
        assert!(r.has_index(0));
        assert!(!r.has_index(1));
    }

    #[test]
    fn probe_rows_stay_ascending_across_inserts() {
        let mut r = Relation::new(2);
        let idx = r.ensure_composite_index(&[1]);
        for i in 0..50 {
            r.insert(t(&[i, i % 3]));
        }
        for k in 0..3 {
            let rows = r.probe(idx, &[Value::Int(k)]);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "ascending: {rows:?}");
        }
    }

    #[test]
    fn insert_checked_validates() {
        let schema = RelationSchema::new("R", &[("a", AttrType::Int), ("b", AttrType::Str)]);
        let mut r = Relation::new(2);
        assert!(r
            .insert_checked(&schema, Tuple::new(vec![Value::Int(1), Value::str("x")]))
            .is_ok());
        let arity_err = r.insert_checked(&schema, t(&[1])).unwrap_err();
        assert!(matches!(arity_err, StorageError::ArityMismatch { .. }));
        let type_err = r.insert_checked(&schema, t(&[1, 2])).unwrap_err();
        assert!(matches!(type_err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn find_locates_rows() {
        let mut r = Relation::new(1);
        r.insert(t(&[5]));
        assert_eq!(r.find(&t(&[5])), Some(0));
        assert_eq!(r.find(&t(&[6])), None);
    }

    #[test]
    fn remove_row_updates_indexes_incrementally() {
        let mut r = Relation::new(2);
        let idx = r.ensure_composite_index(&[0]);
        for i in 0..4 {
            r.insert(t(&[1, i]));
        }
        assert!(r.remove_row(1));
        assert!(!r.remove_row(1), "already dead");
        assert_eq!(r.probe(idx, &[Value::Int(1)]), &[0, 2, 3]);
        assert_eq!(r.num_rows(), 4, "storage keeps the tombstoned row");
        assert_eq!(r.live_count(), 3);
        assert!(!r.is_live(1));
        assert_eq!(r.find(&t(&[1, 1])), None, "dead rows leave the set");
        assert_eq!(r.live_rows().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn restore_row_round_trips_exactly() {
        let mut r = Relation::new(2);
        let idx = r.ensure_composite_index(&[0]);
        for i in 0..4 {
            r.insert(t(&[7, i]));
        }
        let before = r.clone();
        assert!(r.remove_row(2));
        assert_ne!(r, before);
        assert!(r.restore_row(2));
        assert_eq!(r, before, "dedup, indexes and live bits all restored");
        assert_eq!(r.probe(idx, &[Value::Int(7)]), &[0, 1, 2, 3]);
        assert!(!r.restore_row(2), "already live");
        assert!(!r.restore_row(99), "out of range");
    }

    #[test]
    fn restore_refuses_when_a_live_duplicate_exists() {
        let mut r = Relation::new(1);
        r.insert(t(&[5]));
        assert!(r.remove_row(0));
        let (row2, fresh) = r.insert(t(&[5]));
        assert!(fresh, "dead rows don't block re-insertion");
        assert_eq!(row2, 1);
        assert!(!r.restore_row(0), "value now lives at row 1");
        assert_eq!(r.live_count(), 1);
    }

    #[test]
    fn dedup_churn_matches_reference_model() {
        // Hammer the open-addressed dedup set through the full Relation
        // surface with a deterministic mutation storm over a small value
        // domain (high collision + duplicate pressure), checking `find`
        // against a straightforward model after every step. Catches
        // backward-shift deletion bugs that single-operation tests miss.
        let mut r = Relation::new(2);
        let mut model: std::collections::HashMap<(i64, i64), u32> = Default::default();
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for step in 0..4000 {
            let a = (rng() % 13) as i64;
            let b = (rng() % 7) as i64;
            match rng() % 4 {
                0 | 1 => {
                    let (row, fresh) = r.insert(t(&[a, b]));
                    match model.get(&(a, b)) {
                        Some(&m) => {
                            assert!(!fresh, "step {step}");
                            assert_eq!(row, m, "step {step}");
                        }
                        None => {
                            assert!(fresh, "step {step}");
                            model.insert((a, b), row);
                        }
                    }
                }
                2 => {
                    if let Some(&row) = model.get(&(a, b)) {
                        assert!(r.remove_row(row), "step {step}");
                        model.remove(&(a, b));
                    }
                }
                _ => {
                    let row = (rng() % r.num_rows().max(1) as u64) as u32;
                    if r.num_rows() > 0 && r.restore_row(row) {
                        let tup = r.tuple(row).clone();
                        let key = match (tup.get(0), tup.get(1)) {
                            (Value::Int(x), Value::Int(y)) => (*x, *y),
                            _ => unreachable!(),
                        };
                        assert!(!model.contains_key(&key), "step {step}");
                        model.insert(key, row);
                    }
                }
            }
            assert_eq!(r.live_count(), model.len(), "step {step}");
            for (&(x, y), &row) in &model {
                assert_eq!(r.find(&t(&[x, y])), Some(row), "step {step} key ({x},{y})");
            }
        }
        assert!(r.indexes_consistent());
    }

    #[test]
    fn indexes_built_after_removal_skip_dead_rows() {
        let mut r = Relation::new(2);
        for i in 0..3 {
            r.insert(t(&[i, 0]));
        }
        r.remove_row(1);
        let idx = r.ensure_composite_index(&[1]);
        assert_eq!(r.probe(idx, &[Value::Int(0)]), &[0, 2]);
        r.restore_row(1);
        assert_eq!(r.probe(idx, &[Value::Int(0)]), &[0, 1, 2]);
    }
}

//! Relational schemas.

use crate::error::StorageError;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Attribute type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttrType {
    /// 64-bit integer.
    Int,
    /// Interned string.
    Str,
}

impl AttrType {
    /// Human-readable name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Int => "int",
            AttrType::Str => "string",
        }
    }

    /// Does `v` inhabit this type?
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (AttrType::Int, Value::Int(_)) | (AttrType::Str, Value::Str(_))
        )
    }
}

/// A named, typed attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attr {
    /// Attribute name (unique within its relation).
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Attr {
    /// Shorthand constructor.
    pub fn new(name: &str, ty: AttrType) -> Attr {
        Attr {
            name: name.to_owned(),
            ty,
        }
    }
}

/// Index of a relation within its [`Schema`].
///
/// `RelId` doubles as the index of the corresponding delta relation `Δ_i`:
/// the paper's delta relations share their base relation's attributes
/// (Section 3.1), so they need no schema entry of their own.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelId(pub u16);

impl RelId {
    /// Widen to `usize` for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Schema of one relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name, e.g. `Author`.
    pub name: String,
    /// Ordered attributes.
    pub attrs: Vec<Attr>,
}

impl RelationSchema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(name: &str, attrs: &[(&str, AttrType)]) -> RelationSchema {
        RelationSchema {
            name: name.to_owned(),
            attrs: attrs.iter().map(|(n, t)| Attr::new(n, *t)).collect(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of attribute `name`.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }
}

/// A database schema: an ordered collection of relation schemas with
/// name-based lookup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Declare a relation; errors if the name is taken.
    pub fn add_relation(&mut self, rel: RelationSchema) -> Result<RelId, StorageError> {
        if self.by_name.contains_key(&rel.name) {
            return Err(StorageError::DuplicateRelation(rel.name));
        }
        let id = RelId(u16::try_from(self.relations.len()).expect("too many relations"));
        self.by_name.insert(rel.name.clone(), id);
        self.relations.push(rel);
        Ok(id)
    }

    /// Convenience: declare from `(name, type)` pairs.
    pub fn relation(&mut self, name: &str, attrs: &[(&str, AttrType)]) -> RelId {
        self.add_relation(RelationSchema::new(name, attrs))
            .expect("duplicate relation")
    }

    /// Look a relation up by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Like [`Schema::rel_id`] but returns an error.
    pub fn require(&self, name: &str) -> Result<RelId, StorageError> {
        self.rel_id(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_owned()))
    }

    /// Schema of relation `id`.
    pub fn rel(&self, id: RelId) -> &RelationSchema {
        &self.relations[id.idx()]
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate `(RelId, schema)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u16), r))
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty.name())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rel_schema() -> Schema {
        let mut s = Schema::new();
        s.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
        s.relation("Author", &[("aid", AttrType::Int), ("name", AttrType::Str)]);
        s
    }

    #[test]
    fn lookup_by_name() {
        let s = two_rel_schema();
        assert_eq!(s.rel_id("Grant"), Some(RelId(0)));
        assert_eq!(s.rel_id("Author"), Some(RelId(1)));
        assert_eq!(s.rel_id("Missing"), None);
        assert!(s.require("Missing").is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut s = two_rel_schema();
        let err = s
            .add_relation(RelationSchema::new("Grant", &[("x", AttrType::Int)]))
            .unwrap_err();
        assert_eq!(err, StorageError::DuplicateRelation("Grant".into()));
    }

    #[test]
    fn attr_index_and_arity() {
        let s = two_rel_schema();
        let g = s.rel(RelId(0));
        assert_eq!(g.arity(), 2);
        assert_eq!(g.attr_index("name"), Some(1));
        assert_eq!(g.attr_index("nope"), None);
    }

    #[test]
    fn admits_checks_types() {
        assert!(AttrType::Int.admits(&Value::Int(1)));
        assert!(!AttrType::Int.admits(&Value::str("x")));
        assert!(AttrType::Str.admits(&Value::str("x")));
    }

    #[test]
    fn display_formats_schema() {
        let s = two_rel_schema();
        assert_eq!(s.rel(RelId(0)).to_string(), "Grant(gid: int, name: string)");
    }
}

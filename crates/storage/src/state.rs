//! Evaluation state: presence and delta-membership bits.

use crate::bitset::BitSet;
use crate::instance::Instance;
use crate::schema::RelId;
use crate::tuple::TupleId;

/// The mutable part of a database during repair evaluation.
///
/// For every relation `R_i` of an [`Instance`] the state tracks
///
/// * `present[i]` — is the tuple still a member of `R_i`, and
/// * `delta[i]`   — is the tuple a member of `Δ_i`.
///
/// The two are independent on purpose: *end semantics* (Def. 3.10) grows the
/// delta relations while `R` stays at its original content until the final
/// update, whereas *stage* and *step* semantics (Defs. 3.7 / 3.5) remove a
/// tuple from `R_i` the moment it enters `Δ_i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct State {
    present: Vec<BitSet>,
    delta: Vec<BitSet>,
}

impl State {
    /// State at time 0: all *live* tuples present, all deltas empty.
    /// Tuples deleted from the instance itself (tombstones) never enter
    /// evaluation — not even under the frozen-base or hypothetical views.
    pub fn initial(db: &Instance) -> State {
        let present = db
            .schema()
            .iter()
            .map(|(rid, _)| {
                let mut bits = db.relation(rid).live_bits().clone();
                bits.grow(db.rows(rid));
                bits
            })
            .collect();
        let delta = db
            .schema()
            .iter()
            .map(|(rid, _)| BitSet::zeros(db.rows(rid)))
            .collect();
        State { present, delta }
    }

    /// Is `tid` currently a member of its base relation?
    #[inline]
    pub fn is_present(&self, tid: TupleId) -> bool {
        self.present[tid.rel.idx()].get(tid.row_idx())
    }

    /// Is `tid` a member of its delta relation?
    #[inline]
    pub fn in_delta(&self, tid: TupleId) -> bool {
        self.delta[tid.rel.idx()].get(tid.row_idx())
    }

    /// Remove `tid` from `R` and add it to `Δ` (stage/step-style deletion).
    /// Returns whether the delta membership was new.
    pub fn delete(&mut self, tid: TupleId) -> bool {
        self.present[tid.rel.idx()].clear(tid.row_idx());
        !self.delta[tid.rel.idx()].set(tid.row_idx())
    }

    /// Add `tid` to `Δ` *without* removing it from `R` (end-style
    /// derivation). Returns whether the delta membership was new.
    pub fn mark_delta(&mut self, tid: TupleId) -> bool {
        !self.delta[tid.rel.idx()].set(tid.row_idx())
    }

    /// Remove `tid` from `Δ` (the over-delete phase of incremental
    /// maintenance retracts derivations whose support is gone). Returns
    /// whether the tuple was a member.
    pub fn unmark_delta(&mut self, tid: TupleId) -> bool {
        self.delta[tid.rel.idx()].clear(tid.row_idx())
    }

    /// Apply `R_i := R_i \ Δ_i` for every relation (the final update of end
    /// semantics).
    pub fn apply_deltas(&mut self) {
        for (p, d) in self.present.iter_mut().zip(&self.delta) {
            p.difference_with(d);
        }
    }

    /// Number of tuples present in `rel`.
    pub fn present_count(&self, rel: RelId) -> usize {
        self.present[rel.idx()].count_ones()
    }

    /// Number of tuples in `Δ_rel`.
    pub fn delta_count(&self, rel: RelId) -> usize {
        self.delta[rel.idx()].count_ones()
    }

    /// Total delta membership across relations.
    pub fn total_delta(&self) -> usize {
        self.delta.iter().map(BitSet::count_ones).sum()
    }

    /// Iterate the ids of tuples currently present in `rel`.
    pub fn present_rows(&self, rel: RelId) -> impl Iterator<Item = TupleId> + '_ {
        self.present[rel.idx()]
            .iter_ones()
            .map(move |row| TupleId::new(rel, row as u32))
    }

    /// Iterate the ids of tuples in `Δ_rel`.
    pub fn delta_rows(&self, rel: RelId) -> impl Iterator<Item = TupleId> + '_ {
        self.delta[rel.idx()]
            .iter_ones()
            .map(move |row| TupleId::new(rel, row as u32))
    }

    /// All delta tuple ids, ascending.
    pub fn all_delta_rows(&self) -> Vec<TupleId> {
        let mut out = Vec::new();
        for (i, d) in self.delta.iter().enumerate() {
            let rel = RelId(i as u16);
            out.extend(d.iter_ones().map(|row| TupleId::new(rel, row as u32)));
        }
        out
    }

    /// Do the two states have identical presence and delta bits?
    pub fn same_as(&self, other: &State) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use crate::value::Value;

    fn db() -> Instance {
        let mut s = Schema::new();
        s.relation("R", &[("a", AttrType::Int)]);
        let mut db = Instance::new(s);
        for i in 0..5 {
            db.insert_values("R", [Value::Int(i)]).unwrap();
        }
        db
    }

    #[test]
    fn delete_moves_tuple_to_delta() {
        let db = db();
        let rel = db.schema().rel_id("R").unwrap();
        let mut st = db.initial_state();
        let tid = TupleId::new(rel, 2);
        assert!(st.is_present(tid));
        assert!(st.delete(tid));
        assert!(!st.is_present(tid));
        assert!(st.in_delta(tid));
        assert!(!st.delete(tid)); // idempotent
        assert_eq!(st.present_count(rel), 4);
        assert_eq!(st.delta_count(rel), 1);
    }

    #[test]
    fn mark_delta_keeps_tuple_present_until_apply() {
        let db = db();
        let rel = db.schema().rel_id("R").unwrap();
        let mut st = db.initial_state();
        let tid = TupleId::new(rel, 0);
        st.mark_delta(tid);
        assert!(st.is_present(tid), "end semantics: R unchanged during eval");
        st.apply_deltas();
        assert!(!st.is_present(tid));
        assert_eq!(st.present_count(rel), 4);
    }

    #[test]
    fn iterators_agree_with_counts() {
        let db = db();
        let rel = db.schema().rel_id("R").unwrap();
        let mut st = db.initial_state();
        st.delete(TupleId::new(rel, 1));
        st.delete(TupleId::new(rel, 3));
        let present: Vec<u32> = st.present_rows(rel).map(|t| t.row).collect();
        assert_eq!(present, vec![0, 2, 4]);
        let deltas: Vec<u32> = st.delta_rows(rel).map(|t| t.row).collect();
        assert_eq!(deltas, vec![1, 3]);
        assert_eq!(st.all_delta_rows().len(), 2);
    }

    #[test]
    fn clone_is_independent() {
        let db = db();
        let rel = db.schema().rel_id("R").unwrap();
        let st = db.initial_state();
        let mut st2 = st.clone();
        st2.delete(TupleId::new(rel, 0));
        assert!(st.is_present(TupleId::new(rel, 0)));
        assert!(!st.same_as(&st2));
    }
}

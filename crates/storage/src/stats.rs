//! Incrementally-maintained per-column value statistics.
//!
//! Every [`crate::Relation`] carries one [`ColumnStats`] per column,
//! updated alongside the dedup map and the composite indexes on insert,
//! tombstone and revival. The counts are **exact** — one entry per
//! distinct live value, counting the live rows holding it — so they are a
//! pure function of the live instance: any sequence of mutations ending in
//! the same live rows yields bit-identical statistics. That purity is what
//! lets the cost-based planner consume them without threatening the
//! engine's determinism contract.
//!
//! The planner reads three things: the relation's live cardinality
//! (maintained on [`crate::Relation`] itself), a column's distinct-value
//! count ([`ColumnStats::distinct`], the `V(R, a)` of the textbook
//! selectivity formulas), and the exact frequency of a constant
//! ([`ColumnStats::count_of`]) — the "most-common-value sketch" degenerate
//! case where the sketch is simply exact, which the Zipf workloads need to
//! tell the heavy hub apart from the average one.

use crate::hash::FxHashMap;
use crate::value::Value;

/// Exact live-value frequencies of one column.
///
/// Entries are removed as soon as their count reaches zero, so the map's
/// key set is exactly the column's live distinct values and derived
/// equality (used by [`crate::Relation`]'s consistency checks) compares
/// content, never capacity or layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColumnStats {
    counts: FxHashMap<Value, u32>,
}

impl ColumnStats {
    /// Number of distinct live values in the column.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Exact number of live rows whose column holds `v`.
    pub fn count_of(&self, v: &Value) -> usize {
        self.counts.get(v).copied().unwrap_or(0) as usize
    }

    /// The `k` most common values with their counts, ordered by count
    /// descending, ties broken by ascending [`Value`] order — a
    /// deterministic function of the live rows.
    pub fn most_common(&self, k: usize) -> Vec<(Value, u32)> {
        let mut all: Vec<(Value, u32)> = self.counts.iter().map(|(&v, &c)| (v, c)).collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    pub(crate) fn add(&mut self, v: Value) {
        *self.counts.entry(v).or_insert(0) += 1;
    }

    pub(crate) fn remove(&mut self, v: &Value) {
        match self.counts.get_mut(v) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counts.remove(v);
            }
            None => debug_assert!(false, "stat decrement for untracked value {v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_track_adds_and_removes() {
        let mut s = ColumnStats::default();
        s.add(Value::Int(1));
        s.add(Value::Int(1));
        s.add(Value::Int(2));
        assert_eq!(s.distinct(), 2);
        assert_eq!(s.count_of(&Value::Int(1)), 2);
        s.remove(&Value::Int(1));
        assert_eq!(s.count_of(&Value::Int(1)), 1);
        s.remove(&Value::Int(1));
        assert_eq!(s.count_of(&Value::Int(1)), 0);
        assert_eq!(s.distinct(), 1, "zero-count entries are dropped");
    }

    #[test]
    fn most_common_orders_by_count_then_value() {
        let mut s = ColumnStats::default();
        for _ in 0..3 {
            s.add(Value::Int(7));
        }
        for _ in 0..3 {
            s.add(Value::Int(2));
        }
        s.add(Value::Int(9));
        assert_eq!(
            s.most_common(2),
            vec![(Value::Int(2), 3), (Value::Int(7), 3)],
            "ties break on ascending value"
        );
        assert_eq!(s.most_common(10).len(), 3);
    }

    #[test]
    fn equality_ignores_capacity_history() {
        let mut a = ColumnStats::default();
        for i in 0..100 {
            a.add(Value::Int(i));
        }
        for i in 1..100 {
            a.remove(&Value::Int(i));
        }
        let mut b = ColumnStats::default();
        b.add(Value::Int(0));
        assert_eq!(a, b);
    }
}

//! Plain tab-separated persistence for instances.
//!
//! The generators in `datagen` can dump their output so experiments are
//! inspectable, and tests can load small fixtures. The format is one file
//! section per relation:
//!
//! ```text
//! # relation Grant
//! 1\tNSF
//! 2\tERC
//! ```

use crate::error::StorageError;
use crate::instance::Instance;
use crate::schema::AttrType;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt::Write as _;

/// Serialize all relations of `db` into one TSV document.
pub fn to_tsv(db: &Instance) -> String {
    let mut out = String::new();
    for (rid, rs) in db.schema().iter() {
        writeln!(out, "# relation {}", rs.name).unwrap();
        for (_, t) in db.relation(rid).iter_live() {
            let line: Vec<String> = t.values().iter().map(ToString::to_string).collect();
            writeln!(out, "{}", line.join("\t")).unwrap();
        }
    }
    out
}

/// Like [`to_tsv`] with *typed* headers carrying the full schema, e.g.
/// `# relation Person(id: int, name: str)` — the self-describing format
/// that [`load_document`] reads back without a pre-built schema.
pub fn to_tsv_typed(db: &Instance) -> String {
    let mut out = String::new();
    for (rid, rs) in db.schema().iter() {
        let cols: Vec<String> = rs
            .attrs
            .iter()
            .map(|a| format!("{}: {}", a.name, a.ty.name()))
            .collect();
        writeln!(out, "# relation {}({})", rs.name, cols.join(", ")).unwrap();
        for (_, t) in db.relation(rid).iter_live() {
            let line: Vec<String> = t.values().iter().map(ToString::to_string).collect();
            writeln!(out, "{}", line.join("\t")).unwrap();
        }
    }
    out
}

/// Parse a typed relation header `Name(col: type, …)` into schema parts.
fn parse_typed_header(
    rest: &str,
    lineno: usize,
) -> Result<(String, Vec<(String, AttrType)>), StorageError> {
    let rest = rest.trim();
    let open = rest.find('(').ok_or_else(|| {
        StorageError::Parse(format!(
            "line {lineno}: typed header needs `(col: type, …)`"
        ))
    })?;
    if !rest.ends_with(')') {
        return Err(StorageError::Parse(format!(
            "line {lineno}: typed header must end with `)`"
        )));
    }
    let name = rest[..open].trim();
    if name.is_empty() {
        return Err(StorageError::Parse(format!(
            "line {lineno}: empty relation name"
        )));
    }
    let inner = &rest[open + 1..rest.len() - 1];
    let mut cols = Vec::new();
    for part in inner.split(',') {
        let (col, ty) = part.split_once(':').ok_or_else(|| {
            StorageError::Parse(format!(
                "line {lineno}: column needs `name: type`, got `{part}`"
            ))
        })?;
        let ty = match ty.trim() {
            "int" | "Int" | "INT" => AttrType::Int,
            "str" | "Str" | "STR" | "string" | "text" => AttrType::Str,
            other => {
                return Err(StorageError::Parse(format!(
                    "line {lineno}: unknown type `{other}` (use `int` or `str`)"
                )))
            }
        };
        cols.push((col.trim().to_owned(), ty));
    }
    if cols.is_empty() {
        return Err(StorageError::Parse(format!(
            "line {lineno}: relation `{name}` needs at least one column"
        )));
    }
    Ok((name.to_owned(), cols))
}

/// Load a self-describing document produced by [`to_tsv_typed`] (or written
/// by hand): typed headers declare the schema, data lines fill it. Returns
/// the complete instance.
pub fn load_document(text: &str) -> Result<Instance, StorageError> {
    use crate::schema::{RelationSchema, Schema};
    // Pass 1: collect the schema from typed headers.
    let mut schema = Schema::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end_matches('\r');
        if let Some(rest) = line.strip_prefix("# relation ") {
            let (name, cols) = parse_typed_header(rest, lineno + 1)?;
            let refs: Vec<(&str, AttrType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            schema.add_relation(RelationSchema::new(&name, &refs))?;
        }
    }
    if schema.is_empty() {
        return Err(StorageError::Parse(
            "document declares no relations (expected `# relation Name(col: type, …)`)".into(),
        ));
    }
    // Pass 2: reuse the untyped loader, stripping the type annotations.
    let mut db = Instance::new(schema);
    let stripped: String = text
        .lines()
        .map(|line| {
            if let Some(rest) = line.strip_prefix("# relation ") {
                let name = rest.split('(').next().unwrap_or(rest).trim();
                format!("# relation {name}\n")
            } else {
                format!("{line}\n")
            }
        })
        .collect();
    from_tsv(&mut db, &stripped)?;
    Ok(db)
}

/// Load a TSV document (produced by [`to_tsv`]) into an instance with the
/// given schema. Values are parsed according to the declared attribute types.
pub fn from_tsv(db: &mut Instance, text: &str) -> Result<usize, StorageError> {
    let mut current = None;
    let mut inserted = 0;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# relation ") {
            current = Some(db.schema().require(rest.trim())?);
            continue;
        }
        let rel = current.ok_or_else(|| {
            StorageError::Parse(format!(
                "line {}: data before any relation header",
                lineno + 1
            ))
        })?;
        let rs = db.schema().rel(rel).clone();
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != rs.arity() {
            return Err(StorageError::ArityMismatch {
                relation: rs.name.clone(),
                expected: rs.arity(),
                got: fields.len(),
                line: Some(lineno + 1),
            });
        }
        let mut values = Vec::with_capacity(fields.len());
        for (attr, field) in rs.attrs.iter().zip(&fields) {
            let v = match attr.ty {
                AttrType::Int => Value::Int(field.parse::<i64>().map_err(|e| {
                    StorageError::Parse(format!(
                        "line {}: bad int `{}` for {}.{}: {}",
                        lineno + 1,
                        field,
                        rs.name,
                        attr.name,
                        e
                    ))
                })?),
                AttrType::Str => Value::str(field),
            };
            values.push(v);
        }
        db.insert(rel, Tuple::new(values))?;
        inserted += 1;
    }
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
        s.relation(
            "AuthGrant",
            &[("aid", AttrType::Int), ("gid", AttrType::Int)],
        );
        s
    }

    #[test]
    fn round_trip() {
        let mut db = Instance::new(schema());
        db.insert_values("Grant", [Value::Int(1), Value::str("NSF")])
            .unwrap();
        db.insert_values("AuthGrant", [Value::Int(2), Value::Int(1)])
            .unwrap();
        let text = to_tsv(&db);
        let mut db2 = Instance::new(schema());
        let n = from_tsv(&mut db2, &text).unwrap();
        assert_eq!(n, 2);
        assert_eq!(to_tsv(&db2), text);
    }

    #[test]
    fn data_before_header_is_an_error() {
        let mut db = Instance::new(schema());
        let err = from_tsv(&mut db, "1\tNSF\n").unwrap_err();
        assert!(matches!(err, StorageError::Parse(_)));
    }

    #[test]
    fn bad_int_is_an_error() {
        let mut db = Instance::new(schema());
        let err = from_tsv(&mut db, "# relation Grant\nxx\tNSF\n").unwrap_err();
        assert!(matches!(err, StorageError::Parse(_)));
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let mut db = Instance::new(schema());
        let err = from_tsv(&mut db, "# relation Grant\n1\n").unwrap_err();
        assert!(matches!(
            err,
            StorageError::ArityMismatch { line: Some(2), .. }
        ));
        assert!(err.to_string().starts_with("line 2:"), "{err}");
    }

    #[test]
    fn typed_document_round_trip() {
        let mut db = Instance::new(schema());
        db.insert_values("Grant", [Value::Int(1), Value::str("NSF")])
            .unwrap();
        db.insert_values("AuthGrant", [Value::Int(2), Value::Int(1)])
            .unwrap();
        let text = to_tsv_typed(&db);
        assert!(text.contains("# relation Grant(gid: int, name: string)"));
        let loaded = load_document(&text).unwrap();
        assert_eq!(loaded.total_rows(), 2);
        assert_eq!(to_tsv_typed(&loaded), text);
        // The rebuilt schema matches attribute-for-attribute.
        for (rid, rs) in db.schema().iter() {
            let lrs = loaded
                .schema()
                .rel(loaded.schema().rel_id(&rs.name).unwrap());
            assert_eq!(lrs.attrs.len(), rs.attrs.len());
            let _ = rid;
        }
    }

    #[test]
    fn load_document_rejects_bad_headers() {
        assert!(
            load_document("# relation Grant\n1\tNSF\n").is_err(),
            "untyped header"
        );
        assert!(
            load_document("# relation Grant(gid int)\n").is_err(),
            "missing colon"
        );
        assert!(
            load_document("# relation Grant(gid: float)\n").is_err(),
            "unknown type"
        );
        assert!(
            load_document("# relation (gid: int)\n").is_err(),
            "empty name"
        );
        assert!(load_document("# relation Grant()\n").is_err(), "no columns");
        assert!(load_document("").is_err(), "empty document");
        assert!(
            load_document("# relation G(gid: int)\n# relation G(gid: int)\n").is_err(),
            "duplicate relation"
        );
    }

    #[test]
    fn load_document_handcrafted() {
        let doc = "# relation Edge(src: int, dst: int)\n1\t2\n2\t3\n";
        let db = load_document(doc).unwrap();
        assert_eq!(db.total_rows(), 2);
        let rel = db.schema().rel_id("Edge").unwrap();
        assert_eq!(db.rows(rel), 2);
    }
}

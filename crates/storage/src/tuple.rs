//! Tuples and tuple identities.

use crate::schema::RelId;
use crate::value::Value;
use std::fmt;

/// An immutable tuple of values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Tuple {
        Tuple(values.into())
    }

    /// Attribute values in order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple(v.into_boxed_slice())
    }
}

/// Stable identity of a tuple within an [`crate::Instance`].
///
/// Identities survive state changes: deleting a tuple flips bits in a
/// [`crate::State`], it never reindexes storage. Repair results, provenance
/// nodes and SAT variables all refer to tuples through `TupleId`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TupleId {
    /// Owning relation.
    pub rel: RelId,
    /// Row index within the relation's append-only store.
    pub row: u32,
}

impl TupleId {
    /// Construct from parts.
    pub fn new(rel: RelId, row: u32) -> TupleId {
        TupleId { rel, row }
    }

    /// Row index as `usize`.
    #[inline]
    pub fn row_idx(self) -> usize {
        self.row as usize
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.rel.0, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_accessors() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("NSF")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t.values()[1], Value::str("NSF"));
    }

    #[test]
    fn tuple_display() {
        let t = Tuple::new(vec![Value::Int(2), Value::str("ERC")]);
        assert_eq!(t.to_string(), "(2, ERC)");
    }

    #[test]
    fn tuple_equality_is_structural() {
        let a = Tuple::new(vec![Value::Int(1)]);
        let b = Tuple::new(vec![Value::Int(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn tuple_id_ordering() {
        let a = TupleId::new(RelId(0), 5);
        let b = TupleId::new(RelId(1), 0);
        assert!(a < b);
        assert_eq!(a.to_string(), "t0.5");
    }
}
